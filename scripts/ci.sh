#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Every command runs --offline: the
# workspace is hermetic — path dependencies only, no crates.io access —
# and this script is what enforces that property in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --offline
cargo test -q --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
