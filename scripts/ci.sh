#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Every command runs --offline: the
# workspace is hermetic — path dependencies only, no crates.io access —
# and this script is what enforces that property in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace --offline
cargo test -q --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Parallel-execution determinism gate: the chase and route-forest results
# must be byte-identical to sequential at every worker count. Run the
# suite under two ROUTES_THREADS overrides (the tests additionally sweep
# explicit pool sizes 1/2/8 internally).
ROUTES_THREADS=2 cargo test -q --offline --test parallel_determinism
ROUTES_THREADS=8 cargo test -q --offline --test parallel_determinism

# Vectorized-join differential gate: the batch executor, the lazy
# MatchIter facade, and the naive reference evaluator must enumerate
# byte-identical match sequences over seeded random scenarios, at every
# composite-index threshold and batch size the suite sweeps.
ROUTES_THREADS=2 cargo test -q --offline -p routes-query --test fuzz_differential
ROUTES_THREADS=8 cargo test -q --offline -p routes-query --test fuzz_differential

# Session-store concurrency gate: the 8-thread suite must pass with
# byte-identical eviction accounting at 1 and 8 shards (the suite
# additionally sweeps explicit shard counts 1/2/8 internally), and the
# default-constructor test must follow the env override.
ROUTES_SESSION_SHARDS=1 cargo test -q --offline --test session_store_concurrency
ROUTES_SESSION_SHARDS=8 cargo test -q --offline --test session_store_concurrency

# Persistence gate: the crash-recovery and fault-injection suite (HTTP
# restart round-trips, torn-tail boots, the seeded fault campaign) must
# pass with the session store at 1 shard and at 8.
ROUTES_SESSION_SHARDS=1 cargo test -q --offline --test persistence_recovery
ROUTES_SESSION_SHARDS=8 cargo test -q --offline --test persistence_recovery

# Incremental-edit gate: the 200-op differential campaign (incremental
# delta-chase vs from-scratch re-chase, byte-identical after every batch,
# plus surviving-forest equality, the HTTP edit endpoint, and edit-record
# replay on restart) must pass with the session store at 1 shard and at 8,
# and with the worker pool pinned to 2 threads.
ROUTES_SESSION_SHARDS=1 ROUTES_THREADS=2 cargo test -q --offline --test incremental_edits
ROUTES_SESSION_SHARDS=8 ROUTES_THREADS=2 cargo test -q --offline --test incremental_edits

# Incremental-edit bench smoke: incremental apply vs full re-chase over a
# pinned campaign (writes bench_results/micro_edit.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro edit --quick

# Vectorized-join bench smoke: batch executor vs row-at-a-time MatchIter
# (writes bench_results/micro_join.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro join --quick

# Thread-scaling bench smoke: `repro micro parallel` must run end to end
# (writes bench_results/micro_parallel.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro parallel --quick

# Session-store shard-scaling bench smoke (writes
# bench_results/micro_sessions.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro sessions --quick

# WAL fsync-batch bench smoke: append throughput and recovery time per
# group-commit batch size (writes bench_results/micro_persist.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro persist --quick

# Pipeline gate: stage-by-stage chase + route stitching byte-identical at
# every worker count, core-mode routes replay end to end, and the core
# session's all-routes output matches the unminimized session on
# surviving tuples.
ROUTES_THREADS=2 cargo test -q --offline --test pipeline_routes
ROUTES_THREADS=8 cargo test -q --offline --test pipeline_routes

# Pipeline bench smoke: stitched-route latency per hop count and core
# shrink ratio (writes bench_results/micro_pipeline.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro pipeline --quick

# Admission-control gate: the HTTP saturation/abuse battery (slow-loris
# reap + concurrent service, deterministic burst shedding with exact
# /metrics reconciliation, graceful drain) must pass with the session
# store at 1 shard and at 8, with the worker pool pinned to 2 threads.
ROUTES_SESSION_SHARDS=1 ROUTES_THREADS=2 cargo test -q --offline --test http_overload
ROUTES_SESSION_SHARDS=8 ROUTES_THREADS=2 cargo test -q --offline --test http_overload

# HTTP saturation bench smoke: closed-loop clients past capacity, shed
# at the door (writes bench_results/micro_http.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro http --quick

# Observability gate: the socket suite (trace-ID propagation, /trace span
# dump, slow-request log, ring eviction) must pass with the session store
# at 1 shard and at 8.
ROUTES_SESSION_SHARDS=1 cargo test -q --offline --test observability
ROUTES_SESSION_SHARDS=8 cargo test -q --offline --test observability

# Tracing-overhead bench smoke (writes bench_results/micro_obs.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro obs --quick

# Self-profiler gate: the chase must be byte-identical (stats, per-tgd
# attribution, target instance) with the sampler on and off, at 2 and 8
# worker threads.
ROUTES_THREADS=2 cargo test -q --offline --test profiler
ROUTES_THREADS=8 cargo test -q --offline --test profiler

# Self-profiler bench smoke: per-tgd chase attribution plus sampler
# on/off request-path overhead (writes bench_results/micro_prof.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro prof --quick

# Structured-logging gate: boot a real spiderd, shut it down over the
# socket, and require every stderr line to be a parseable JSON log record
# (at least one: the "listening" event).
logdir="$(mktemp -d)"
trap 'kill "$spider_pid" 2>/dev/null || true; rm -rf "$logdir"' EXIT
cargo build --release --offline -p routes-server --bin spiderd --bin spiderd-logcheck
target/release/spiderd --addr 127.0.0.1:0 --data-dir "$logdir/data" \
    > "$logdir/stdout" 2> "$logdir/stderr" &
spider_pid=$!
port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$logdir/stdout")"
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "spiderd never reported its port" >&2; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf 'POST /shutdown HTTP/1.1\r\nhost: ci\r\ncontent-length: 0\r\nconnection: close\r\n\r\n' >&3
cat <&3 > /dev/null
exec 3<&- 3>&-
wait "$spider_pid"
spider_pid=""
target/release/spiderd-logcheck 1 < "$logdir/stderr"
