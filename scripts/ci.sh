#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Every command runs --offline: the
# workspace is hermetic — path dependencies only, no crates.io access —
# and this script is what enforces that property in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --offline
cargo test -q --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Parallel-execution determinism gate: the chase and route-forest results
# must be byte-identical to sequential at every worker count. Run the
# suite under two ROUTES_THREADS overrides (the tests additionally sweep
# explicit pool sizes 1/2/8 internally).
ROUTES_THREADS=2 cargo test -q --offline --test parallel_determinism
ROUTES_THREADS=8 cargo test -q --offline --test parallel_determinism

# Thread-scaling bench smoke: `repro micro parallel` must run end to end
# (writes bench_results/micro_parallel.csv).
cargo run --release --offline -p routes-bench --bin repro -- micro parallel --quick
