//! Instance-level homomorphism search.
//!
//! A homomorphism `h : K → K'` maps constants to themselves and labeled
//! nulls to arbitrary values such that every fact of `K` maps to a fact of
//! `K'`. Universal solutions are characterized by the existence of such
//! homomorphisms into every other solution (paper §2), so this search is the
//! test oracle for chase correctness.
//!
//! The search is backtracking over the facts of `K` and is intended for
//! test-sized instances.

use std::collections::HashMap;

use routes_model::{Instance, NullId, TupleId, Value};

/// Find a homomorphism from `from` to `to`, returned as the null mapping
/// (constants always map to themselves). Returns `None` if none exists.
pub fn find_homomorphism(from: &Instance, to: &Instance) -> Option<HashMap<NullId, Value>> {
    let tuples: Vec<TupleId> = from.all_rows().collect();
    let mut mapping = HashMap::new();
    if search(from, to, &tuples, 0, &mut mapping) {
        Some(mapping)
    } else {
        None
    }
}

/// Whether a homomorphism from `from` to `to` exists.
pub fn has_homomorphism(from: &Instance, to: &Instance) -> bool {
    find_homomorphism(from, to).is_some()
}

fn search(
    from: &Instance,
    to: &Instance,
    tuples: &[TupleId],
    depth: usize,
    mapping: &mut HashMap<NullId, Value>,
) -> bool {
    let Some(&tid) = tuples.get(depth) else {
        return true;
    };
    let values = from.tuple(tid);

    // Candidate rows in `to`: probe on the most selective already-determined
    // column if any, else scan.
    let mut best: Option<(u32, Value, usize)> = None;
    for (col, &v) in values.iter().enumerate() {
        let image = match v {
            Value::Null(n) => match mapping.get(&n) {
                Some(&img) => img,
                None => continue,
            },
            constant => constant,
        };
        let len = to.probe_len(tid.rel, col as u32, image);
        if best.is_none_or(|(_, _, blen)| len < blen) {
            best = Some((col as u32, image, len));
        }
    }
    let mut candidates = Vec::new();
    match best {
        Some((col, image, _)) => to.probe_into(tid.rel, col, image, &mut candidates),
        None => candidates.extend(0..to.rel_len(tid.rel)),
    }

    'rows: for row in candidates {
        let image = to.tuple(TupleId { rel: tid.rel, row });
        let mut bound_here: Vec<NullId> = Vec::new();
        for (col, &v) in values.iter().enumerate() {
            match v {
                Value::Null(n) => match mapping.get(&n) {
                    Some(&img) => {
                        if img != image[col] {
                            for b in bound_here.drain(..) {
                                mapping.remove(&b);
                            }
                            continue 'rows;
                        }
                    }
                    None => {
                        mapping.insert(n, image[col]);
                        bound_here.push(n);
                    }
                },
                constant => {
                    if constant != image[col] {
                        for b in bound_here.drain(..) {
                            mapping.remove(&b);
                        }
                        continue 'rows;
                    }
                }
            }
        }
        if search(from, to, tuples, depth + 1, mapping) {
            return true;
        }
        for b in bound_here {
            mapping.remove(&b);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::{Schema, ValuePool};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.rel("T", &["a", "b"]);
        s
    }

    #[test]
    fn identity_homomorphism_exists() {
        let s = schema();
        let mut i = Instance::new(&s);
        let t = s.rel_id("T").unwrap();
        i.insert_ok(t, &[Value::Int(1), Value::Int(2)]);
        assert!(has_homomorphism(&i, &i));
    }

    #[test]
    fn null_maps_to_constant() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut pool = ValuePool::new();
        let n = pool.named_null("N");
        let mut from = Instance::new(&s);
        from.insert_ok(t, &[Value::Int(1), n]);
        let mut to = Instance::new(&s);
        to.insert_ok(t, &[Value::Int(1), Value::Int(9)]);
        let h = find_homomorphism(&from, &to).unwrap();
        let Value::Null(nid) = n else { unreachable!() };
        assert_eq!(h[&nid], Value::Int(9));
    }

    #[test]
    fn constants_cannot_move() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut from = Instance::new(&s);
        from.insert_ok(t, &[Value::Int(1), Value::Int(2)]);
        let mut to = Instance::new(&s);
        to.insert_ok(t, &[Value::Int(1), Value::Int(3)]);
        assert!(!has_homomorphism(&from, &to));
    }

    #[test]
    fn null_mapping_must_be_consistent() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut pool = ValuePool::new();
        let n = pool.named_null("N");
        // N must be both 1 and 2: impossible.
        let mut from = Instance::new(&s);
        from.insert_ok(t, &[n, Value::Int(0)]);
        from.insert_ok(t, &[Value::Int(0), n]);
        let mut to = Instance::new(&s);
        to.insert_ok(t, &[Value::Int(1), Value::Int(0)]);
        to.insert_ok(t, &[Value::Int(0), Value::Int(2)]);
        assert!(!has_homomorphism(&from, &to));
        // Make it possible.
        to.insert_ok(t, &[Value::Int(0), Value::Int(1)]);
        assert!(has_homomorphism(&from, &to));
    }

    #[test]
    fn backtracking_finds_nonobvious_assignments() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut pool = ValuePool::new();
        let n1 = pool.named_null("N1");
        let n2 = pool.named_null("N2");
        let mut from = Instance::new(&s);
        from.insert_ok(t, &[n1, n2]);
        from.insert_ok(t, &[n2, Value::Int(3)]);
        let mut to = Instance::new(&s);
        to.insert_ok(t, &[Value::Int(1), Value::Int(2)]);
        to.insert_ok(t, &[Value::Int(2), Value::Int(3)]);
        // N1 -> 1, N2 -> 2 works; the greedy first choice for the first
        // tuple might try N1->2, N2->3 which fails on the second tuple.
        assert!(has_homomorphism(&from, &to));
    }
}
