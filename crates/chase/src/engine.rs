//! The chase engine.

use std::collections::HashMap;
use std::time::Instant;

use routes_mapping::{SchemaMapping, Tgd};
use routes_model::{Instance, TupleId, Value, ValuePool, Var};
use routes_pool::Pool;
use routes_query::{
    anchored_plan, batch_all_matches, batch_matches_with_plan_into, plan_with_bound, satisfiable,
    unify_atom, BatchOptions, BindingBatch, Bindings,
};

use crate::egd_log::{EgdLog, EgdMerge};
use crate::result::{ChaseError, ChaseResult, TgdStats};
use crate::unify::ValueUnifier;

/// How existential variables receive values when a tgd fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullMode {
    /// Standard chase: fire only when the RHS is not already satisfiable for
    /// the universal binding, inventing fresh labeled nulls. Produces a
    /// universal solution when it terminates.
    Fresh,
    /// Skolemized (oblivious) chase: every match fires, and each existential
    /// variable receives a deterministic null keyed by the tgd and the
    /// universal binding. Idempotent; models Clio-generated transforms.
    Skolem,
}

/// Chase configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChaseOptions {
    /// Existential-value policy.
    pub null_mode: NullMode,
    /// Maximum number of tgd rounds before giving up (non-terminating
    /// dependency sets exist; this is the guard).
    pub max_rounds: usize,
    /// Maximum number of target tuples to create.
    pub max_tuples: usize,
}

impl Default for ChaseOptions {
    fn default() -> Self {
        ChaseOptions {
            null_mode: NullMode::Fresh,
            max_rounds: 10_000,
            max_tuples: 100_000_000,
        }
    }
}

impl ChaseOptions {
    /// Standard-chase options.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// Skolemized-chase options.
    pub fn skolem() -> Self {
        ChaseOptions {
            null_mode: NullMode::Skolem,
            ..Self::default()
        }
    }
}

/// Key identifying a Skolem term: which tgd, which existential variable,
/// and the values of the tgd's universal variables (in variable order).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SkolemKey {
    st: bool,
    tgd: u32,
    var: u32,
    args: Vec<Value>,
}

/// Minimum number of anchor rows (or delta tuples) per worker chunk; below
/// this the fan-out overhead outweighs the matching work and evaluation
/// stays on the calling thread.
const PAR_MIN_CHUNK: usize = 32;

struct Engine<'a> {
    mapping: &'a SchemaMapping,
    source: &'a Instance,
    values: &'a mut ValuePool,
    workers: &'a Pool,
    options: ChaseOptions,
    target: Instance,
    skolem: HashMap<SkolemKey, Value>,
    tuples_created: usize,
    rounds: usize,
    egd_rewrites: usize,
    egd_log: EgdLog,
    /// Caller-supplied s-t match lists (one per s-t tgd, in
    /// [`Engine::collect_st_matches`] order). When set, the source joins
    /// are skipped entirely and these bindings fire instead.
    st_matches: Option<&'a [Vec<Bindings>]>,
    /// Per-dependency attribution accumulators: s-t tgds first, then
    /// target tgds, in mapping order.
    tgd_stats: Vec<TgdStats>,
}

/// Run the chase of `(source, ∅)` with the mapping's dependencies.
///
/// On success the returned target instance `J` satisfies
/// `(I, J) ⊨ Σst ∪ Σt`. Fresh labeled nulls (or Skolem nulls) are drawn
/// from `pool`.
///
/// # Errors
/// * [`ChaseError::Failed`] — an egd equated two distinct constants.
/// * [`ChaseError::RoundLimit`] / [`ChaseError::TupleLimit`] — resource
///   guards tripped (likely a non-terminating dependency set).
pub fn chase(
    mapping: &SchemaMapping,
    source: &Instance,
    pool: &mut ValuePool,
    options: ChaseOptions,
) -> Result<ChaseResult, ChaseError> {
    chase_with_pool(mapping, source, pool, options, &Pool::sequential())
}

/// [`chase`] with tgd premise evaluation fanned out over `workers`.
///
/// The result is byte-identical to the sequential chase at every worker
/// count: s-t tgd joins are planned once and partitioned over the outer
/// atom's candidate rows (per-chunk matches concatenate to the sequential
/// match sequence), target-tgd delta matches are canonicalized by sort +
/// dedup before firing, and all firing — hence tuple-id assignment and
/// labeled-null invention — stays on the calling thread.
pub fn chase_with_pool(
    mapping: &SchemaMapping,
    source: &Instance,
    pool: &mut ValuePool,
    options: ChaseOptions,
    workers: &Pool,
) -> Result<ChaseResult, ChaseError> {
    run_engine(mapping, source, pool, options, workers, None)
}

/// [`chase_with_pool`] with the s-t tgd match lists supplied by the caller:
/// one `Vec<Bindings>` per s-t tgd, in the order the engine's own
/// collection would produce them (anchored-plan order — lexicographic over
/// the plan-permuted row vectors).
///
/// The source joins are skipped entirely; everything downstream — firing
/// order, fresh-null invention, target tgd rounds, egds — runs unchanged,
/// so supplying exactly the lists the engine would have collected yields a
/// byte-identical [`ChaseResult`]. This is the replay entry point of the
/// incremental-maintenance layer (`routes-incr`), which maintains those
/// match lists across scenario edits instead of re-joining from scratch.
pub fn chase_with_st_matches(
    mapping: &SchemaMapping,
    source: &Instance,
    pool: &mut ValuePool,
    options: ChaseOptions,
    workers: &Pool,
    st_matches: &[Vec<Bindings>],
) -> Result<ChaseResult, ChaseError> {
    assert_eq!(
        st_matches.len(),
        mapping.st_tgds().len(),
        "one match list per s-t tgd"
    );
    run_engine(mapping, source, pool, options, workers, Some(st_matches))
}

fn run_engine(
    mapping: &SchemaMapping,
    source: &Instance,
    pool: &mut ValuePool,
    options: ChaseOptions,
    workers: &Pool,
    st_matches: Option<&[Vec<Bindings>]>,
) -> Result<ChaseResult, ChaseError> {
    let mut engine = Engine {
        mapping,
        source,
        values: pool,
        workers,
        options,
        target: Instance::new(mapping.target()),
        skolem: HashMap::new(),
        tuples_created: 0,
        rounds: 0,
        egd_rewrites: 0,
        egd_log: EgdLog::new(),
        st_matches,
        tgd_stats: mapping
            .st_tgds()
            .iter()
            .map(|tgd| TgdStats::new(tgd.name(), true))
            .chain(
                mapping
                    .target_tgds()
                    .iter()
                    .map(|tgd| TgdStats::new(tgd.name(), false)),
            )
            .collect(),
    };
    engine.run()?;
    Ok(ChaseResult {
        target: engine.target,
        rounds: engine.rounds,
        tuples_created: engine.tuples_created,
        egd_rewrites: engine.egd_rewrites,
        egd_log: engine.egd_log,
        per_tgd: engine.tgd_stats,
    })
}

impl Engine<'_> {
    fn run(&mut self) -> Result<(), ChaseError> {
        loop {
            // --- Tgd fixpoint -------------------------------------------
            // Round 1 of each pass: s-t tgds, full evaluation over I.
            let mut delta = self.apply_st_tgds()?;
            self.bump_round()?;

            // Target tgd rounds, semi-naive: only matches anchored on a
            // delta tuple are re-derived. On the first pass after an egd
            // rewrite the whole target is the delta.
            while !delta.is_empty() {
                delta = self.apply_target_tgds(&delta)?;
                self.bump_round()?;
            }

            // --- Egds ----------------------------------------------------
            let unifier = self.collect_egd_equalities()?;
            if unifier.is_trivial() {
                return Ok(());
            }
            self.rewrite_with(unifier);
            self.egd_rewrites += 1;
        }
    }

    fn bump_round(&mut self) -> Result<(), ChaseError> {
        self.rounds += 1;
        if self.rounds > self.options.max_rounds {
            return Err(ChaseError::RoundLimit {
                limit: self.options.max_rounds,
            });
        }
        Ok(())
    }

    /// Apply every s-t tgd over the (immutable) source; returns the tuples
    /// newly inserted into the target. Matching fans out over the worker
    /// pool; firing stays sequential.
    fn apply_st_tgds(&mut self) -> Result<Vec<TupleId>, ChaseError> {
        let mut inserted = Vec::new();
        for ti in 0..self.mapping.st_tgds().len() {
            let started = Instant::now();
            let pending = self.collect_st_matches(ti);
            self.tgd_stats[ti].matches += pending.len() as u64;
            let before = inserted.len();
            for b in pending {
                self.fire(true, ti as u32, b, &mut inserted)?;
            }
            let stat = &mut self.tgd_stats[ti];
            stat.fired += (inserted.len() - before) as u64;
            stat.wall_us += started.elapsed().as_micros() as u64;
        }
        Ok(inserted)
    }

    /// All matches of s-t tgd `ti` over the source, in the sequential
    /// iterator's order at every worker count: the join is planned once, the
    /// outer atom's candidate rows are partitioned across workers, and the
    /// per-chunk match buffers are concatenated in chunk order (see
    /// [`routes_query::AnchoredPlan`]).
    ///
    /// Within a chunk, the anchored rows are unified into a columnar
    /// [`BindingBatch`] and the suffix is evaluated by the vectorized batch
    /// executor, which yields the byte-identical match sequence of draining a
    /// [`MatchIter`](routes_query::MatchIter) per row (the order argument
    /// lives in `routes_query::batch`).
    fn collect_st_matches(&self, ti: usize) -> Vec<Bindings> {
        if let Some(provided) = self.st_matches {
            return provided[ti].clone();
        }
        let tgd = &self.mapping.st_tgds()[ti];
        let init = Bindings::new(tgd.var_count());
        let Some(ap) = anchored_plan(self.source, tgd.lhs(), &init) else {
            // Unreachable: tgd LHSes are non-empty by construction.
            return vec![init];
        };
        let anchor = &tgd.lhs()[ap.outer];
        let opts = BatchOptions::default();
        let chunks = self
            .workers
            .par_map_chunks(ap.rows.len(), PAR_MIN_CHUNK, |_, range| {
                let mut seeds = BindingBatch::new(init.capacity(), anchor.vars());
                for &row in &ap.rows[range] {
                    let mut b = init.clone();
                    let tuple = self.source.tuple(TupleId {
                        rel: anchor.rel,
                        row,
                    });
                    if !unify_atom(anchor, &tuple, &mut b) {
                        continue;
                    }
                    seeds.push_binding(&b);
                }
                let mut local: Vec<Bindings> = Vec::new();
                batch_matches_with_plan_into(
                    self.source,
                    tgd.lhs(),
                    &ap.suffix,
                    &seeds,
                    &opts,
                    &mut local,
                );
                local
            });
        chunks.into_iter().flatten().collect()
    }

    /// Semi-naive application of target tgds: for each delta tuple and each
    /// LHS atom over its relation, anchor the atom on the tuple and complete
    /// the match over the full target. Matching fans out over the worker
    /// pool; firing stays sequential.
    fn apply_target_tgds(&mut self, delta: &[TupleId]) -> Result<Vec<TupleId>, ChaseError> {
        let mut inserted = Vec::new();
        let st_count = self.mapping.st_tgds().len();
        for ti in 0..self.mapping.target_tgds().len() {
            let started = Instant::now();
            // Collect matches first (MatchIter borrows target immutably),
            // then fire. Firing within a round sees the round-start target,
            // which matches the round semantics of the chase.
            let pending = self.collect_target_matches(ti, delta);
            self.tgd_stats[st_count + ti].matches += pending.len() as u64;
            let before = inserted.len();
            for b in pending {
                self.fire(false, ti as u32, b, &mut inserted)?;
            }
            let stat = &mut self.tgd_stats[st_count + ti];
            stat.fired += (inserted.len() - before) as u64;
            stat.wall_us += started.elapsed().as_micros() as u64;
        }
        Ok(inserted)
    }

    /// All delta-anchored matches of target tgd `ti`, with the delta tuples
    /// partitioned across workers per anchor atom.
    ///
    /// Every delta tuple anchored on the same atom yields the same bound
    /// variable set (the plan depends only on that set, never on values), so
    /// the completion of `rest` is planned **once** per anchor and the delta
    /// tuples stream through the batch executor — replacing one
    /// [`MatchIter`](routes_query::MatchIter) construction (plan + buffers)
    /// per delta tuple with one pipeline per chunk, while enumerating the
    /// identical per-tuple match sequences.
    fn collect_target_matches(&self, ti: usize, delta: &[TupleId]) -> Vec<Bindings> {
        let tgd = &self.mapping.target_tgds()[ti];
        let opts = BatchOptions::default();
        let mut pending: Vec<Bindings> = Vec::new();
        for anchor_idx in 0..tgd.lhs().len() {
            let anchor = &tgd.lhs()[anchor_idx];
            // Atoms to complete once the anchor is unified.
            let rest: Vec<routes_model::Atom> = tgd
                .lhs()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != anchor_idx)
                .map(|(_, a)| a.clone())
                .collect();
            let order = plan_with_bound(&self.target, &rest, anchor.vars().collect());
            let chunks = self
                .workers
                .par_map_chunks(delta.len(), PAR_MIN_CHUNK, |_, range| {
                    let mut seeds = BindingBatch::new(tgd.var_count(), anchor.vars());
                    for &tid in &delta[range] {
                        if tid.rel != anchor.rel {
                            continue;
                        }
                        let mut init = Bindings::new(tgd.var_count());
                        if !unify_atom(anchor, &self.target.tuple(tid), &mut init) {
                            continue;
                        }
                        seeds.push_binding(&init);
                    }
                    let mut local: Vec<Bindings> = Vec::new();
                    batch_matches_with_plan_into(
                        &self.target,
                        &rest,
                        &order,
                        &seeds,
                        &opts,
                        &mut local,
                    );
                    local
                });
            for chunk in chunks {
                pending.extend(chunk);
            }
        }
        // A match touching k delta tuples is found k times; dedup to avoid
        // redundant firing (and, in Fresh mode, duplicate nulls). The sort
        // also erases chunk boundaries, making the firing order independent
        // of the worker count.
        pending.sort_by(|a, b| a.iter().cmp(b.iter()));
        pending.dedup();
        pending
    }

    /// Fire a tgd on a (universal) match: value the existential variables
    /// per the null mode and insert the RHS image.
    fn fire(
        &mut self,
        st: bool,
        tgd_idx: u32,
        mut b: Bindings,
        inserted: &mut Vec<TupleId>,
    ) -> Result<(), ChaseError> {
        let tgd: &Tgd = if st {
            &self.mapping.st_tgds()[tgd_idx as usize]
        } else {
            &self.mapping.target_tgds()[tgd_idx as usize]
        };
        let existentials: Vec<Var> = tgd.existential_vars().collect();

        match self.options.null_mode {
            NullMode::Fresh => {
                // Standard chase: fire only if no RHS extension exists yet.
                if satisfiable(&self.target, tgd.rhs(), b.clone()) {
                    return Ok(());
                }
                for v in existentials {
                    let null = self.values.fresh_null();
                    b.set(v, null);
                }
            }
            NullMode::Skolem => {
                if !existentials.is_empty() {
                    let args: Vec<Value> = (0..tgd.var_count() as u32)
                        .map(Var)
                        .filter(|v| tgd.is_universal(*v))
                        .map(|v| b.get(v).expect("universal vars bound by LHS match"))
                        .collect();
                    for v in existentials {
                        let key = SkolemKey {
                            st,
                            tgd: tgd_idx,
                            var: v.0,
                            args: args.clone(),
                        };
                        let null = match self.skolem.get(&key) {
                            Some(&n) => n,
                            None => {
                                let n = self.values.fresh_null();
                                self.skolem.insert(key, n);
                                n
                            }
                        };
                        b.set(v, null);
                    }
                }
            }
        }

        // Insert the RHS image.
        let mut values: Vec<Value> = Vec::new();
        for atom in tgd.rhs() {
            values.clear();
            for term in &atom.terms {
                values.push(match term {
                    routes_model::Term::Const(c) => *c,
                    routes_model::Term::Var(v) => b
                        .get(*v)
                        .expect("all RHS vars bound after existential valuation"),
                });
            }
            let (tid, fresh) = self
                .target
                .insert(atom.rel, &values)
                .expect("RHS image has correct arity");
            if fresh {
                self.tuples_created += 1;
                if self.tuples_created > self.options.max_tuples {
                    return Err(ChaseError::TupleLimit {
                        limit: self.options.max_tuples,
                    });
                }
                inserted.push(tid);
            }
        }
        Ok(())
    }

    /// Evaluate every egd over the current target and collect the implied
    /// equalities. Non-trivial merges are recorded in the egd log (with
    /// their resolutions filled in once the pass's fixpoint is known).
    ///
    /// Egd evaluation always drains the full match set, so it runs through
    /// the batch executor; the union order (which the egd log's merge
    /// sequence depends on) is preserved because the batch enumerates the
    /// lazy iterator's exact sequence.
    fn collect_egd_equalities(&mut self) -> Result<ValueUnifier, ChaseError> {
        let mut unifier = ValueUnifier::new();
        let log_start = self.egd_log.len();
        let opts = BatchOptions::default();
        for egd in self.mapping.egds() {
            let matches = batch_all_matches(
                &self.target,
                egd.lhs(),
                &Bindings::new(egd.var_count()),
                &opts,
            );
            let (x, y) = egd.equated();
            for b in matches {
                let vx = b.get(x).expect("egd vars occur in LHS");
                let vy = b.get(y).expect("egd vars occur in LHS");
                let merged = unifier.union(vx, vy).map_err(|values| ChaseError::Failed {
                    egd: egd.name().to_owned(),
                    values,
                })?;
                if merged {
                    self.egd_log.push(EgdMerge {
                        egd: egd.name().to_owned(),
                        equated: (vx, vy),
                        resolved: vx, // placeholder; fixed up below
                    });
                }
            }
        }
        for entry in &mut self.egd_log[log_start..] {
            entry.resolved = unifier.resolve(entry.equated.0);
        }
        Ok(unifier)
    }

    /// Rebuild the target instance (and the Skolem cache) under the
    /// substitution induced by `unifier`.
    fn rewrite_with(&mut self, mut unifier: ValueUnifier) {
        self.target = self
            .target
            .map_values(self.mapping.target(), |v| unifier.resolve(v));
        for v in self.skolem.values_mut() {
            *v = unifier.resolve(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::satisfy::is_solution;
    use routes_mapping::{parse_egd, parse_st_tgd, parse_target_tgd};
    use routes_model::Schema;
    use routes_query::{EvalOptions, MatchIter};

    fn simple_mapping() -> (SchemaMapping, ValuePool) {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        t.rel("U", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m1: S(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_target_tgd(
            parse_target_tgd(&t, &mut pool, "m2: T(x,y) -> exists Z: U(x,Z)").unwrap(),
        )
        .unwrap();
        (m, pool)
    }

    fn src(m: &SchemaMapping, rows: &[(i64, i64)]) -> Instance {
        let mut i = Instance::new(m.source());
        let s = m.source().rel_id("S").unwrap();
        for &(a, b) in rows {
            i.insert_ok(s, &[Value::Int(a), Value::Int(b)]);
        }
        i
    }

    #[test]
    fn chase_produces_a_solution_fresh() {
        let (m, mut pool) = simple_mapping();
        let i = src(&m, &[(1, 2), (3, 4)]);
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        assert!(is_solution(&m, &i, &r.target));
        let t = m.target().rel_id("T").unwrap();
        let u = m.target().rel_id("U").unwrap();
        assert_eq!(r.target.rel_len(t), 2);
        assert_eq!(r.target.rel_len(u), 2);
        // U tuples carry fresh nulls in the second column.
        for (_, vals) in r.target.rel_tuples(u) {
            assert!(vals[1].is_null());
        }
    }

    #[test]
    fn chase_produces_a_solution_skolem_and_is_deterministic() {
        let (m, mut pool) = simple_mapping();
        let i = src(&m, &[(1, 2), (1, 3)]);
        let r = chase(&m, &i, &mut pool, ChaseOptions::skolem()).unwrap();
        assert!(is_solution(&m, &i, &r.target));
        let u = m.target().rel_id("U").unwrap();
        // m2 has universal vars x, y; two different y values give two
        // different Skolem nulls even though x is equal.
        assert_eq!(r.target.rel_len(u), 2);
    }

    #[test]
    fn per_tgd_attribution_accounts_for_every_tuple() {
        let (m, mut pool) = simple_mapping();
        let i = src(&m, &[(1, 2), (3, 4)]);
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        assert_eq!(r.per_tgd.len(), 2);
        assert_eq!(r.per_tgd[0].name, "m1");
        assert!(r.per_tgd[0].st);
        assert_eq!(r.per_tgd[0].matches, 2);
        assert_eq!(r.per_tgd[0].fired, 2);
        assert_eq!(r.per_tgd[1].name, "m2");
        assert!(!r.per_tgd[1].st);
        assert_eq!(r.per_tgd[1].matches, 2);
        assert_eq!(r.per_tgd[1].fired, 2);
        // Every created tuple is attributed to exactly one dependency.
        let fired: u64 = r.per_tgd.iter().map(|t| t.fired).sum();
        assert_eq!(fired as usize, r.tuples_created);
    }

    #[test]
    fn standard_chase_does_not_refire_satisfied_tgds() {
        let (m, mut pool) = simple_mapping();
        let i = src(&m, &[(1, 2)]);
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        // Exactly one T and one U tuple; a second run over the same pool
        // creates nothing more (idempotence at the instance level).
        assert_eq!(r.target.total_tuples(), 2);
    }

    #[test]
    fn transitive_closure_target_tgd() {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "c: S(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_target_tgd(parse_target_tgd(&t, &mut pool, "tc: T(x,y) & T(y,z) -> T(x,z)").unwrap())
            .unwrap();
        let mut i = Instance::new(m.source());
        let sr = m.source().rel_id("S").unwrap();
        for k in 0..5 {
            i.insert_ok(sr, &[Value::Int(k), Value::Int(k + 1)]);
        }
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        let tr = m.target().rel_id("T").unwrap();
        // Transitive closure of a 6-node path: 5+4+3+2+1 = 15 pairs.
        assert_eq!(r.target.rel_len(tr), 15);
        assert!(is_solution(&m, &i, &r.target));
    }

    #[test]
    fn egd_merges_nulls_with_constants() {
        // S(x,y) -> exists Z: T(x,Z);  S2(x,y) -> T(x,y);  T(x,y) & T(x,y2) -> y = y2.
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        s.rel("S2", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m1: S(x,y) -> exists Z: T(x,Z)").unwrap())
            .unwrap();
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m2: S2(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_egd(parse_egd(&t, &mut pool, "key: T(x,y) & T(x,y2) -> y = y2").unwrap())
            .unwrap();
        let mut i = Instance::new(m.source());
        i.insert_ok(
            m.source().rel_id("S").unwrap(),
            &[Value::Int(1), Value::Int(0)],
        );
        i.insert_ok(
            m.source().rel_id("S2").unwrap(),
            &[Value::Int(1), Value::Int(9)],
        );
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        let tr = m.target().rel_id("T").unwrap();
        assert_eq!(r.target.rel_len(tr), 1);
        assert!(r.target.contains(tr, &[Value::Int(1), Value::Int(9)]));
        assert!(r.egd_rewrites >= 1);
        assert!(is_solution(&m, &i, &r.target));
    }

    #[test]
    fn egd_log_records_merge_provenance() {
        // Same setup as egd_merges_nulls_with_constants: the key egd merges
        // the invented null with the constant 9.
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        s.rel("S2", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m1: S(x,y) -> exists Z: T(x,Z)").unwrap())
            .unwrap();
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m2: S2(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_egd(
            routes_mapping::parse_egd(&t, &mut pool, "key: T(x,y) & T(x,y2) -> y = y2").unwrap(),
        )
        .unwrap();
        let mut i = Instance::new(m.source());
        i.insert_ok(
            m.source().rel_id("S").unwrap(),
            &[Value::Int(1), Value::Int(0)],
        );
        i.insert_ok(
            m.source().rel_id("S2").unwrap(),
            &[Value::Int(1), Value::Int(9)],
        );
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        assert_eq!(r.egd_log.len(), 1);
        let merge = &r.egd_log[0];
        assert_eq!(merge.egd, "key");
        assert_eq!(merge.resolved, Value::Int(9));
        assert!(merge.equated.0.is_null() || merge.equated.1.is_null());
        // History query: the constant 9's identity involved the key egd.
        let hist = crate::egd_log::merges_affecting(&r.egd_log, Value::Int(9));
        assert_eq!(hist.len(), 1);
    }

    #[test]
    fn egd_conflict_fails_the_chase() {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m1: S(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_egd(parse_egd(&t, &mut pool, "key: T(x,y) & T(x,y2) -> y = y2").unwrap())
            .unwrap();
        let mut i = Instance::new(m.source());
        let sr = m.source().rel_id("S").unwrap();
        i.insert_ok(sr, &[Value::Int(1), Value::Int(2)]);
        i.insert_ok(sr, &[Value::Int(1), Value::Int(3)]);
        let err = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap_err();
        assert!(matches!(err, ChaseError::Failed { .. }));
    }

    #[test]
    fn parallel_chase_is_byte_identical_to_sequential() {
        // Transitive closure over a long path: multiple semi-naive rounds,
        // enough rows to cross PAR_MIN_CHUNK and actually fan out.
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        t.rel("U", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "c: S(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_target_tgd(parse_target_tgd(&t, &mut pool, "tc: T(x,y) & T(y,z) -> T(x,z)").unwrap())
            .unwrap();
        m.add_target_tgd(parse_target_tgd(&t, &mut pool, "u: T(x,y) -> exists Z: U(x,Z)").unwrap())
            .unwrap();
        let mut i = Instance::new(m.source());
        let sr = m.source().rel_id("S").unwrap();
        for k in 0..40 {
            i.insert_ok(sr, &[Value::Int(k), Value::Int(k + 1)]);
        }
        // A stable dump: every tuple with null labels resolved, in row order.
        let dump = |inst: &Instance, p: &ValuePool| -> String {
            let mut out = String::new();
            for (rel, _) in m.target().iter() {
                for (tid, vals) in inst.rel_tuples(rel) {
                    let rendered: Vec<String> =
                        vals.iter().map(|&v| p.value_to_string(v)).collect();
                    out.push_str(&format!("{tid:?}: {}\n", rendered.join(", ")));
                }
            }
            out
        };
        for null_mode in [NullMode::Fresh, NullMode::Skolem] {
            let opts = ChaseOptions {
                null_mode,
                ..ChaseOptions::default()
            };
            let mut seq_pool = pool.clone();
            let sequential = chase(&m, &i, &mut seq_pool, opts).unwrap();
            for threads in [2usize, 3, 8] {
                let mut par_pool = pool.clone();
                let parallel =
                    chase_with_pool(&m, &i, &mut par_pool, opts, &Pool::new(threads)).unwrap();
                assert_eq!(sequential.stats(), parallel.stats(), "threads={threads}");
                assert_eq!(
                    dump(&sequential.target, &seq_pool),
                    dump(&parallel.target, &par_pool),
                    "threads={threads}"
                );
                assert_eq!(seq_pool.num_nulls(), par_pool.num_nulls());
            }
        }
    }

    #[test]
    fn provided_st_matches_reproduce_the_chase_byte_for_byte() {
        let (m, pool) = simple_mapping();
        let i = src(&m, &[(1, 2), (3, 4), (1, 5)]);

        // Hand-collect per-tgd match lists with the same anchored-plan
        // enumeration the engine uses internally.
        let mut matches: Vec<Vec<Bindings>> = Vec::new();
        for tgd in m.st_tgds() {
            let init = Bindings::new(tgd.var_count());
            let ap = anchored_plan(&i, tgd.lhs(), &init).unwrap();
            let anchor = &tgd.lhs()[ap.outer];
            let mut out = Vec::new();
            for &row in &ap.rows {
                let mut b = init.clone();
                let tuple = i.tuple(TupleId {
                    rel: anchor.rel,
                    row,
                });
                if !unify_atom(anchor, &tuple, &mut b) {
                    continue;
                }
                let mut it = MatchIter::with_plan(
                    &i,
                    tgd.lhs(),
                    b,
                    ap.suffix.clone(),
                    EvalOptions::default(),
                );
                while let Some(found) = it.next_match() {
                    out.push(found.clone());
                }
            }
            matches.push(out);
        }

        let dump = |inst: &Instance, p: &ValuePool| -> String {
            let mut out = String::new();
            for (rel, _) in m.target().iter() {
                for (tid, vals) in inst.rel_tuples(rel) {
                    let rendered: Vec<String> =
                        vals.iter().map(|&v| p.value_to_string(v)).collect();
                    out.push_str(&format!("{tid:?}: {}\n", rendered.join(", ")));
                }
            }
            out
        };
        for opts in [ChaseOptions::fresh(), ChaseOptions::skolem()] {
            let mut base_pool = pool.clone();
            let baseline = chase(&m, &i, &mut base_pool, opts).unwrap();
            let mut fed_pool = pool.clone();
            let fed =
                chase_with_st_matches(&m, &i, &mut fed_pool, opts, &Pool::sequential(), &matches)
                    .unwrap();
            assert_eq!(baseline.stats(), fed.stats());
            assert_eq!(
                dump(&baseline.target, &base_pool),
                dump(&fed.target, &fed_pool)
            );
            assert_eq!(base_pool.num_nulls(), fed_pool.num_nulls());
        }
    }

    #[test]
    fn round_limit_guards_nontermination() {
        // T(x,y) -> exists Z: T(y,Z): the classic non-terminating tgd
        // (not weakly acyclic) under the standard chase.
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "c: S(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_target_tgd(
            parse_target_tgd(&t, &mut pool, "inf: T(x,y) -> exists Z: T(y,Z)").unwrap(),
        )
        .unwrap();
        let mut i = Instance::new(m.source());
        i.insert_ok(
            m.source().rel_id("S").unwrap(),
            &[Value::Int(1), Value::Int(2)],
        );
        let opts = ChaseOptions {
            max_rounds: 20,
            ..ChaseOptions::fresh()
        };
        let err = chase(&m, &i, &mut pool, opts).unwrap_err();
        assert!(matches!(err, ChaseError::RoundLimit { .. }));
    }
}
