//! Value unification for egd application: a union-find over values in which
//! constants are always representatives and two distinct constants refuse to
//! merge (chase failure).

use std::collections::HashMap;

use routes_model::Value;

/// Union-find over values with constant-preference and failure on
/// constant/constant conflicts.
#[derive(Debug, Default)]
pub struct ValueUnifier {
    parent: HashMap<Value, Value>,
}

impl ValueUnifier {
    /// Create an empty unifier (every value is its own class).
    pub fn new() -> Self {
        Self::default()
    }

    /// Representative of `v`'s class (with path compression).
    pub fn find(&mut self, v: Value) -> Value {
        let mut root = v;
        while let Some(&p) = self.parent.get(&root) {
            root = p;
        }
        // Path compression.
        let mut cur = v;
        while let Some(&p) = self.parent.get(&cur) {
            if p == root {
                break;
            }
            self.parent.insert(cur, root);
            cur = p;
        }
        root
    }

    /// Merge the classes of `a` and `b`. Returns `Ok(true)` if the two
    /// classes were distinct and are now merged, `Ok(false)` if they were
    /// already one class.
    ///
    /// Constants win representative elections (so substitution maps nulls to
    /// constants whenever possible); merging two distinct constants returns
    /// them as `Err` — the chase must fail.
    pub fn union(&mut self, a: Value, b: Value) -> Result<bool, (Value, Value)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        match (ra.is_constant(), rb.is_constant()) {
            (true, true) => Err((ra, rb)),
            (true, false) => {
                self.parent.insert(rb, ra);
                Ok(true)
            }
            (false, true) => {
                self.parent.insert(ra, rb);
                Ok(true)
            }
            (false, false) => {
                // Deterministic tie-break: smaller null id is representative.
                if ra < rb {
                    self.parent.insert(rb, ra);
                } else {
                    self.parent.insert(ra, rb);
                }
                Ok(true)
            }
        }
    }

    /// Whether any merge has been recorded.
    pub fn is_trivial(&self) -> bool {
        self.parent.is_empty()
    }

    /// Resolve a value to its representative without mutation-visible
    /// side effects (path compression still applies internally).
    pub fn resolve(&mut self, v: Value) -> Value {
        self.find(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::ValuePool;

    #[test]
    fn constants_become_representatives() {
        let mut pool = ValuePool::new();
        let n1 = pool.named_null("N1");
        let n2 = pool.named_null("N2");
        let c = Value::Int(7);
        let mut u = ValueUnifier::new();
        u.union(n1, n2).unwrap();
        u.union(n2, c).unwrap();
        assert_eq!(u.find(n1), c);
        assert_eq!(u.find(n2), c);
        assert_eq!(u.find(c), c);
        assert!(!u.is_trivial());
    }

    #[test]
    fn distinct_constants_conflict() {
        let mut u = ValueUnifier::new();
        assert!(u.union(Value::Int(1), Value::Int(2)).is_err());
        // Transitive conflict through a null.
        let mut pool = ValuePool::new();
        let n = pool.named_null("N");
        let mut u = ValueUnifier::new();
        u.union(n, Value::Int(1)).unwrap();
        let err = u.union(n, Value::Int(2)).unwrap_err();
        assert!(err == (Value::Int(1), Value::Int(2)) || err == (Value::Int(2), Value::Int(1)));
    }

    #[test]
    fn null_null_merge_is_deterministic() {
        let mut pool = ValuePool::new();
        let n1 = pool.named_null("N1");
        let n2 = pool.named_null("N2");
        let mut u = ValueUnifier::new();
        u.union(n2, n1).unwrap();
        assert_eq!(u.find(n2), n1);
        assert_eq!(u.find(n1), n1);
    }

    #[test]
    fn idempotent_unions_are_trivia_free() {
        let mut u = ValueUnifier::new();
        u.union(Value::Int(1), Value::Int(1)).unwrap();
        assert!(u.is_trivial());
    }
}
