//! The chase: a data-exchange engine producing solutions for a source
//! instance under a schema mapping.
//!
//! The original paper ran on top of Clio, whose generated transforms
//! materialize a target instance; the data-exchange literature's canonical
//! construction is the chase of Fagin, Kolaitis, Miller and Popa (“Data
//! Exchange: Semantics and Query Answering”), which this crate implements
//! from scratch:
//!
//! * [`chase`] — run the chase of `(I, ∅)` with `Σst ∪ Σt`, producing a
//!   target instance `J` such that `(I, J) ⊨ Σst ∪ Σt` (a *universal*
//!   solution in `Fresh` mode when it terminates).
//! * [`NullMode::Fresh`] — the standard chase: a tgd fires only when its RHS
//!   is not already satisfiable, inventing fresh labeled nulls. This is the
//!   textbook construction.
//! * [`NullMode::Skolem`] — the Skolemized (oblivious) chase: existential
//!   variables receive deterministic nulls keyed by the universal binding.
//!   This models how Clio-generated executables actually behave and is
//!   idempotent, which the benchmark generators rely on.
//! * Target egds are applied to fixpoint between tgd rounds, with proper
//!   chase-failure detection when two distinct constants are equated.
//! * [`hom::find_homomorphism`] — instance-level homomorphism search, used
//!   by tests to verify universality of chase results.
//!
//! Tgd application is *semi-naive*: after the first round, only matches
//! touching a tuple from the previous round's delta are re-derived.

pub mod egd_log;
pub mod engine;
pub mod hom;
pub mod impact;
pub mod result;
pub mod unify;

pub use egd_log::{history_to_string, merges_affecting, EgdLog, EgdMerge};
pub use engine::{chase, chase_with_pool, chase_with_st_matches, ChaseOptions, NullMode};
pub use hom::find_homomorphism;
pub use impact::{
    canon_value, impact_to_string, mapping_impact, solution_diff, target_row_diff, ImpactReport,
    RowDiff,
};
pub use result::{ChaseError, ChaseResult, ChaseStats, TgdStats};
