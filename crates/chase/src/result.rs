//! Chase outcomes.

use std::fmt;

use routes_model::{Instance, Value};

use crate::egd_log::EgdLog;

/// A successful chase run.
#[derive(Debug)]
pub struct ChaseResult {
    /// The produced target instance `J`.
    pub target: Instance,
    /// Number of tgd rounds executed (s-t application counts as round 1).
    pub rounds: usize,
    /// Number of distinct target tuples created across the run (before egd
    /// merging).
    pub tuples_created: usize,
    /// Number of egd fixpoint passes that changed the instance.
    pub egd_rewrites: usize,
    /// Every value merge egds performed, in order (egd provenance — see
    /// [`crate::egd_log`]).
    pub egd_log: EgdLog,
    /// Per-dependency attribution, s-t tgds first then target tgds, in
    /// mapping order.
    pub per_tgd: Vec<TgdStats>,
}

/// Per-dependency chase attribution: how much work one tgd caused.
///
/// The counters (`matches`, `fired`) are deterministic — identical at
/// every worker count and across sampler on/off runs — so they take part
/// in equality. `wall_us` is a measurement, not a result; it is
/// deliberately **excluded** from `PartialEq` so the engine's
/// `sequential.stats() == parallel.stats()` determinism contract keeps
/// holding.
#[derive(Debug, Clone, Eq)]
pub struct TgdStats {
    /// The dependency's display name (e.g. `m1`).
    pub name: String,
    /// Whether this is an s-t tgd (`false`: target tgd).
    pub st: bool,
    /// LHS matches enumerated across all rounds (before the fire-side
    /// satisfiability check in Fresh mode).
    pub matches: u64,
    /// Distinct target tuples this tgd's firings inserted.
    pub fired: u64,
    /// Wall time spent matching and firing this tgd, in microseconds.
    /// Excluded from equality (see type docs).
    pub wall_us: u64,
}

impl PartialEq for TgdStats {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.st == other.st
            && self.matches == other.matches
            && self.fired == other.fired
    }
}

impl TgdStats {
    /// A zeroed accumulator for one dependency.
    pub fn new(name: &str, st: bool) -> TgdStats {
        TgdStats {
            name: name.to_owned(),
            st,
            matches: 0,
            fired: 0,
            wall_us: 0,
        }
    }
}

/// Plain-data summary of a chase run, detached from the instances it
/// produced — cheap to clone, store alongside a session, or serialize.
/// Equality ignores the per-tgd wall times (see [`TgdStats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of tgd rounds executed.
    pub rounds: usize,
    /// Distinct target tuples created across the run (before egd merging).
    pub tuples_created: usize,
    /// Egd fixpoint passes that changed the instance.
    pub egd_rewrites: usize,
    /// Individual value merges egds performed.
    pub egd_merges: usize,
    /// Tuples in the final target instance `J`.
    pub target_tuples: usize,
    /// Per-dependency attribution, s-t tgds first then target tgds, in
    /// mapping order.
    pub per_tgd: Vec<TgdStats>,
}

impl ChaseResult {
    /// Summarize this run as detached [`ChaseStats`].
    pub fn stats(&self) -> ChaseStats {
        ChaseStats {
            rounds: self.rounds,
            tuples_created: self.tuples_created,
            egd_rewrites: self.egd_rewrites,
            egd_merges: self.egd_log.len(),
            target_tuples: self.target.total_tuples(),
            per_tgd: self.per_tgd.clone(),
        }
    }
}

/// Why a chase run did not produce a solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseError {
    /// An egd equated two distinct constants: no solution exists.
    Failed {
        /// The offending egd's name.
        egd: String,
        /// The two constants that would have to be equal.
        values: (Value, Value),
    },
    /// The round limit was reached before a fixpoint (the dependency set is
    /// probably not terminating, e.g. not weakly acyclic).
    RoundLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The tuple budget was exhausted.
    TupleLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Failed { egd, values } => {
                write!(
                    f,
                    "chase failed: egd `{egd}` equates distinct constants {:?} and {:?}",
                    values.0, values.1
                )
            }
            ChaseError::RoundLimit { limit } => {
                write!(f, "chase did not terminate within {limit} rounds")
            }
            ChaseError::TupleLimit { limit } => {
                write!(f, "chase exceeded the tuple budget of {limit}")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::Schema;

    #[test]
    fn stats_summarize_the_run() {
        let mut schema = Schema::new();
        let r = schema.rel("T", &["a"]);
        let mut target = Instance::new(&schema);
        target.insert_ok(r, &[Value::Int(1)]);
        target.insert_ok(r, &[Value::Int(2)]);
        let result = ChaseResult {
            target,
            rounds: 3,
            tuples_created: 5,
            egd_rewrites: 1,
            egd_log: Vec::new(),
            per_tgd: vec![TgdStats::new("m1", true)],
        };
        let stats = result.stats();
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.tuples_created, 5);
        assert_eq!(stats.egd_rewrites, 1);
        assert_eq!(stats.egd_merges, 0);
        assert_eq!(stats.target_tuples, 2);
        assert_eq!(stats.per_tgd.len(), 1);
    }

    #[test]
    fn tgd_stats_equality_ignores_wall_time() {
        let mut a = TgdStats::new("m1", true);
        a.matches = 4;
        a.fired = 2;
        a.wall_us = 1_000;
        let mut b = a.clone();
        b.wall_us = 999_999;
        assert_eq!(a, b);
        b.fired = 3;
        assert_ne!(a, b);
    }

    #[test]
    fn error_display() {
        let e = ChaseError::Failed {
            egd: "m6".into(),
            values: (Value::Int(1), Value::Int(2)),
        };
        assert!(e.to_string().contains("m6"));
        assert!(ChaseError::RoundLimit { limit: 5 }
            .to_string()
            .contains('5'));
        assert!(ChaseError::TupleLimit { limit: 9 }
            .to_string()
            .contains('9'));
    }
}
