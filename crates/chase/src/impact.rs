//! Mapping-edit impact analysis: how does changing the schema mapping
//! change the solution?
//!
//! The paper's Scenario 1 ends with "Ideally, we would also like to be able
//! to simultaneously demonstrate how the modification of `m1` to `m1'`
//! affects tuples in `J`. This is one of our future work." This module is
//! that feature: chase the source under both the original and the edited
//! mapping and diff the two solutions.
//!
//! Labeled nulls are invented fresh on every chase, so raw tuple equality
//! would call every null-carrying tuple "changed". The diff therefore
//! compares tuples by their **null-canonical skeleton**: nulls are renamed
//! `⊥0, ⊥1, ...` in order of first occurrence within the tuple, which
//! preserves intra-tuple equality patterns (`T(N, N)` ≠ `T(N, M)`) while
//! ignoring null identity. This is a per-tuple approximation of solution
//! isomorphism — cheap, deterministic, and exactly the granularity a
//! mapping designer inspects tuples at.

use std::collections::HashMap;

use routes_mapping::SchemaMapping;
use routes_model::{Instance, NullId, RelId, Schema, TupleId, Value, ValuePool};

use crate::engine::{chase, ChaseOptions};
use crate::result::ChaseError;

/// A tuple rendered with canonically renamed nulls.
pub type Skeleton = (RelId, Box<[Value]>);

/// The effect of a mapping edit on the solution.
#[derive(Debug, Clone, Default)]
pub struct ImpactReport {
    /// Tuple skeletons present (more often) in the new solution, with
    /// multiplicity difference.
    pub added: Vec<(Skeleton, usize)>,
    /// Tuple skeletons present (more often) in the old solution.
    pub removed: Vec<(Skeleton, usize)>,
    /// Number of skeleton-identical tuples shared by both solutions.
    pub unchanged: usize,
    /// Total tuples in the old solution.
    pub old_total: usize,
    /// Total tuples in the new solution.
    pub new_total: usize,
}

impl ImpactReport {
    /// Whether the edit changed the solution at all (up to null renaming).
    pub fn is_noop(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Canonicalize a tuple's nulls to `⊥0, ⊥1, ...` in order of first
/// occurrence.
fn skeleton(values: &[Value]) -> Box<[Value]> {
    let mut mapping: HashMap<NullId, u32> = HashMap::new();
    values
        .iter()
        .map(|v| match v {
            Value::Null(n) => {
                let next = mapping.len() as u32;
                Value::Null(NullId(*mapping.entry(*n).or_insert(next)))
            }
            other => *other,
        })
        .collect()
}

/// Diff two solutions over the same target schema by null-canonical tuple
/// skeletons.
pub fn solution_diff(schema: &Schema, old: &Instance, new: &Instance) -> ImpactReport {
    let mut counts: HashMap<Skeleton, (usize, usize)> = HashMap::new();
    for (rel, _) in schema.iter() {
        for (_, values) in old.rel_tuples(rel) {
            counts.entry((rel, skeleton(&values))).or_default().0 += 1;
        }
        for (_, values) in new.rel_tuples(rel) {
            counts.entry((rel, skeleton(&values))).or_default().1 += 1;
        }
    }
    let mut report = ImpactReport {
        old_total: old.total_tuples(),
        new_total: new.total_tuples(),
        ..ImpactReport::default()
    };
    let mut entries: Vec<(Skeleton, (usize, usize))> = counts.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (skel, (old_n, new_n)) in entries {
        report.unchanged += old_n.min(new_n);
        if new_n > old_n {
            report.added.push((skel, new_n - old_n));
        } else if old_n > new_n {
            report.removed.push((skel, old_n - new_n));
        }
    }
    report
}

/// A type-tagged canonical rendering of one value: `i:` / `s:` / `n:`
/// prefixes keep `Int(5)` from aliasing `Str("5")`, and nulls compare by
/// *label* rather than raw id, so values from two different pools (e.g.
/// before and after a scenario edit re-parse) compare by meaning.
pub fn canon_value(pool: &ValuePool, v: Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Str(_) => format!("s:{}", pool.value_to_string(v)),
        Value::Null(_) => format!("n:{}", pool.value_to_string(v)),
    }
}

/// Row positions where two instances of the same schema disagree.
///
/// Unlike [`solution_diff`]'s null-canonical skeletons this diff is
/// *coordinate-sensitive*: row `r` of relation `R` is touched when the two
/// instances disagree at that exact position (different values under
/// [`canon_value`], or present in only one). Route forests reference
/// tuples by `(rel, row)`, so this is the granularity at which the
/// incremental layer decides which memoized forests survive an edit.
#[derive(Debug, Clone, Default)]
pub struct RowDiff {
    /// Touched positions in the old instance's coordinates.
    pub old: Vec<TupleId>,
    /// Touched positions in the new instance's coordinates.
    pub new: Vec<TupleId>,
}

impl RowDiff {
    /// Whether the instances agree at every position.
    pub fn is_empty(&self) -> bool {
        self.old.is_empty() && self.new.is_empty()
    }
}

/// Position-wise diff of two instances over `schema`, each rendered under
/// its own value pool (see [`RowDiff`]).
pub fn target_row_diff(
    schema: &Schema,
    old: &Instance,
    old_pool: &ValuePool,
    new: &Instance,
    new_pool: &ValuePool,
) -> RowDiff {
    let mut diff = RowDiff::default();
    for (rel, _) in schema.iter() {
        let old_rows: Vec<Vec<Value>> = old.rel_tuples(rel).map(|(_, v)| v).collect();
        let new_rows: Vec<Vec<Value>> = new.rel_tuples(rel).map(|(_, v)| v).collect();
        for row in 0..old_rows.len().max(new_rows.len()) {
            let same = match (old_rows.get(row), new_rows.get(row)) {
                (Some(o), Some(n)) => {
                    o.len() == n.len()
                        && o.iter().zip(n.iter()).all(|(&ov, &nv)| {
                            canon_value(old_pool, ov) == canon_value(new_pool, nv)
                        })
                }
                _ => false,
            };
            if !same {
                let tid = TupleId {
                    rel,
                    row: row as u32,
                };
                if row < old_rows.len() {
                    diff.old.push(tid);
                }
                if row < new_rows.len() {
                    diff.new.push(tid);
                }
            }
        }
    }
    diff
}

/// Chase `source` under both mappings and report the solution difference.
///
/// Both mappings must share the same target schema (relation names and
/// arities); the source schemas may differ as long as `source` is valid for
/// both (editing tgds does not change schemas).
///
/// # Errors
/// Propagates a chase failure from either mapping (e.g. an egd conflict the
/// edit introduced — itself a useful debugging signal).
pub fn mapping_impact(
    old_mapping: &SchemaMapping,
    new_mapping: &SchemaMapping,
    source: &Instance,
    pool: &mut ValuePool,
    options: ChaseOptions,
) -> Result<ImpactReport, ChaseError> {
    let old = chase(old_mapping, source, pool, options)?;
    let new = chase(new_mapping, source, pool, options)?;
    Ok(solution_diff(
        new_mapping.target(),
        &old.target,
        &new.target,
    ))
}

/// Render an impact report as text (up to `limit` rows per direction).
pub fn impact_to_string(
    pool: &ValuePool,
    schema: &Schema,
    report: &ImpactReport,
    limit: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "solution changed: {} tuple(s) -> {} tuple(s); {} unchanged, {} removed, {} added\n",
        report.old_total,
        report.new_total,
        report.unchanged,
        report.removed.len(),
        report.added.len(),
    ));
    let render = |out: &mut String, label: &str, rows: &[(Skeleton, usize)]| {
        for ((rel, values), count) in rows.iter().take(limit) {
            let rendered: Vec<String> = values
                .iter()
                .map(|v| match v {
                    Value::Null(n) => format!("_{}", n.0),
                    other => pool.value_to_string(*other),
                })
                .collect();
            let mult = if *count > 1 {
                format!(" (x{count})")
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {label} {}({}){}\n",
                schema.relation(*rel).name(),
                rendered.join(", "),
                mult
            ));
        }
        if rows.len() > limit {
            out.push_str(&format!("  ... and {} more\n", rows.len() - limit));
        }
    };
    render(&mut out, "-", &report.removed);
    render(&mut out, "+", &report.added);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::parse_st_tgd;

    #[test]
    fn skeleton_canonicalizes_null_patterns() {
        let mut pool = ValuePool::new();
        let n1 = pool.named_null("N1");
        let n2 = pool.named_null("N2");
        let n9 = pool.named_null("N9");
        // Same pattern, different null identities → same skeleton.
        assert_eq!(
            skeleton(&[n1, Value::Int(1), n1]),
            skeleton(&[n9, Value::Int(1), n9])
        );
        // Different patterns → different skeletons.
        assert_ne!(
            skeleton(&[n1, Value::Int(1), n1]),
            skeleton(&[n1, Value::Int(1), n2])
        );
    }

    /// The paper's Scenario 1 fix: m1 (maiden name copied into name, no
    /// address) edited to m1' (correct name, location mapped to address).
    #[test]
    fn scenario_1_edit_impact() {
        let mut s = Schema::new();
        s.rel(
            "Cards",
            &[
                "cardNo",
                "limit",
                "ssn",
                "name",
                "maidenName",
                "salary",
                "location",
            ],
        );
        let mut t = Schema::new();
        t.rel("Accounts", &["accNo", "limit", "accHolder"]);
        t.rel(
            "Clients",
            &["ssn", "name", "maidenName", "income", "address"],
        );
        let mut pool = ValuePool::new();

        let mut old_m = SchemaMapping::new(s.clone(), t.clone());
        old_m
            .add_st_tgd(
                parse_st_tgd(
                    &s, &t, &mut pool,
                    "m1: Cards(cn,l,s,n,m,sal,loc) -> exists A: Accounts(cn,l,s) & Clients(s,m,m,sal,A)",
                )
                .unwrap(),
            )
            .unwrap();
        let mut new_m = SchemaMapping::new(s.clone(), t.clone());
        new_m
            .add_st_tgd(
                parse_st_tgd(
                    &s,
                    &t,
                    &mut pool,
                    "m1: Cards(cn,l,s,n,m,sal,loc) -> Accounts(cn,l,s) & Clients(s,n,m,sal,loc)",
                )
                .unwrap(),
            )
            .unwrap();

        let mut i = Instance::new(&s);
        let (jlong, smith, seattle) = (pool.str("J. Long"), pool.str("Smith"), pool.str("Seattle"));
        i.insert_ok(
            s.rel_id("Cards").unwrap(),
            &[
                Value::Int(6689),
                Value::Int(15),
                Value::Int(434),
                jlong,
                smith,
                Value::Int(50),
                seattle,
            ],
        );

        let report = mapping_impact(&old_m, &new_m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        assert!(!report.is_noop());
        // Accounts unchanged; the Clients tuple is replaced.
        assert_eq!(report.unchanged, 1);
        assert_eq!(report.removed.len(), 1);
        assert_eq!(report.added.len(), 1);
        let ((_, removed), _) = &report.removed[0];
        assert_eq!(removed[1], smith); // old name = maiden name
        assert!(removed[4].is_null()); // old address = null
        let ((_, added), _) = &report.added[0];
        assert_eq!(added[1], jlong);
        assert_eq!(added[4], seattle);

        let text = impact_to_string(&pool, &t, &report, 10);
        assert!(text.contains("- Clients(434, Smith, Smith, 50, _0)"));
        assert!(text.contains("+ Clients(434, J. Long, Smith, 50, Seattle)"));
    }

    #[test]
    fn row_diff_is_position_sensitive_and_pool_aware() {
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let tr = t.rel_id("T").unwrap();
        let mut old_pool = ValuePool::new();
        let mut new_pool = ValuePool::new();

        // Old: T(1, "x"), T(2, N). New pool interns in a different order,
        // so raw ids differ while renders agree.
        let mut old = Instance::new(&t);
        let ox = old_pool.str("x");
        let on = old_pool.named_null("N");
        old.insert_ok(tr, &[Value::Int(1), ox]);
        old.insert_ok(tr, &[Value::Int(2), on]);

        let mut new = Instance::new(&t);
        let _pad = new_pool.str("padding"); // shift symbol ids
        let nx = new_pool.str("x");
        let nn = new_pool.named_null("N");
        new.insert_ok(tr, &[Value::Int(1), nx]);
        new.insert_ok(tr, &[Value::Int(2), nn]);
        assert!(target_row_diff(&t, &old, &old_pool, &new, &new_pool).is_empty());

        // A changed row 0 and an appended row 2 are both touched; the
        // untouched row 1 is not.
        new = Instance::new(&t);
        new.insert_ok(tr, &[Value::Int(9), nx]);
        new.insert_ok(tr, &[Value::Int(2), nn]);
        new.insert_ok(tr, &[Value::Int(3), nx]);
        let diff = target_row_diff(&t, &old, &old_pool, &new, &new_pool);
        assert_eq!(diff.old, vec![TupleId { rel: tr, row: 0 }]);
        assert_eq!(
            diff.new,
            vec![TupleId { rel: tr, row: 0 }, TupleId { rel: tr, row: 2 }]
        );

        // Int(5) never aliases Str("5").
        let five = new_pool.str("5");
        let mut a = Instance::new(&t);
        a.insert_ok(tr, &[Value::Int(5), Value::Int(0)]);
        let mut b = Instance::new(&t);
        b.insert_ok(tr, &[five, Value::Int(0)]);
        assert!(!target_row_diff(&t, &a, &new_pool, &b, &new_pool).is_empty());
    }

    #[test]
    fn identical_mappings_are_noop() {
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> exists Y: T(x,Y)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
        // Two chases invent different nulls; the skeleton diff sees through
        // that.
        let report = mapping_impact(&m, &m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        assert!(report.is_noop());
        assert_eq!(report.unchanged, 1);
    }

    #[test]
    fn removed_tgd_drops_tuples() {
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a"]);
        t.rel("U", &["a"]);
        let mut pool = ValuePool::new();
        let mut old_m = SchemaMapping::new(s.clone(), t.clone());
        old_m
            .add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "a: S(x) -> T(x)").unwrap())
            .unwrap();
        old_m
            .add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "b: S(x) -> U(x)").unwrap())
            .unwrap();
        let mut new_m = SchemaMapping::new(s.clone(), t.clone());
        new_m
            .add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "a: S(x) -> T(x)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
        i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(2)]);
        let report = mapping_impact(&old_m, &new_m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        assert_eq!(report.removed.len(), 2); // both U tuples gone
        assert!(report.added.is_empty());
        assert_eq!(report.unchanged, 2);
    }
}
