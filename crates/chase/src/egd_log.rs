//! Egd provenance: a log of the value merges egds performed during the
//! chase, with history queries.
//!
//! The paper's routes deliberately contain no egd steps (if `K` satisfies an
//! egd, so does every subinstance — §3), but its future work asks for
//! "definitions and algorithms for computing routes that take into account
//! egds". This module supplies the raw material: every time an egd equates
//! two values during solution construction, the chase records it, and
//! [`merges_affecting`] reconstructs the merge tree behind any value —
//! answering the debugger question *"why is this account number 2252 and
//! not a null?"* with *"egd m6 equated N1 with 2252"*.

use routes_model::{Value, ValuePool};

/// One value merge performed by an egd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EgdMerge {
    /// Name of the egd that fired.
    pub egd: String,
    /// The two (pre-merge) values it equated.
    pub equated: (Value, Value),
    /// The class representative the pair resolved to, at the end of the
    /// egd pass that performed this merge.
    pub resolved: Value,
}

/// The full sequence of merges, in application order.
pub type EgdLog = Vec<EgdMerge>;

/// The subset of the log that (transitively) contributed to `value`:
/// merges whose resolution is `value`, plus merges that produced either
/// side of those, and so on.
pub fn merges_affecting(log: &[EgdMerge], value: Value) -> Vec<&EgdMerge> {
    let mut frontier = vec![value];
    let mut involved: Vec<&EgdMerge> = Vec::new();
    let mut seen_values = std::collections::HashSet::new();
    while let Some(v) = frontier.pop() {
        if !seen_values.insert(v) {
            continue;
        }
        for merge in log {
            if merge.resolved == v && !involved.iter().any(|m| std::ptr::eq(*m, merge)) {
                involved.push(merge);
                frontier.push(merge.equated.0);
                frontier.push(merge.equated.1);
            }
        }
    }
    involved
}

/// Render the merge history of a value as indented text.
pub fn history_to_string(pool: &ValuePool, log: &[EgdMerge], value: Value) -> String {
    let merges = merges_affecting(log, value);
    if merges.is_empty() {
        return format!(
            "{} was never touched by an egd\n",
            pool.value_to_string(value)
        );
    }
    let mut out = String::new();
    for m in merges {
        out.push_str(&format!(
            "egd {} equated {} with {} (resolved to {})\n",
            m.egd,
            pool.value_to_string(m.equated.0),
            pool.value_to_string(m.equated.1),
            pool.value_to_string(m.resolved),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merge(egd: &str, a: Value, b: Value, r: Value) -> EgdMerge {
        EgdMerge {
            egd: egd.into(),
            equated: (a, b),
            resolved: r,
        }
    }

    #[test]
    fn transitive_history() {
        let mut pool = ValuePool::new();
        let n1 = pool.named_null("N1");
        let n2 = pool.named_null("N2");
        let c = Value::Int(5);
        // Pass 1: N1 = N2 (resolved to N1); pass 2: N1 = 5 (resolved to 5).
        let log = vec![merge("e1", n1, n2, n1), merge("e2", n1, c, c)];
        let hist = merges_affecting(&log, c);
        assert_eq!(hist.len(), 2);
        // A value never merged has empty history.
        assert!(merges_affecting(&log, Value::Int(99)).is_empty());
        // N1's own history (as a pass-1 representative) is just the first
        // merge.
        assert_eq!(merges_affecting(&log, n1).len(), 1);
        let text = history_to_string(&pool, &log, c);
        assert!(text.contains("e1") && text.contains("e2"));
        assert!(history_to_string(&pool, &log, Value::Int(99)).contains("never touched"));
    }
}
