//! Rolling windowed request metrics: a ring of fixed one-second slots.
//!
//! `/metrics` counters are cumulative since boot, which makes "how is the
//! service doing *right now*" a derivative the operator has to compute
//! between scrapes. The [`WindowRing`] answers it directly: the last `N`
//! seconds of traffic as live requests-per-second, error rate, and
//! streamed p50/p90/p99 request latency.
//!
//! ## Ring math
//!
//! The ring holds `N` slots, each stamped with the epoch second (seconds
//! since ring creation) it currently represents; a recording thread maps
//! `now_epoch % N` to a slot and, when the stamp is outdated, CASes the
//! stamp forward and zeroes the slot's counters (lazy reset — no ticker
//! thread needed). A snapshot sums every slot whose stamp still lies
//! within the last `N` seconds, so slots untouched since their second
//! passed simply age out of the sum.
//!
//! ## Race tolerance
//!
//! All counters are relaxed atomics. Two benign races exist and are
//! accepted: (a) a request that straddles a slot reset may land an
//! increment in the zeroed slot (counted in the new second) or lose it
//! (one sample missing from a window); (b) a snapshot running concurrently
//! with recording may see a slot's request count and latency histogram at
//! slightly different instants. Both distort one second of a multi-second
//! window by at most the requests in flight at that moment — the
//! quantiles are estimates by construction (histogram interpolation), and
//! the determinism contracts of the engine are untouched because nothing
//! here feeds back into request handling.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use crate::metrics::LATENCY_BUCKETS_US;

/// Environment knob: how many one-second slots the window ring holds.
pub const WINDOW_SECONDS_ENV: &str = "ROUTES_WINDOW_SECONDS";

/// Default window length in seconds.
pub const DEFAULT_WINDOW_SECONDS: usize = 10;

/// Largest accepted window length (bounds memory: one slot per second).
pub const MAX_WINDOW_SECONDS: usize = 3600;

/// Resolve the window length from the environment (clamped to
/// `1..=MAX_WINDOW_SECONDS`; unset or unparsable means the default).
pub fn window_seconds_from_env() -> usize {
    match std::env::var(WINDOW_SECONDS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, MAX_WINDOW_SECONDS),
            Err(_) => DEFAULT_WINDOW_SECONDS,
        },
        Err(_) => DEFAULT_WINDOW_SECONDS,
    }
}

/// One second of traffic.
struct Slot {
    /// The epoch second this slot currently represents; `u64::MAX` marks a
    /// slot that has never been written.
    stamp: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(u64::MAX),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Default::default(),
        }
    }

    fn reset(&self) {
        self.requests.store(0, Relaxed);
        self.errors.store(0, Relaxed);
        for b in &self.latency {
            b.store(0, Relaxed);
        }
    }
}

/// A ring of one-second traffic slots; see the module docs for the math.
pub struct WindowRing {
    started: Instant,
    slots: Vec<Slot>,
}

/// An aggregated view over the ring's live window. All values are
/// integers so both renderings (JSON and Prometheus) stay exactly
/// representable and trivially parseable: rates are milli-scaled
/// (`rps_milli = 1500` means 1.5 requests/s) and quantiles are in µs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Window length in seconds (the ring size, not the observed span).
    pub seconds: usize,
    /// Requests recorded in the window.
    pub requests: u64,
    /// 5xx responses recorded in the window.
    pub errors: u64,
    /// Requests per second × 1000, averaged over the whole window.
    pub rps_milli: u64,
    /// Errors per request × 1000 (0 when the window saw no requests).
    pub error_rate_milli: u64,
    /// Interpolated latency quantiles over the window, in µs.
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
}

impl WindowRing {
    /// A ring of `seconds` one-second slots (at least one).
    pub fn new(seconds: usize) -> WindowRing {
        WindowRing {
            started: Instant::now(),
            slots: (0..seconds.max(1)).map(|_| Slot::empty()).collect(),
        }
    }

    /// Window length in seconds.
    pub fn seconds(&self) -> usize {
        self.slots.len()
    }

    fn now_epoch(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Record one response in the current second.
    pub fn record(&self, status: u16, latency_us: u64) {
        self.record_at(self.now_epoch(), status, latency_us);
    }

    /// Aggregate the last `seconds()` seconds.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_epoch())
    }

    fn record_at(&self, epoch: u64, status: u16, latency_us: u64) {
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let stamp = slot.stamp.load(Relaxed);
        if stamp != epoch
            && slot
                .stamp
                .compare_exchange(stamp, epoch, Relaxed, Relaxed)
                .is_ok()
        {
            // This thread won the roll-over; zero the outdated counters.
            slot.reset();
        }
        slot.requests.fetch_add(1, Relaxed);
        if status >= 500 {
            slot.errors.fetch_add(1, Relaxed);
        }
        slot.latency[bucket_of(latency_us)].fetch_add(1, Relaxed);
    }

    fn snapshot_at(&self, epoch: u64) -> WindowSnapshot {
        let n = self.slots.len() as u64;
        let oldest = epoch.saturating_sub(n - 1);
        let mut requests = 0u64;
        let mut errors = 0u64;
        let mut latency = vec![0u64; LATENCY_BUCKETS_US.len() + 1];
        for slot in &self.slots {
            let stamp = slot.stamp.load(Relaxed);
            if stamp < oldest || stamp > epoch {
                continue; // aged out (or never written: u64::MAX)
            }
            requests += slot.requests.load(Relaxed);
            errors += slot.errors.load(Relaxed);
            for (acc, b) in latency.iter_mut().zip(&slot.latency) {
                *acc += b.load(Relaxed);
            }
        }
        WindowSnapshot {
            seconds: self.slots.len(),
            requests,
            errors,
            rps_milli: requests * 1000 / n,
            error_rate_milli: (errors * 1000).checked_div(requests).unwrap_or(0),
            p50_us: quantile_us(&latency, requests, 50),
            p90_us: quantile_us(&latency, requests, 90),
            p99_us: quantile_us(&latency, requests, 99),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    LATENCY_BUCKETS_US
        .iter()
        .position(|&b| us <= b)
        .unwrap_or(LATENCY_BUCKETS_US.len())
}

/// Estimate the `pct`-th percentile (0–100) from per-bucket counts by
/// linear interpolation inside the bucket holding the target rank. The
/// unbounded tail bucket reports its lower bound (the largest finite
/// bound) — the histogram cannot resolve beyond it. Returns 0 for an
/// empty window.
fn quantile_us(counts: &[u64], total: u64, pct: u64) -> u64 {
    if total == 0 {
        return 0;
    }
    // Rank of the target sample, 1-based: ceil(total * pct / 100).
    let rank = (total * pct).div_ceil(100).max(1);
    let mut seen = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if seen + count >= rank {
            let lower = if i == 0 { 0 } else { LATENCY_BUCKETS_US[i - 1] };
            let Some(&upper) = LATENCY_BUCKETS_US.get(i) else {
                return *LATENCY_BUCKETS_US.last().expect("buckets non-empty");
            };
            // Position of the rank inside this bucket, in (0, 1].
            let into = rank - seen;
            return lower + (upper - lower) * into / count;
        }
        seen += count;
    }
    *LATENCY_BUCKETS_US.last().expect("buckets non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_reports_zeros() {
        let ring = WindowRing::new(5);
        let s = ring.snapshot();
        assert_eq!(s.seconds, 5);
        assert_eq!(s.requests, 0);
        assert_eq!(s.errors, 0);
        assert_eq!(s.rps_milli, 0);
        assert_eq!(s.error_rate_milli, 0);
        assert_eq!((s.p50_us, s.p90_us, s.p99_us), (0, 0, 0));
    }

    #[test]
    fn rates_average_over_the_whole_window() {
        let ring = WindowRing::new(4);
        // Two seconds of traffic inside a 4-second window.
        for _ in 0..6 {
            ring.record_at(10, 200, 50);
        }
        ring.record_at(11, 500, 50);
        ring.record_at(11, 502, 2_000);
        let s = ring.snapshot_at(11);
        assert_eq!(s.requests, 8);
        assert_eq!(s.errors, 2);
        assert_eq!(s.rps_milli, 2000); // 8 requests / 4 s
        assert_eq!(s.error_rate_milli, 250); // 2 / 8
    }

    #[test]
    fn old_slots_age_out_and_get_reused() {
        let ring = WindowRing::new(2);
        ring.record_at(0, 200, 50);
        ring.record_at(1, 200, 50);
        assert_eq!(ring.snapshot_at(1).requests, 2);
        // Epoch 2 reuses slot 0; its old contents no longer count.
        assert_eq!(ring.snapshot_at(2).requests, 1);
        ring.record_at(2, 200, 50);
        assert_eq!(ring.snapshot_at(2).requests, 2);
        // Far in the future everything has aged out.
        assert_eq!(ring.snapshot_at(100).requests, 0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let ring = WindowRing::new(1);
        // 100 samples at ~50 µs: every quantile lands in the first bucket
        // (bound 100 µs) and interpolates linearly inside it.
        for _ in 0..100 {
            ring.record_at(0, 200, 50);
        }
        let s = ring.snapshot_at(0);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p90_us, 90);
        assert_eq!(s.p99_us, 99);
    }

    #[test]
    fn tail_quantile_finds_the_slow_bucket() {
        let ring = WindowRing::new(1);
        for _ in 0..99 {
            ring.record_at(0, 200, 50);
        }
        // One sample beyond the largest finite bound.
        ring.record_at(0, 200, 5_000_000);
        let s = ring.snapshot_at(0);
        assert!(s.p50_us <= 100);
        // p99 rank (99) still falls among the fast samples…
        assert!(s.p99_us <= 100, "p99 {}", s.p99_us);
        // …but one more slow sample pushes it into the tail.
        ring.record_at(0, 200, 5_000_000);
        let s = ring.snapshot_at(0);
        assert_eq!(
            s.p99_us,
            *LATENCY_BUCKETS_US.last().unwrap(),
            "tail bucket reports its lower bound"
        );
    }

    #[test]
    fn env_knob_parses_and_clamps() {
        // Not touching the real environment (other tests run in parallel);
        // exercise the clamp bounds through the constructor instead.
        assert_eq!(WindowRing::new(0).seconds(), 1);
        assert_eq!(WindowRing::new(7).seconds(), 7);
    }
}
