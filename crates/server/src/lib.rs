//! `routes-server` — a concurrent route-debugging service over HTTP.
//!
//! The `spiderd` binary exposes the workspace's route algorithms as a
//! small JSON service, so editors and notebooks can probe a mapping
//! scenario without embedding the Rust library:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 subset (keep-alive, strict limits).
//! * [`json`] — an in-repo JSON value, parser, and encoder (the workspace
//!   builds offline with no external crates — see `DESIGN.md`).
//! * [`session`] — the sharded session store (`ROUTES_SESSION_SHARDS` or
//!   available parallelism shards, each its own `RwLock<HashMap>` slice)
//!   with segmented-LRU eviction, read-lock + atomic touches, and a
//!   per-session memoized route-forest cache.
//! * [`router`] — the REST surface: `POST /sessions`, one-route /
//!   all-routes probes, summaries, `GET /metrics` (JSON or Prometheus
//!   text), `GET /healthz`, `GET /trace`, `GET /profile` (self-profiler
//!   scrape: JSON or flamegraph-collapsed text), per-session
//!   `GET /sessions/{id}/profile` (per-tgd chase attribution, per-hop
//!   pipeline timings), `POST /shutdown`. Every request
//!   runs under a `routes-obs` trace context: the response echoes
//!   `X-Trace-Id`, error bodies carry `trace_id`, and instrumented seams
//!   (chase, forest, route, print, shard locks, WAL append/fsync,
//!   checkpoint) record spans into the tracer's ring.
//! * [`metrics`] — atomic counters plus a request-latency histogram
//!   (with per-bucket trace-id exemplars), rendered as JSON and as
//!   Prometheus text exposition.
//! * [`window`] — a ring of one-second slots giving the last N seconds
//!   of traffic as live rps, error rate, and interpolated p50/p90/p99
//!   (the `window` block of `/metrics`).
//! * [`persist`] — optional durability (`--data-dir`): WAL appends on
//!   every session mutation, periodic snapshot + log-compaction
//!   checkpoints, snapshot-then-log crash recovery (via `routes-store`).
//! * [`server`] — a dedicated acceptor feeding a bounded connection
//!   queue drained by a fixed worker pool: over-capacity connections are
//!   shed with `429` + `Retry-After`, every request runs under a
//!   wall-clock deadline a trickling peer cannot reset (`408` + reap),
//!   and shutdown drains gracefully (stop accepting, finish in-flight,
//!   close idle keep-alives cleanly).
//!
//! Scenario loading and solution materialization reuse the `spider` CLI's
//! loader and `prepare` step, so a scenario file means exactly the same
//! thing to both front-ends.

pub mod http;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod router;
pub mod server;
pub mod session;
pub mod window;

pub use json::Json;
pub use persist::{Persistence, RecoveryReport, CHECKPOINT_RECORDS_ENV, DATA_DIR_ENV};
pub use router::App;
pub use server::{
    Server, ServerConfig, DEFAULT_MAX_QUEUE, DEFAULT_REQUEST_DEADLINE, DEFAULT_RETRY_AFTER,
    MAX_QUEUE_ENV, REQUEST_DEADLINE_ENV, RETRY_AFTER_ENV,
};
pub use session::{
    Removal, Session, SessionLookup, SessionOrigin, SessionStore, ShardSnapshot, StoreSnapshot,
    SHARDS_ENV,
};
