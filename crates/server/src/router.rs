//! Request routing and handlers: the service's REST surface.
//!
//! ```text
//! POST   /sessions                  load a scenario, chase if needed
//! GET    /sessions/{id}             instance + chase summary
//! POST   /sessions/{id}/edit        apply a mutation batch (delta-chase)
//! POST   /sessions/{id}/one-route   ComputeOneRoute for a selection
//! POST   /sessions/{id}/all-routes  ComputeAllRoutes (memoized per session)
//! DELETE /sessions/{id}             drop the session
//! GET    /metrics                   service counters (JSON or Prometheus)
//! GET    /healthz                   liveness probe (lock-free)
//! GET    /trace                     recent completed spans
//! POST   /shutdown                  begin graceful shutdown
//! ```
//!
//! An unsupported method on a known route answers 405 with an `Allow`
//! header (RFC 9110); an unknown path — including unknown `/sessions/{id}/…`
//! subpaths — answers 404.
//!
//! Handlers are synchronous and lock-light: the session store lock is held
//! only for lookups; route computation runs on a shared immutable session.
//! Edits swap in a fresh immutable incarnation (see `session`), so readers
//! never see a half-applied batch.
//!
//! [`App::handle_traced`] wraps dispatch in a trace context: every request
//! gets a trace ID (the client's `X-Trace-Id` when well-formed, else a
//! deterministic minted one), echoed back as `X-Trace-Id`, stamped on error
//! bodies and log lines, and attached to every span the handler opens.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use routes_chase::{ChaseOptions, ChaseStats, TgdStats};
use routes_cli::{
    is_pipeline_scenario, load_pipeline_str, load_scenario_str, prepare_pipeline,
    prepare_scenario_with,
};
use routes_core::{compute_one_route, ForestView, RouteForest, RouteView, StepView, TupleRef};
use routes_model::TupleId;
use routes_pipeline::{stitch_route, StitchError};
use routes_pool::Pool;

use routes_store::{ChaseMode, Durability, EditOp, Record};

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::metrics::{Metrics, Phase};
use crate::persist::Persistence;
use crate::session::{Removal, Session, SessionLookup, SessionOrigin, SessionStore};

/// The shared application state every worker thread serves from.
pub struct App {
    pub store: SessionStore,
    pub metrics: Metrics,
    /// Worker pool for parallel chase and forest construction, sized from
    /// `ROUTES_THREADS` or the machine's available parallelism.
    pub pool: Pool,
    /// Durability, when a data directory is configured; `None` keeps the
    /// service purely in-memory with zero persistence overhead.
    persist: Option<Persistence>,
    /// Trace-ID minting and the span ring (`GET /trace`).
    tracer: Arc<routes_obs::Tracer>,
    /// Requests slower than this emit a `slow_request` warning.
    slow: Duration,
    shutdown: AtomicBool,
}

impl App {
    pub fn new(max_sessions: usize) -> Self {
        App::with_pool(max_sessions, Pool::from_env())
    }

    /// [`App::new`] with an explicit worker pool (tests pin the width).
    pub fn with_pool(max_sessions: usize, pool: Pool) -> Self {
        App::with_store(SessionStore::new(max_sessions), pool)
    }

    /// [`App::with_pool`] with an explicit store (tests pin the shard
    /// count).
    pub fn with_store(store: SessionStore, pool: Pool) -> Self {
        App::with_persistence(store, pool, None)
    }

    /// [`App::with_store`] plus an (already-recovered) persistence handle;
    /// tracing and the slow-request threshold come from the environment.
    pub fn with_persistence(store: SessionStore, pool: Pool, persist: Option<Persistence>) -> Self {
        App::with_observability(
            store,
            pool,
            persist,
            Arc::new(routes_obs::Tracer::from_env(None)),
            routes_obs::slow_threshold_from_env(),
        )
    }

    /// [`App::with_persistence`] with an explicit tracer and slow-request
    /// threshold (tests pin the ring capacity, seed, and threshold).
    pub fn with_observability(
        store: SessionStore,
        pool: Pool,
        persist: Option<Persistence>,
        tracer: Arc<routes_obs::Tracer>,
        slow: Duration,
    ) -> Self {
        App {
            store,
            metrics: Metrics::new(),
            pool,
            persist,
            tracer,
            slow,
            shutdown: AtomicBool::new(false),
        }
    }

    /// The tracer serving `GET /trace`.
    pub fn tracer(&self) -> &Arc<routes_obs::Tracer> {
        &self.tracer
    }

    /// The persistence handle, when a data directory is configured.
    pub fn persistence(&self) -> Option<&Persistence> {
        self.persist.as_ref()
    }

    /// Append a WAL record whose loss cannot change an answer (touches,
    /// forest memos): buffered, and a poisoned log is not a request error.
    fn log_relaxed(&self, record: Record) {
        if let Some(p) = &self.persist {
            let _ = p.append(&record, Durability::Buffered);
        }
    }

    /// Append a WAL record that backs an answer the client is about to
    /// see (creates, deletes, evictions): fsynced before returning. `Err`
    /// means the record is *not* durable — the handler must turn it into
    /// a 500 rather than ack a mutation that a crash would undo.
    fn log_synced(&self, record: Record) -> std::io::Result<()> {
        match &self.persist {
            Some(p) => p.append(&record, Durability::Synced),
            None => Ok(()),
        }
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Relaxed)
    }

    /// [`App::handle`] inside a full trace context: installs the request's
    /// trace ID, records the `request` span, counts the response, emits the
    /// slow-request warning, and stamps `X-Trace-Id` on the way out. This
    /// is what the accept loop calls; `handle` stays separate for tests
    /// that exercise routing alone.
    pub fn handle_traced(&self, req: &Request) -> Response {
        let ctx = self.tracer.begin(req.header("x-trace-id"));
        let _scope = routes_obs::scoped(Some(ctx.clone()));
        // Root frame for the sampling profiler: every in-request span
        // (chase, route, print, …) collapses under `request;…`.
        let _frame = routes_obs::profile_frame("request");
        let started = Instant::now();
        let mut response = catch_unwind(AssertUnwindSafe(|| self.handle(req)))
            .unwrap_or_else(|_| Response::error(500, "handler panicked"));
        let elapsed = started.elapsed();
        ctx.record("request", started, elapsed);
        self.metrics
            .record_response(response.status, elapsed, Some(ctx.id().as_str()));
        let elapsed_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        if elapsed >= self.slow {
            // Per-phase breakdown from the spans this request already
            // recorded: one ring pass, no extra clocks on the fast path.
            let phases = self
                .tracer
                .phase_totals_us(ctx.id(), &["chase", "forest", "route", "print", "edit"]);
            routes_obs::log(
                routes_obs::Level::Warn,
                "slow_request",
                &[
                    ("method", routes_obs::Value::from(req.method.as_str())),
                    ("path", routes_obs::Value::from(req.path.as_str())),
                    (
                        "status",
                        routes_obs::Value::from(u64::from(response.status)),
                    ),
                    ("elapsed_us", routes_obs::Value::from(elapsed_us)),
                    (
                        "threshold_ms",
                        routes_obs::Value::from(
                            self.slow.as_millis().min(u128::from(u64::MAX)) as u64
                        ),
                    ),
                    ("chase_us", routes_obs::Value::from(phases[0])),
                    ("forest_us", routes_obs::Value::from(phases[1])),
                    ("route_us", routes_obs::Value::from(phases[2])),
                    ("print_us", routes_obs::Value::from(phases[3])),
                    ("edit_us", routes_obs::Value::from(phases[4])),
                ],
            );
        } else {
            routes_obs::log(
                routes_obs::Level::Debug,
                "request",
                &[
                    ("method", routes_obs::Value::from(req.method.as_str())),
                    ("path", routes_obs::Value::from(req.path.as_str())),
                    (
                        "status",
                        routes_obs::Value::from(u64::from(response.status)),
                    ),
                    ("elapsed_us", routes_obs::Value::from(elapsed_us)),
                ],
            );
        }
        response.set_header("x-trace-id", ctx.id().as_str().to_owned());
        response
    }

    /// Dispatch one request.
    pub fn handle(&self, req: &Request) -> Response {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("POST", ["sessions"]) => self.create_session(req),
            ("GET", ["sessions", id]) => self.with_session(id, |s| self.session_summary(&s)),
            ("DELETE", ["sessions", id]) => self.delete_session(id),
            ("POST", ["sessions", id, "edit"]) => self.edit_session(id, req),
            ("POST", ["sessions", id, "one-route"]) => {
                self.with_session(id, |s| self.one_route(&s, req))
            }
            ("POST", ["sessions", id, "all-routes"]) => {
                self.with_session(id, |s| self.all_routes(&s, req))
            }
            ("POST", ["sessions", id, "stitched-route"]) => {
                self.with_session(id, |s| self.stitched_route(&s, req))
            }
            ("GET", ["metrics"]) => self.metrics_response(req),
            ("GET", ["profile"]) => self.profile_response(req),
            ("GET", ["sessions", id, "profile"]) => {
                self.with_session(id, |s| self.session_profile(&s))
            }
            ("GET", ["healthz"]) => {
                // Liveness probe: touches no session-store shard lock and no
                // WAL state — atomics only, it must answer even when those
                // are contended.
                let wal_gen = self
                    .persist
                    .as_ref()
                    .map_or(Json::Null, |p| Json::from(p.metrics.wal_gen.load(Relaxed)));
                Response::json(
                    200,
                    Json::obj([
                        ("ok", Json::Bool(true)),
                        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
                        ("uptime_seconds", Json::from(self.metrics.uptime_seconds())),
                        ("wal_gen", wal_gen),
                    ])
                    .encode(),
                )
            }
            ("GET", ["trace"]) => self.trace_dump(req),
            ("POST", ["shutdown"]) => {
                self.shutdown.store(true, Relaxed);
                Response::json(
                    200,
                    Json::obj([("shutting_down", Json::Bool(true))]).encode(),
                )
            }
            (_, ["sessions"]) => method_not_allowed("POST"),
            (_, ["sessions", _]) => method_not_allowed("GET, DELETE"),
            (_, ["sessions", _, "edit" | "one-route" | "all-routes" | "stitched-route"]) => {
                method_not_allowed("POST")
            }
            (_, ["sessions", _, "profile"]) => method_not_allowed("GET"),
            (_, ["metrics"]) | (_, ["healthz"]) | (_, ["trace"]) | (_, ["profile"]) => {
                method_not_allowed("GET")
            }
            (_, ["shutdown"]) => method_not_allowed("POST"),
            _ => Response::error(404, "no such resource"),
        }
    }

    /// `GET /metrics`: JSON by default; Prometheus text on
    /// `?format=prometheus` or an `Accept` header asking for `text/plain`.
    fn metrics_response(&self, req: &Request) -> Response {
        let prometheus = match req.query_param("format") {
            Some("prometheus") => true,
            Some("json") => false,
            Some(other) => {
                return Response::error(
                    400,
                    &format!("unknown metrics format `{other}` (json, prometheus)"),
                )
            }
            None => req
                .header("accept")
                .is_some_and(|accept| accept.contains("text/plain")),
        };
        let store = self.store.snapshot();
        let persist = self.persist.as_ref().map(|p| p.metrics.snapshot());
        let join = routes_model::joinstats::snapshot();
        if prometheus {
            let text =
                self.metrics
                    .to_prometheus(&store, persist.as_ref(), &join, self.pool.threads());
            Response::with_content_type(200, text.into_bytes(), routes_obs::PROMETHEUS_CONTENT_TYPE)
        } else {
            Response::json(
                200,
                self.metrics
                    .to_json_with_store(&store, persist.as_ref(), &join, self.pool.threads())
                    .encode(),
            )
        }
    }

    /// `GET /trace`: recent completed spans, oldest first, optionally
    /// filtered to one trace via `?trace_id=` and capped via `?limit=N`
    /// (at most `N` records, oldest first, copied under one mutex hold).
    fn trace_dump(&self, req: &Request) -> Response {
        let filter = req.query_param("trace_id");
        if let Some(f) = filter {
            if routes_obs::TraceId::parse(f).is_none() {
                return Response::error(400, "malformed trace_id filter");
            }
        }
        let recent = match req.query_param("limit") {
            None => self.tracer.recent(),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) => self.tracer.recent_limited(n),
                Err(_) => {
                    return Response::error(400, "malformed limit (must be a non-negative integer)")
                }
            },
        };
        let spans: Vec<Json> = recent
            .iter()
            .filter(|s| filter.is_none_or(|f| s.trace.as_str() == f))
            .map(|s| {
                Json::obj([
                    ("trace_id", Json::from(s.trace.as_str())),
                    ("name", Json::from(s.name)),
                    ("start_us", Json::from(s.start_us)),
                    ("dur_us", Json::from(s.dur_us)),
                ])
            })
            .collect();
        Response::json(
            200,
            Json::obj([
                ("enabled", Json::Bool(self.tracer.is_enabled())),
                ("capacity", Json::from(self.tracer.capacity())),
                ("spans", Json::Array(spans)),
            ])
            .encode(),
        )
    }

    /// `GET /profile`: the self-profiler's collapsed stacks, as JSON
    /// (default) or flamegraph-collapsed text. `?format=json|collapsed`
    /// overrides `Accept` negotiation; `?delta=true` scrapes only the
    /// samples since the previous delta scrape.
    fn profile_response(&self, req: &Request) -> Response {
        let collapsed = match req.query_param("format") {
            Some("collapsed") => true,
            Some("json") => false,
            Some(other) => {
                return Response::error(
                    400,
                    &format!("unknown profile format `{other}` (json, collapsed)"),
                )
            }
            None => match req.header("accept") {
                None => false,
                Some(accept) => {
                    if accept.contains("application/json") || accept.contains("*/*") {
                        false
                    } else if accept.contains("text/plain") {
                        true
                    } else {
                        return Response::error(
                            406,
                            "profile is served as application/json or text/plain",
                        );
                    }
                }
            },
        };
        let delta = match req.query_param("delta") {
            Some("true") => true,
            None | Some("false") => false,
            Some(other) => {
                return Response::error(
                    400,
                    &format!("`delta` must be true or false, got `{other}`"),
                )
            }
        };
        let snap = routes_obs::profile_collect(delta);
        if collapsed {
            return Response::with_content_type(
                200,
                snap.collapsed().into_bytes(),
                "text/plain; charset=utf-8",
            );
        }
        Response::json(
            200,
            Json::obj([
                ("enabled", Json::Bool(snap.enabled)),
                ("hz", Json::from(u64::from(snap.hz))),
                ("ticks", Json::from(snap.ticks)),
                ("total_samples", Json::from(snap.total_samples())),
                ("phases", profile_phases_json(&snap.stacks)),
                ("tree", profile_tree_json(&snap.stacks)),
            ])
            .encode(),
        )
    }

    /// `GET /sessions/{id}/profile`: per-tgd chase attribution for this
    /// session's materialization, plus per-hop chase/core timings for
    /// pipeline sessions.
    fn session_profile(&self, session: &Session) -> Response {
        let chase = match session.chase_stats() {
            Some(stats) => Json::obj([
                ("stats", chase_stats_json(&stats)),
                (
                    "per_tgd",
                    Json::Array(stats.per_tgd.iter().map(tgd_stats_json).collect()),
                ),
            ]),
            None => Json::Null,
        };
        let pipeline = match session.pipeline() {
            Some(prepared) => Json::Array(
                prepared
                    .stages
                    .iter()
                    .enumerate()
                    .map(|(k, stage)| {
                        Json::obj([
                            ("stage", Json::from(k as u64)),
                            ("name", Json::from(stage.name.as_str())),
                            ("chase_us", Json::from(stage.chase_us)),
                            ("core_us", Json::from(stage.core_us)),
                            (
                                "tuples_before_core",
                                Json::from(stage.tuples_before_core as u64),
                            ),
                            ("core_removed", Json::from(stage.core_removed as u64)),
                            ("stats", chase_stats_json(&stage.stats)),
                            (
                                "per_tgd",
                                Json::Array(
                                    stage.stats.per_tgd.iter().map(tgd_stats_json).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
            None => Json::Null,
        };
        Response::json(
            200,
            Json::obj([("chase", chase), ("pipeline", pipeline)]).encode(),
        )
    }

    fn with_session(
        &self,
        id: &str,
        f: impl FnOnce(std::sync::Arc<Session>) -> Response,
    ) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "session id must be an integer");
        };
        match self.store.get(id) {
            SessionLookup::Found(session) => {
                // The hit stamped the session most-recently-used; mirror
                // that into the log so replay reconstructs recency.
                self.log_relaxed(Record::Touch { id });
                f(session)
            }
            SessionLookup::Evicted => Response::error(410, "session evicted (store at capacity)"),
            SessionLookup::Missing => Response::error(404, "no such session"),
        }
    }

    fn create_session(&self, req: &Request) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let Some(text) = body.get("scenario").and_then(Json::as_str) else {
            return Response::error(422, "body must have a string `scenario` field");
        };
        let chase_mode = match body.get("chase").and_then(Json::as_str) {
            None | Some("fresh") => ChaseMode::Fresh,
            Some("skolem") => ChaseMode::Skolem,
            Some(_) => return Response::error(422, "`chase` must be \"fresh\" or \"skolem\""),
        };
        let options = match chase_mode {
            ChaseMode::Fresh => ChaseOptions::fresh(),
            ChaseMode::Skolem => ChaseOptions::skolem(),
        };
        if is_pipeline_scenario(text) {
            return self.create_pipeline_session(text, chase_mode, options);
        }
        let loaded = match load_scenario_str(text) {
            Ok(l) => l,
            Err(e) => return Response::error(422, &format!("scenario does not load: {e}")),
        };
        let prepared = {
            let _span = routes_obs::span("chase");
            match prepare_scenario_with(loaded, options, &self.pool) {
                Ok(p) => p,
                Err(e) => return Response::error(422, &format!("chase failed: {e}")),
            }
        };
        if let Some(wall) = prepared.chase_wall {
            self.metrics.record_phase(Phase::Chase, wall);
        }
        let weakly_acyclic = prepared.weakly_acyclic;
        let stats = prepared.chase_stats.clone();
        let source_tuples = prepared.source.total_tuples();
        let target_tuples = prepared.target.total_tuples();
        let origin = SessionOrigin {
            chase: chase_mode,
            text: std::sync::Arc::from(text),
        };
        let (id, evicted) = self.store.insert_with_origin(prepared, origin, &self.pool);
        // Mutation first, WAL second (see `persist`): evictions ride the
        // create's group commit, and a failed fsync refuses the ack — the
        // client must never hold a 201 a crash would take back.
        for &gone in &evicted {
            self.log_relaxed(Record::Evict { id: gone });
        }
        if let Err(e) = self.log_synced(Record::Create {
            id,
            chase: chase_mode,
            scenario: text.to_owned(),
        }) {
            self.store.remove(id);
            return Response::error(500, &format!("session not persisted: {e}"));
        }
        self.metrics.sessions_created.fetch_add(1, Relaxed);
        self.metrics
            .sessions_evicted
            .fetch_add(evicted.len() as u64, Relaxed);
        Response::json(
            201,
            Json::obj([
                ("session", Json::from(id)),
                ("source_tuples", Json::from(source_tuples)),
                ("target_tuples", Json::from(target_tuples)),
                ("weakly_acyclic", Json::from(weakly_acyclic)),
                ("chase", stats.map_or(Json::Null, |s| chase_stats_json(&s))),
                (
                    "evicted",
                    Json::Array(evicted.into_iter().map(Json::from).collect()),
                ),
            ])
            .encode(),
        )
    }

    /// The pipeline arm of `POST /sessions`: chase the stage chain (core
    /// minimization per hop when the text asked for it), store the final
    /// hop as the session's flat view, and keep the full chain for
    /// stitched end-to-end routes. Load and chase failures answer 422
    /// exactly like the flat path; the WAL record is unchanged (`(text,
    /// chase)` replays the whole chain, core mode included).
    fn create_pipeline_session(
        &self,
        text: &str,
        chase_mode: ChaseMode,
        options: ChaseOptions,
    ) -> Response {
        let loaded = match load_pipeline_str(text) {
            Ok(l) => l,
            Err(e) => return Response::error(422, &format!("scenario does not load: {e}")),
        };
        let (scenario, pipeline) = {
            let _span = routes_obs::span("chase");
            match prepare_pipeline(loaded, options, &self.pool) {
                Ok(p) => p,
                Err(e) => return Response::error(422, &format!("chase failed: {e}")),
            }
        };
        self.metrics.record_phase(Phase::Chase, pipeline.chase_wall);
        let hops = pipeline.hops();
        let core_mode = pipeline.pipeline.core_mode();
        let (core_before, core_after) = pipeline.core_shrink();
        let stage_names: Vec<Json> = pipeline
            .stages
            .iter()
            .map(|s| Json::from(s.name.as_str()))
            .collect();
        let weakly_acyclic = pipeline.weakly_acyclic;
        let stats = scenario.chase_stats.clone();
        let source_tuples = scenario.source.total_tuples();
        let target_tuples = scenario.target.total_tuples();
        let origin = SessionOrigin {
            chase: chase_mode,
            text: std::sync::Arc::from(text),
        };
        let (id, evicted) =
            self.store
                .insert_prepared(scenario, Some(Arc::new(pipeline)), origin, &self.pool);
        for &gone in &evicted {
            self.log_relaxed(Record::Evict { id: gone });
        }
        if let Err(e) = self.log_synced(Record::Create {
            id,
            chase: chase_mode,
            scenario: text.to_owned(),
        }) {
            self.store.remove(id);
            return Response::error(500, &format!("session not persisted: {e}"));
        }
        self.metrics.sessions_created.fetch_add(1, Relaxed);
        self.metrics
            .sessions_evicted
            .fetch_add(evicted.len() as u64, Relaxed);
        self.metrics.pipeline_sessions_created.fetch_add(1, Relaxed);
        self.metrics
            .pipeline_stage_chases
            .fetch_add(hops as u64, Relaxed);
        if core_mode {
            self.metrics
                .pipeline_core_runs
                .fetch_add(hops as u64, Relaxed);
            self.metrics
                .pipeline_core_tuples_removed
                .fetch_add((core_before - core_after) as u64, Relaxed);
        }
        Response::json(
            201,
            Json::obj([
                ("session", Json::from(id)),
                ("source_tuples", Json::from(source_tuples)),
                ("target_tuples", Json::from(target_tuples)),
                ("weakly_acyclic", Json::from(weakly_acyclic)),
                ("chase", stats.map_or(Json::Null, |s| chase_stats_json(&s))),
                (
                    "pipeline",
                    Json::obj([
                        ("hops", Json::from(hops)),
                        ("stages", Json::Array(stage_names)),
                        ("core", Json::from(core_mode)),
                        ("core_tuples_before", Json::from(core_before)),
                        ("core_tuples_after", Json::from(core_after)),
                    ]),
                ),
                (
                    "evicted",
                    Json::Array(evicted.into_iter().map(Json::from).collect()),
                ),
            ])
            .encode(),
        )
    }

    /// `POST /sessions/{id}/stitched-route`: an end-to-end route for
    /// tuples of the final hop's target, hop by hop from the original
    /// source. 409 on non-pipeline sessions. Every answered route is
    /// replayed per-hop (Definition 3.3 at each stage) before the client
    /// sees it, exactly like `one-route`.
    fn stitched_route(&self, session: &Session, req: &Request) -> Response {
        let Some(pipeline) = session.pipeline() else {
            return Response::error(409, "session is not a pipeline (no stages to stitch)");
        };
        let selected = match parse_selection(session, req) {
            Ok(sel) => sel,
            Err(resp) => return resp,
        };
        let route_start = Instant::now();
        let route_span = routes_obs::span("route");
        let stitched = match stitch_route(pipeline, &selected) {
            Ok(s) => s,
            Err(StitchError::EmptySelection) => {
                return Response::error(422, "select at least one tuple")
            }
            Err(StitchError::NoRoute { stage, source }) => {
                drop(route_span);
                self.metrics
                    .record_phase(Phase::Route, route_start.elapsed());
                // Like one-route's no_route: an unroutable tuple is a
                // debugging answer, not a client error.
                return Response::json(
                    200,
                    Json::obj([
                        ("found", Json::Bool(false)),
                        ("stage", Json::from(stage.as_str())),
                        ("no_route", Json::from(source.to_string())),
                    ])
                    .encode(),
                );
            }
        };
        if let Err(e) = stitched.validate(pipeline) {
            return Response::error(500, &format!("stitched route failed replay: {e}"));
        }
        drop(route_span);
        self.metrics
            .record_phase(Phase::Route, route_start.elapsed());
        self.metrics.pipeline_stitched_routes.fetch_add(1, Relaxed);
        self.metrics
            .pipeline_stitched_hops
            .fetch_add(stitched.stages.len() as u64, Relaxed);
        let print_start = Instant::now();
        let _print_span = routes_obs::span("print");
        let stages: Vec<Json> = stitched
            .stages
            .iter()
            .map(|stage| {
                let env = pipeline.stage_env(stage.stage);
                let view = RouteView::build(&pipeline.pool, &env, &stage.route);
                Json::obj([
                    ("stage", Json::from(stage.stage)),
                    ("name", Json::from(stage.name.as_str())),
                    ("selection", Json::from(stage.selection.len())),
                    ("steps", Json::Array(route_steps_json(&view))),
                ])
            })
            .collect();
        let response = Response::json(
            200,
            Json::obj([
                ("found", Json::Bool(true)),
                ("validated", Json::Bool(true)),
                ("hops", Json::from(stitched.stages.len())),
                ("total_steps", Json::from(stitched.total_steps())),
                ("stages", Json::Array(stages)),
            ])
            .encode(),
        );
        self.metrics
            .record_phase(Phase::Print, print_start.elapsed());
        response
    }

    fn delete_session(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "session id must be an integer");
        };
        match self.store.remove(id) {
            Removal::Removed => {
                if let Err(e) = self.log_synced(Record::Delete { id }) {
                    return Response::error(500, &format!("delete not persisted: {e}"));
                }
                self.metrics.sessions_deleted.fetch_add(1, Relaxed);
                Response::json(200, Json::obj([("deleted", Json::Bool(true))]).encode())
            }
            Removal::Evicted => Response::error(410, "session evicted (store at capacity)"),
            Removal::Missing => Response::error(404, "no such session"),
        }
    }

    /// `POST /sessions/{id}/edit`: apply a batch of mutation ops through
    /// the incremental delta-chase (`routes-incr`), swap the post-edit
    /// incarnation into the store, and log a WAL `Edit` record. Editors
    /// are serialized per session; readers holding the pre-edit `Arc`
    /// keep a consistent snapshot, and cached forests whose support is
    /// untouched survive into the new incarnation (so their `cached: true`
    /// answers stay warm).
    fn edit_session(&self, id: &str, req: &Request) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "session id must be an integer");
        };
        let ops = match parse_edit_ops(req) {
            Ok(ops) => ops,
            Err(resp) => {
                self.metrics.edits_rejected.fetch_add(1, Relaxed);
                return resp;
            }
        };
        let session = match self.store.get(id) {
            SessionLookup::Found(s) => {
                self.log_relaxed(Record::Touch { id });
                s
            }
            SessionLookup::Evicted => {
                return Response::error(410, "session evicted (store at capacity)")
            }
            SessionLookup::Missing => return Response::error(404, "no such session"),
        };
        // Serialize editors on this id, then re-fetch: a queued editor
        // must build on its predecessor's incarnation, not the one it
        // looked up before blocking. `peek` leaves recency and hit
        // accounting alone, so a live edit perturbs exactly the state WAL
        // replay reconstructs (one touch + one edit per batch).
        let lock = session.edit_lock();
        let _guard = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let session = match self.store.peek(id) {
            SessionLookup::Found(s) => s,
            SessionLookup::Evicted => {
                return Response::error(410, "session evicted (store at capacity)")
            }
            SessionLookup::Missing => return Response::error(404, "no such session"),
        };
        let Some(origin) = session.origin() else {
            // Sessions injected without an origin (tests, benchmarks) have
            // no canonical scenario text to edit.
            return Response::error(409, "session has no scenario text to edit");
        };
        if session.pipeline().is_some() {
            // The delta-chase edits one mapping; re-deriving every later
            // hop of a chain is a full re-create, not an edit.
            self.metrics.edits_rejected.fetch_add(1, Relaxed);
            return Response::error(409, "pipeline sessions do not support edits");
        }
        let options = match origin.chase {
            ChaseMode::Fresh => ChaseOptions::fresh(),
            ChaseMode::Skolem => ChaseOptions::skolem(),
        };
        let edit_start = Instant::now();
        let apply = {
            let _span = routes_obs::span("edit");
            match routes_incr::apply_batch(
                &origin.text,
                &session.scenario,
                session.incr_state(),
                &ops,
                options,
                &self.pool,
            ) {
                Ok(apply) => apply,
                Err(e) => {
                    self.metrics.edits_rejected.fetch_add(1, Relaxed);
                    return Response::error(422, &format!("edit rejected: {e}"));
                }
            }
        };
        // Surgical forest carry-over: survivors are byte-identical to a
        // fresh recompute (see routes-incr), so they stay memoized — and
        // their answers stay `cached: true` — in the new incarnation.
        let entries = session.forest_entries();
        let keep: HashSet<Vec<TupleId>> = routes_incr::surviving_selections(
            entries.iter().map(|(key, forest)| (key, forest.as_ref())),
            &apply,
            &session.scenario.pool,
        )
        .into_iter()
        .collect();
        let forests_invalidated = entries.len() - keep.len();
        let survivors: HashMap<Vec<TupleId>, Arc<RouteForest>> = entries
            .into_iter()
            .filter(|(key, _)| keep.contains(key))
            .collect();
        let forests_kept = survivors.len();
        let new_seq = session.edit_seq() + 1;
        let new_origin = SessionOrigin {
            chase: origin.chase,
            text: Arc::from(apply.text.as_str()),
        };
        let chase_wall = apply.scenario.chase_wall;
        let stats = apply.scenario.chase_stats.clone();
        let source_tuples = apply.scenario.source.total_tuples();
        let target_tuples = apply.scenario.target.total_tuples();
        let (memo_hits, memo_misses) = (apply.memo_hits, apply.memo_misses);
        let mapping_changed = apply.mapping_changed;
        let (source_inserted, source_deleted) = (apply.source_inserted, apply.source_deleted);
        let replacement =
            Arc::new(session.edited(apply.scenario, new_origin, new_seq, apply.state, survivors));
        if !self.store.replace(id, replacement) {
            // A concurrent DELETE (or eviction) won while we were chasing.
            return Response::error(404, "no such session");
        }
        // Mutation first, WAL second (as in create): a failed fsync swaps
        // the pre-edit incarnation back and refuses the ack.
        if let Err(e) = self.log_synced(Record::Edit {
            id,
            seq: new_seq,
            ops: ops.clone(),
        }) {
            self.store.replace(id, session);
            return Response::error(500, &format!("edit not persisted: {e}"));
        }
        self.metrics.record_phase(Phase::Edit, edit_start.elapsed());
        if let Some(wall) = chase_wall {
            self.metrics.record_phase(Phase::Chase, wall);
        }
        self.metrics.edits_applied.fetch_add(1, Relaxed);
        self.metrics
            .edit_ops_applied
            .fetch_add(ops.len() as u64, Relaxed);
        self.metrics
            .edit_forests_kept
            .fetch_add(forests_kept as u64, Relaxed);
        self.metrics
            .edit_forests_invalidated
            .fetch_add(forests_invalidated as u64, Relaxed);
        Response::json(
            200,
            Json::obj([
                ("session", Json::from(id)),
                ("edit_seq", Json::from(new_seq)),
                ("ops_applied", Json::from(ops.len())),
                ("memo_hits", Json::from(memo_hits)),
                ("memo_misses", Json::from(memo_misses)),
                ("mapping_changed", Json::from(mapping_changed)),
                ("source_inserted", Json::from(source_inserted)),
                ("source_deleted", Json::from(source_deleted)),
                ("source_tuples", Json::from(source_tuples)),
                ("target_tuples", Json::from(target_tuples)),
                ("forests_kept", Json::from(forests_kept)),
                ("forests_invalidated", Json::from(forests_invalidated)),
                ("chase", stats.map_or(Json::Null, |s| chase_stats_json(&s))),
            ])
            .encode(),
        )
    }

    fn session_summary(&self, session: &Session) -> Response {
        let sc = &session.scenario;
        let rel_counts = |schema: &routes_model::Schema, inst: &routes_model::Instance| {
            Json::Object(
                schema
                    .iter()
                    .map(|(id, rel)| (rel.name().to_owned(), Json::from(inst.rel_len(id))))
                    .collect(),
            )
        };
        Response::json(
            200,
            Json::obj([
                ("session", Json::from(session.id)),
                ("source", rel_counts(sc.mapping.source(), &sc.source)),
                ("target", rel_counts(sc.mapping.target(), &sc.target)),
                ("weakly_acyclic", Json::from(sc.weakly_acyclic)),
                (
                    "chase",
                    session
                        .chase_stats()
                        .map_or(Json::Null, |s| chase_stats_json(&s)),
                ),
                ("egd_merges", Json::from(sc.egd_log.len())),
                ("cached_forests", Json::from(session.cached_forests())),
            ])
            .encode(),
        )
    }

    fn one_route(&self, session: &Session, req: &Request) -> Response {
        let selected = match parse_selection(session, req) {
            Ok(sel) => sel,
            Err(resp) => return resp,
        };
        self.metrics.one_routes_computed.fetch_add(1, Relaxed);
        let env = session.env();
        let route_start = Instant::now();
        let route_span = routes_obs::span("route");
        let computed = compute_one_route(env, &selected);
        match computed {
            Ok(route) => {
                // Replay per Definition 3.3 before answering: a route the
                // service emits is always machine-checked against (I, J).
                let produced = match route.validate(&env, &selected) {
                    Ok(p) => p,
                    Err(e) => {
                        return Response::error(500, &format!("computed route failed replay: {e}"))
                    }
                };
                drop(route_span);
                self.metrics
                    .record_phase(Phase::Route, route_start.elapsed());
                let print_start = Instant::now();
                let print_span = routes_obs::span("print");
                let view = RouteView::build(&session.scenario.pool, &env, &route);
                let response = Response::json(
                    200,
                    Json::obj([
                        ("found", Json::Bool(true)),
                        ("validated", Json::Bool(true)),
                        ("produced_tuples", Json::from(produced.len())),
                        ("steps", Json::Array(route_steps_json(&view))),
                    ])
                    .encode(),
                );
                drop(print_span);
                self.metrics
                    .record_phase(Phase::Print, print_start.elapsed());
                response
            }
            Err(e) => {
                drop(route_span);
                self.metrics
                    .record_phase(Phase::Route, route_start.elapsed());
                // "No route" is a debugging *answer* (the paper's unroutable
                // tuples), not a client error.
                let pool = &session.scenario.pool;
                let labels: Vec<Json> = e
                    .no_route
                    .iter()
                    .map(|&t| {
                        tuple_ref_json(&TupleRef {
                            relation: session
                                .scenario
                                .mapping
                                .target()
                                .relation(t.rel)
                                .name()
                                .to_owned(),
                            row: t.row,
                            text: routes_model::tuple_to_string(
                                pool,
                                session.scenario.mapping.target(),
                                &session.scenario.target,
                                t,
                            ),
                        })
                    })
                    .collect();
                Response::json(
                    200,
                    Json::obj([
                        ("found", Json::Bool(false)),
                        ("no_route", Json::Array(labels)),
                    ])
                    .encode(),
                )
            }
        }
    }

    fn all_routes(&self, session: &Session, req: &Request) -> Response {
        let selected = match parse_selection(session, req) {
            Ok(sel) => sel,
            Err(resp) => return resp,
        };
        self.metrics.all_routes_computed.fetch_add(1, Relaxed);
        let forest_start = Instant::now();
        let (forest, cached, wall) = session.forest_for(&selected, &self.pool);
        if cached {
            self.metrics.forest_cache_hits.fetch_add(1, Relaxed);
        } else {
            // Record the forest span only when a forest was actually built
            // — a memo hit is a lookup, not a build.
            if let Some(ctx) = routes_obs::current() {
                ctx.record("forest", forest_start, forest_start.elapsed());
            }
            self.metrics.forest_cache_misses.fetch_add(1, Relaxed);
            self.metrics.record_phase(Phase::Forest, wall);
            // Persist the memo key (normalized like the cache's own key)
            // so recovery re-warms the forest cache.
            let mut key: Vec<(u32, u32)> = selected.iter().map(|t| (t.rel.0, t.row)).collect();
            key.sort_unstable();
            key.dedup();
            self.log_relaxed(Record::Forest {
                id: session.id,
                selection: key,
            });
        }
        let env = session.env();
        let print_start = Instant::now();
        let _print_span = routes_obs::span("print");
        let view = ForestView::build(&session.scenario.pool, &env, &forest);
        let response = Response::json(
            200,
            Json::obj([
                ("cached", Json::Bool(cached)),
                ("num_nodes", Json::from(view.nodes.len())),
                ("num_branches", Json::from(view.num_branches)),
                ("all_roots_provable", Json::from(view.all_roots_provable)),
                (
                    "roots",
                    Json::Array(view.roots.iter().map(tuple_ref_json).collect()),
                ),
                (
                    "nodes",
                    Json::Array(
                        view.nodes
                            .iter()
                            .map(|n| {
                                Json::obj([
                                    ("tuple", tuple_ref_json(&n.tuple)),
                                    (
                                        "branches",
                                        Json::Array(n.branches.iter().map(step_json).collect()),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
            .encode(),
        );
        self.metrics
            .record_phase(Phase::Print, print_start.elapsed());
        response
    }
}

/// 405 with the `Allow` header RFC 9110 requires. Only *known* routes get
/// here; unknown paths (including unknown `/sessions/{id}/…` subpaths)
/// answer 404 instead.
fn method_not_allowed(allow: &'static str) -> Response {
    let mut resp = Response::error(405, "method not allowed for this resource");
    resp.set_header("allow", allow.to_owned());
    resp
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = req
        .body_str()
        .map_err(|_| Response::error(400, "body is not UTF-8"))?;
    json::parse(text).map_err(|e| Response::error(400, &e.to_string()))
}

/// Parse `{"ops": [{"op": "insert_tuple", "line": "S(1, 2)"}, ...]}` into
/// the WAL's [`EditOp`] representation.
fn parse_edit_ops(req: &Request) -> Result<Vec<EditOp>, Response> {
    let body = parse_body(req)?;
    let Some(items) = body.get("ops").and_then(Json::as_array) else {
        return Err(Response::error(422, "body must have an `ops` array"));
    };
    if items.is_empty() {
        return Err(Response::error(422, "apply at least one edit op"));
    }
    let mut ops = Vec::with_capacity(items.len());
    for item in items {
        let Some(kind) = item.get("op").and_then(Json::as_str) else {
            return Err(Response::error(422, "each op needs an `op` kind"));
        };
        let text_field = |field: &str| -> Result<String, Response> {
            item.get(field)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| {
                    Response::error(422, &format!("`{kind}` needs a string `{field}` field"))
                })
        };
        ops.push(match kind {
            "insert_tuple" => EditOp::InsertTuple {
                line: text_field("line")?,
            },
            "add_tgd" => EditOp::AddTgd {
                line: text_field("line")?,
            },
            "drop_tgd" => EditOp::DropTgd {
                name: text_field("name")?,
            },
            "delete_tuple" => {
                let relation = text_field("relation")?;
                let row = item
                    .get("row")
                    .and_then(Json::as_u64)
                    .and_then(|row| u32::try_from(row).ok());
                let Some(row) = row else {
                    return Err(Response::error(
                        422,
                        "`delete_tuple` needs a numeric `row` (u32)",
                    ));
                };
                EditOp::DeleteTuple { relation, row }
            }
            other => {
                return Err(Response::error(
                    422,
                    &format!(
                        "unknown edit op `{other}` \
                         (insert_tuple, delete_tuple, add_tgd, drop_tgd)"
                    ),
                ))
            }
        });
    }
    Ok(ops)
}

/// Resolve `{"tuples": [{"relation": "T", "row": 0}, ...]}` against the
/// session's target instance.
fn parse_selection(session: &Session, req: &Request) -> Result<Vec<TupleId>, Response> {
    let body = parse_body(req)?;
    let Some(items) = body.get("tuples").and_then(Json::as_array) else {
        return Err(Response::error(422, "body must have a `tuples` array"));
    };
    if items.is_empty() {
        return Err(Response::error(422, "select at least one tuple"));
    }
    let target = session.scenario.mapping.target();
    let mut selected = Vec::with_capacity(items.len());
    for item in items {
        let Some(name) = item.get("relation").and_then(Json::as_str) else {
            return Err(Response::error(422, "each tuple needs a `relation` name"));
        };
        let Some(row) = item.get("row").and_then(Json::as_u64) else {
            return Err(Response::error(422, "each tuple needs a numeric `row`"));
        };
        let Some(rel) = target.rel_id(name) else {
            return Err(Response::error(
                422,
                &format!("no target relation named `{name}`"),
            ));
        };
        if row >= u64::from(session.scenario.target.rel_len(rel)) {
            return Err(Response::error(
                422,
                &format!("relation `{name}` has no row {row}"),
            ));
        }
        selected.push(TupleId {
            rel,
            row: row as u32,
        });
    }
    Ok(selected)
}

fn chase_stats_json(stats: &ChaseStats) -> Json {
    Json::obj([
        ("rounds", Json::from(stats.rounds)),
        ("tuples_created", Json::from(stats.tuples_created)),
        ("egd_rewrites", Json::from(stats.egd_rewrites)),
        ("egd_merges", Json::from(stats.egd_merges)),
        ("target_tuples", Json::from(stats.target_tuples)),
    ])
}

fn tgd_stats_json(t: &TgdStats) -> Json {
    Json::obj([
        ("name", Json::from(t.name.as_str())),
        ("st", Json::Bool(t.st)),
        ("matches", Json::from(t.matches)),
        ("fired", Json::from(t.fired)),
        ("wall_us", Json::from(t.wall_us)),
    ])
}

/// Inclusive sample totals per frame name: a stack `request;chase` counts
/// its samples toward both `request` and `chase`, so a phase's total is
/// directly comparable to that phase's span histogram share.
fn profile_phases_json(stacks: &[(String, u64)]) -> Json {
    let mut totals: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (key, count) in stacks {
        let mut seen: Vec<&str> = Vec::new();
        for frame in key.split(';') {
            // A frame recursing within one stack still counts once.
            if !seen.contains(&frame) {
                seen.push(frame);
                *totals.entry(frame).or_insert(0) += count;
            }
        }
    }
    Json::Object(
        totals
            .into_iter()
            .map(|(name, n)| (name.to_owned(), Json::from(n)))
            .collect(),
    )
}

/// The collapsed stacks as a weighted call tree: each node carries its
/// inclusive sample count; children are sorted by name (deterministic
/// output for the same stack set).
fn profile_tree_json(stacks: &[(String, u64)]) -> Json {
    #[derive(Default)]
    struct Node<'a> {
        samples: u64,
        children: std::collections::BTreeMap<&'a str, Node<'a>>,
    }
    fn render(children: &std::collections::BTreeMap<&str, Node<'_>>) -> Json {
        Json::Array(
            children
                .iter()
                .map(|(name, node)| {
                    Json::obj([
                        ("name", Json::from(*name)),
                        ("samples", Json::from(node.samples)),
                        ("children", render(&node.children)),
                    ])
                })
                .collect(),
        )
    }
    let mut root = Node::default();
    for (key, count) in stacks {
        let mut node = &mut root;
        for frame in key.split(';') {
            node = node.children.entry(frame).or_default();
            node.samples += count;
        }
    }
    render(&root.children)
}

fn tuple_ref_json(t: &TupleRef) -> Json {
    Json::obj([
        ("relation", Json::from(t.relation.as_str())),
        ("row", Json::from(t.row)),
        ("text", Json::from(t.text.as_str())),
    ])
}

fn step_json(step: &StepView) -> Json {
    Json::obj([
        ("tgd", Json::from(step.tgd.as_str())),
        (
            "hom",
            Json::Object(
                step.hom
                    .iter()
                    .map(|(var, value)| (var.clone(), Json::from(value.as_str())))
                    .collect(),
            ),
        ),
        (
            "lhs",
            Json::Array(
                step.lhs
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("source", Json::from(f.source)),
                            ("tuple", tuple_ref_json(&f.tuple)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rhs",
            Json::Array(step.rhs.iter().map(tuple_ref_json).collect()),
        ),
    ])
}

fn route_steps_json(view: &RouteView) -> Vec<Json> {
    view.steps.iter().map(step_json).collect()
}
