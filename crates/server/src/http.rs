//! A hand-rolled HTTP/1.1 subset: enough for a loopback JSON service.
//!
//! Supported: request line + headers + `Content-Length` bodies, keep-alive
//! (HTTP/1.1 default, `Connection: close` honored), and hard limits on
//! every dimension an untrusted peer controls — request-line length,
//! header count/size, body size, and (via [`TimedStream`]) read *progress*:
//! a per-read timeout plus a wall-clock request deadline that a peer
//! trickling one byte at a time cannot reset. Not supported (rejected
//! cleanly): chunked transfer encoding, upgrades, and HTTP/0.9/2.

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum request-line and per-header-line length in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Maximum request body size in bytes (scenario files are small).
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path with any `?query` suffix stripped.
    pub path: String,
    /// The raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of query parameter `name` (`a=b&c=d` form; no
    /// percent-decoding — the service's parameters are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    pub fn body_str(&self) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.body).map_err(|_| ParseError::Malformed("body is not UTF-8"))
    }
}

/// Why a request could not be parsed. Each maps to a status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Clean end of stream before any request byte: the peer closed an idle
    /// keep-alive connection. Not an error.
    Eof,
    /// Malformed syntax (400).
    Malformed(&'static str),
    /// A limit was exceeded (431 for head, 413 for body).
    TooLarge(&'static str),
    /// The peer stopped making progress mid-request — a per-read stall or
    /// the request's wall-clock deadline expired (408, then close).
    Timeout,
    /// An I/O error mid-request.
    Io(String),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            // Both kinds surface from a socket read timeout depending on
            // platform; either way the peer failed to make progress.
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ParseError::Timeout,
            _ => ParseError::Io(e.to_string()),
        }
    }
}

/// A [`Read`] wrapper over a [`TcpStream`] that enforces two limits a
/// trickling peer cannot reset:
///
/// * a **per-read progress timeout** — every `read` must deliver at least
///   one byte within `per_read`, and
/// * an optional **wall-clock deadline** — once armed, the sum of all
///   reads (headers *and* body) must finish before `deadline`, no matter
///   how diligently the peer dribbles single bytes to keep each
///   individual read alive.
///
/// Before each read the socket timeout is set to
/// `min(per_read, deadline - now)`; an expired deadline turns the read
/// into `ErrorKind::TimedOut` immediately. Wrap it in a `BufReader` and
/// re-arm between requests via `get_mut()` — the buffer (and any
/// pipelined bytes in it) survives across requests.
pub struct TimedStream {
    stream: TcpStream,
    per_read: Duration,
    deadline: Option<Instant>,
}

impl TimedStream {
    pub fn new(stream: TcpStream, per_read: Duration) -> Self {
        TimedStream {
            stream,
            per_read,
            deadline: None,
        }
    }

    /// Re-arm the limits for the next phase: the idle wait between
    /// requests (short poll, no deadline) or a request in flight (full
    /// per-read timeout plus the wall-clock deadline).
    pub fn arm(&mut self, per_read: Duration, deadline: Option<Instant>) {
        self.per_read = per_read;
        self.deadline = deadline;
    }

    pub fn get_ref(&self) -> &TcpStream {
        &self.stream
    }
}

impl Read for TimedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut wait = self.per_read;
        if let Some(deadline) = self.deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ));
            }
            wait = wait.min(remaining);
        }
        // `set_read_timeout` rejects a zero duration; the clamp keeps the
        // final sliver of a deadline from erroring out early.
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        self.stream.read(buf)
    }
}

/// Read one line terminated by `\n`, rejecting lines longer than
/// [`MAX_LINE`]; strips the trailing `\r\n` / `\n`.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(ParseError::Malformed("unexpected end of stream"));
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map_or(buf.len(), |i| i + 1);
        if line.len() + take > MAX_LINE {
            return Err(ParseError::TooLarge("line too long"));
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if nl.is_some() {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| ParseError::Malformed("non-UTF-8 header"))
}

/// Parse one request from the stream. `Err(ParseError::Eof)` signals a
/// cleanly closed idle connection.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let request_line = read_line(reader)?.ok_or(ParseError::Eof)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("bad method"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("target must be origin-form"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or(ParseError::Malformed("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(ParseError::Malformed("chunked bodies are not supported"));
    }
    let content_length = match find("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed("bad content-length"))?,
    };
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => version == "HTTP/1.1",
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

/// A response ready to serialize.
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    pub content_type: &'static str,
    /// Extra headers beyond the fixed head (`X-Trace-Id` rides here).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response::with_content_type(status, body.into_bytes(), "application/json")
    }

    /// A response with an explicit content type (Prometheus text).
    pub fn with_content_type(status: u16, body: Vec<u8>, content_type: &'static str) -> Self {
        Response {
            status,
            body,
            content_type,
            headers: Vec::new(),
        }
    }

    /// A JSON error payload `{"error": "..."}`, stamped with the emitting
    /// thread's trace ID (when a request context is installed) so a
    /// client can quote the failure back at `GET /trace`.
    pub fn error(status: u16, message: &str) -> Self {
        use crate::json::Json;
        let mut fields = vec![("error".to_owned(), Json::from(message))];
        if let Some(id) = routes_obs::current_trace_id() {
            fields.push(("trace_id".to_owned(), Json::from(id.as_str())));
        }
        Response::json(status, Json::Object(fields).encode())
    }

    /// Set (or replace) an extra response header.
    pub fn set_header(&mut self, name: &'static str, value: String) {
        match self.headers.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v = value,
            None => self.headers.push((name, value)),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            406 => "Not Acceptable",
            408 => "Request Timeout",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize the response; `keep_alive` picks the `Connection` header.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_bytes(bytes: &[u8]) -> Result<Request, ParseError> {
        parse_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse_bytes(b"POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn strips_query_and_honours_connection_close() {
        let req =
            parse_bytes(b"GET /metrics?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, "verbose=1");
        assert!(!req.keep_alive);
    }

    #[test]
    fn query_params_parse_first_match() {
        let req =
            parse_bytes(b"GET /trace?format=prometheus&trace_id=ab.c-1&flag HTTP/1.1\r\n\r\n")
                .unwrap();
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("trace_id"), Some("ab.c-1"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        let bare = parse_bytes(b"GET /trace HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(bare.query, "");
        assert_eq!(bare.query_param("format"), None);
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for (bytes, what) in [
            (&b"GET\r\n\r\n"[..], "no target"),
            (b"GET /x\r\n\r\n", "no version"),
            (b"GET /x HTTP/2.0\r\n\r\n", "bad version"),
            (b"get /x HTTP/1.1\r\n\r\n", "lowercase method"),
            (b"GET x HTTP/1.1\r\n\r\n", "non-origin-form target"),
            (b"GET /x HTTP/1.1 junk\r\n\r\n", "extra tokens"),
            (
                b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
                "header without colon",
            ),
            (
                b"GET /x HTTP/1.1\r\nContent-Length: two\r\n\r\n",
                "bad length",
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                "chunked",
            ),
        ] {
            assert!(
                matches!(parse_bytes(bytes), Err(ParseError::Malformed(_))),
                "{what} should be malformed"
            );
        }
    }

    #[test]
    fn truncated_body_is_an_error_not_a_hang() {
        let err = parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
    }

    #[test]
    fn oversized_inputs_are_rejected() {
        // Oversized declared body.
        let big = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse_bytes(big.as_bytes()),
            Err(ParseError::TooLarge("body too large"))
        ));
        // Oversized request line.
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
        assert!(matches!(
            parse_bytes(long_line.as_bytes()),
            Err(ParseError::TooLarge("line too long"))
        ));
        // Too many headers.
        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(
            parse_bytes(many.as_bytes()),
            Err(ParseError::TooLarge("too many headers"))
        ));
    }

    #[test]
    fn keep_alive_parses_back_to_back_requests() {
        let bytes: &[u8] =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut reader = BufReader::new(bytes);
        let first = parse_request(&mut reader).unwrap();
        assert_eq!(first.path, "/a");
        let second = parse_request(&mut reader).unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"hi");
        // Third read: clean EOF.
        assert_eq!(parse_request(&mut reader).unwrap_err(), ParseError::Eof);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let req = parse_bytes(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn read_timeouts_map_to_parse_timeout_not_io() {
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            let e = std::io::Error::new(kind, "stalled");
            assert_eq!(ParseError::from(e), ParseError::Timeout);
        }
        let e = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "gone");
        assert!(matches!(ParseError::from(e), ParseError::Io(_)));
    }

    #[test]
    fn timed_stream_enforces_deadline_and_per_read_progress() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut timed = TimedStream::new(server, Duration::from_secs(30));

        // An expired deadline fails immediately — no 30 s per-read grace.
        timed.arm(Duration::from_secs(30), Some(Instant::now()));
        let err = timed.read(&mut [0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);

        // A silent peer trips the per-read progress timeout.
        timed.arm(Duration::from_millis(10), None);
        let start = Instant::now();
        let err = timed.read(&mut [0u8; 8]).unwrap_err();
        assert!(matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ));
        assert!(start.elapsed() < Duration::from_secs(5));

        // Bytes already in flight are still delivered under a live deadline.
        use std::io::Write as _;
        let mut client = client;
        client.write_all(b"hi").unwrap();
        timed.arm(
            Duration::from_secs(30),
            Some(Instant::now() + Duration::from_secs(5)),
        );
        let mut buf = [0u8; 2];
        timed.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn overload_reason_strings() {
        assert_eq!(Response::json(408, "{}".into()).reason(), "Request Timeout");
        assert_eq!(
            Response::json(429, "{}".into()).reason(),
            "Too Many Requests"
        );
    }

    #[test]
    fn response_serializes_with_length() {
        let mut out = Vec::new();
        Response::json(200, "{}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_emitted_and_replaceable() {
        let mut resp = Response::json(200, "{}".into());
        resp.set_header("x-trace-id", "abc".into());
        resp.set_header("x-trace-id", "def".into());
        let mut out = Vec::new();
        resp.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-trace-id: def\r\n"));
        assert!(!text.contains("abc"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
