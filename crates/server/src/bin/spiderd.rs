//! `spiderd` — serve the route debugger over HTTP.
//!
//! ```text
//! spiderd [--addr HOST:PORT] [--threads N] [--max-sessions N] [--session-shards N]
//!         [--max-queue N] [--request-deadline-ms N] [--retry-after-secs N]
//!         [--data-dir PATH] [--log-level LEVEL]
//! ```
//!
//! Defaults: `127.0.0.1:7007`, 4 worker threads, 32 sessions, session
//! shards from `ROUTES_SESSION_SHARDS` or the machine's parallelism. The
//! bound address is printed on startup (useful with `--addr 127.0.0.1:0`).
//! `POST /shutdown` stops the service gracefully.
//!
//! Admission control: `--max-queue` (or `ROUTES_MAX_QUEUE`, default 64)
//! bounds the acceptor's connection queue — beyond it connections are
//! shed with `429` + `Retry-After` (`--retry-after-secs` /
//! `ROUTES_RETRY_AFTER_SECS`, default 1). `--request-deadline-ms` (or
//! `ROUTES_REQUEST_DEADLINE_MS`, default 10000) caps each request's
//! wall-clock parse→handle→write time; a peer that trickles past it gets
//! `408` and is reaped. The `/metrics` `admission` block exposes all of
//! it.
//!
//! `--data-dir PATH` (or `ROUTES_DATA_DIR`) makes sessions durable:
//! every mutation is write-ahead logged, snapshots compact the log
//! periodically, and boot replays snapshot-then-log so a restart restores
//! every session — including which ids answer 410 Gone. Without it the
//! service is purely in-memory, exactly as before.
//!
//! Everything on stderr is structured: one JSON object per line, filtered
//! by `--log-level` / `ROUTES_LOG` (error, warn, info, debug, trace).
//! The human-facing "listening on" line stays on stdout.

use routes_server::{Server, ServerConfig, DATA_DIR_ENV};

fn log_error(message: &str) {
    routes_obs::log(
        routes_obs::Level::Error,
        "error",
        &[("message", routes_obs::Value::from(message))],
    );
}

fn main() {
    let mut addr = "127.0.0.1:7007".to_owned();
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage(&format!("{what} requires a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--threads" => {
                config.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| usage("--threads must be an integer"));
            }
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-sessions must be an integer"));
            }
            "--session-shards" => {
                config.session_shards = value("--session-shards")
                    .parse()
                    .unwrap_or_else(|_| usage("--session-shards must be an integer"));
            }
            "--max-queue" => {
                config.max_queue = value("--max-queue")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-queue must be an integer"));
            }
            "--request-deadline-ms" => {
                let ms: u64 = value("--request-deadline-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--request-deadline-ms must be an integer"));
                config.request_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--retry-after-secs" => {
                let secs: u64 = value("--retry-after-secs")
                    .parse()
                    .unwrap_or_else(|_| usage("--retry-after-secs must be an integer"));
                config.retry_after = Some(std::time::Duration::from_secs(secs));
            }
            "--data-dir" => config.data_dir = Some(value("--data-dir").into()),
            "--log-level" => {
                let raw = value("--log-level");
                let level = routes_obs::Level::parse(&raw)
                    .unwrap_or_else(|| usage("--log-level must be error|warn|info|debug|trace"));
                routes_obs::set_level(level);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if config.threads == 0 || config.max_sessions == 0 {
        usage("--threads and --max-sessions must be at least 1");
    }
    if config.request_deadline.is_some_and(|d| d.is_zero()) {
        usage("--request-deadline-ms must be at least 1");
    }
    if config.data_dir.is_none() {
        if let Ok(dir) = std::env::var(DATA_DIR_ENV) {
            if !dir.trim().is_empty() {
                config.data_dir = Some(dir.into());
            }
        }
    }

    let threads = config.threads;
    let max_sessions = config.max_sessions;
    let data_dir = config.data_dir.clone();
    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            log_error(&format!("cannot bind {addr}: {e}"));
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(bound) => {
            println!(
                "spiderd listening on http://{bound} ({threads} workers, {max_sessions} session \
                 slots{})",
                data_dir
                    .as_deref()
                    .map(|d| format!(", data dir {}", d.display()))
                    .unwrap_or_default()
            );
            routes_obs::log(
                routes_obs::Level::Info,
                "listening",
                &[
                    ("addr", routes_obs::Value::from(bound.to_string().as_str())),
                    ("threads", routes_obs::Value::from(threads)),
                    ("max_sessions", routes_obs::Value::from(max_sessions)),
                ],
            );
        }
        Err(e) => routes_obs::log(
            routes_obs::Level::Warn,
            "bound_addr_unresolved",
            &[("message", routes_obs::Value::from(e.to_string().as_str()))],
        ),
    }
    if let Err(e) = server.run() {
        log_error(&format!("server failed: {e}"));
        std::process::exit(1);
    }
}

const USAGE: &str = "usage: spiderd [--addr HOST:PORT] [--threads N] [--max-sessions N] \
                     [--session-shards N] [--max-queue N] [--request-deadline-ms N] \
                     [--retry-after-secs N] [--data-dir PATH] [--log-level LEVEL]";

fn usage(msg: &str) -> ! {
    log_error(msg);
    log_error(USAGE);
    std::process::exit(2);
}
