//! `spiderd-logcheck` — validate that a stream is spiderd structured logs.
//!
//! Reads stdin; every non-empty line must parse as a JSON object carrying
//! string `level` and `event` fields (the shape `routes-obs` emits). An
//! optional argument demands a minimum number of lines. Exit status 0 only
//! when every line validates — CI pipes a spiderd boot's stderr through
//! this to prove stderr is 100% machine-parseable.

use std::io::Read;

use routes_server::json::{self, Json};

fn main() {
    let min_lines: usize = std::env::args()
        .nth(1)
        .map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: minimum line count must be an integer, got `{raw}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);

    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("error: cannot read stdin: {e}");
        std::process::exit(2);
    }

    let mut checked = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) => fail(lineno, line, &format!("not JSON: {e}")),
        };
        if !matches!(parsed, Json::Object(_)) {
            fail(lineno, line, "not a JSON object");
        }
        for field in ["level", "event"] {
            if parsed.get(field).and_then(Json::as_str).is_none() {
                fail(lineno, line, &format!("missing string `{field}` field"));
            }
        }
        checked += 1;
    }
    if checked < min_lines {
        eprintln!("error: expected at least {min_lines} structured log lines, saw {checked}");
        std::process::exit(1);
    }
    println!("ok: {checked} structured log lines");
}

fn fail(lineno: usize, line: &str, why: &str) -> ! {
    eprintln!(
        "error: stderr line {} is not a structured log line ({why}): {line}",
        lineno + 1
    );
    std::process::exit(1);
}
