//! The session store: loaded scenarios with chased solutions, shared
//! across worker threads, bounded by LRU eviction.
//!
//! A session is immutable once created (the pool, instances, and mapping
//! are never touched again), so workers share it through an `Arc` and drop
//! the store lock before doing any route computation. The only interior
//! mutability is the per-session forest cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use routes_chase::ChaseStats;
use routes_cli::PreparedScenario;
use routes_core::{RouteEnv, RouteForest};
use routes_model::TupleId;
use routes_pool::Pool;

/// One loaded scenario with its chased (or supplied) solution.
pub struct Session {
    pub id: u64,
    pub scenario: PreparedScenario,
    /// Memoized route forests keyed by the *sorted* selected-tuple set, so
    /// `[t1, t2]` and `[t2, t1]` share an entry (`compute_all_routes` is
    /// order-insensitive in its result, per the forest's memoization).
    forest_cache: Mutex<HashMap<Vec<TupleId>, Arc<RouteForest>>>,
}

impl Session {
    fn new(id: u64, scenario: PreparedScenario) -> Self {
        Session {
            id,
            scenario,
            forest_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The route environment over this session's `(M, I, J)`.
    pub fn env(&self) -> RouteEnv<'_> {
        RouteEnv::new(
            &self.scenario.mapping,
            &self.scenario.source,
            &self.scenario.target,
        )
    }

    /// Chase statistics, if a chase materialized the solution.
    pub fn chase_stats(&self) -> Option<ChaseStats> {
        self.scenario.chase_stats
    }

    /// Look up or compute the forest for a selection, fanning branch
    /// computation out over `workers` on a miss. Returns the forest, whether
    /// it was served from the cache, and the construction wall time (zero on
    /// a hit).
    pub fn forest_for(
        &self,
        selected: &[TupleId],
        workers: &Pool,
    ) -> (Arc<RouteForest>, bool, Duration) {
        let mut key: Vec<TupleId> = selected.to_vec();
        key.sort_unstable_by_key(|t| (t.rel.0, t.row));
        key.dedup();
        if let Some(found) = self.forest_cache.lock().unwrap().get(&key) {
            return (Arc::clone(found), true, Duration::ZERO);
        }
        // Compute outside the lock: forests can be expensive and other
        // selections should not queue behind this one.
        let start = Instant::now();
        let forest = Arc::new(routes_core::compute_all_routes_with_pool(
            self.env(),
            &key,
            workers,
        ));
        let wall = start.elapsed();
        let mut cache = self.forest_cache.lock().unwrap();
        let entry = cache.entry(key).or_insert_with(|| Arc::clone(&forest));
        (Arc::clone(entry), false, wall)
    }

    /// Number of cached forests (for the session view).
    pub fn cached_forests(&self) -> usize {
        self.forest_cache.lock().unwrap().len()
    }
}

struct StoreInner {
    sessions: HashMap<u64, Arc<Session>>,
    /// Least-recently-used first. Touched on every lookup.
    lru: Vec<u64>,
}

/// Shared, bounded session store.
pub struct SessionStore {
    inner: RwLock<StoreInner>,
    next_id: AtomicU64,
    max_sessions: usize,
}

impl SessionStore {
    /// An empty store holding at most `max_sessions` (≥ 1) sessions.
    pub fn new(max_sessions: usize) -> Self {
        SessionStore {
            inner: RwLock::new(StoreInner {
                sessions: HashMap::new(),
                lru: Vec::new(),
            }),
            next_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
        }
    }

    /// Insert a prepared scenario; returns its fresh id plus the ids of
    /// any sessions evicted to stay under the bound.
    pub fn insert(&self, scenario: PreparedScenario) -> (u64, Vec<u64>) {
        let id = self.next_id.fetch_add(1, Relaxed);
        let session = Arc::new(Session::new(id, scenario));
        let mut inner = self.inner.write().unwrap();
        inner.sessions.insert(id, session);
        inner.lru.push(id);
        let mut evicted = Vec::new();
        while inner.sessions.len() > self.max_sessions {
            let victim = inner.lru.remove(0);
            inner.sessions.remove(&victim);
            evicted.push(victim);
        }
        (id, evicted)
    }

    /// Fetch a session and mark it most-recently-used.
    pub fn get(&self, id: u64) -> Option<Arc<Session>> {
        let mut inner = self.inner.write().unwrap();
        let found = inner.sessions.get(&id).cloned()?;
        if let Some(pos) = inner.lru.iter().position(|&s| s == id) {
            inner.lru.remove(pos);
            inner.lru.push(id);
        }
        Some(found)
    }

    /// Remove a session; `true` if it existed.
    pub fn remove(&self, id: u64) -> bool {
        let mut inner = self.inner.write().unwrap();
        inner.lru.retain(|&s| s != id);
        inner.sessions.remove(&id).is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().sessions.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_chase::ChaseOptions;
    use routes_cli::{load_scenario_str, prepare_scenario};

    fn scenario(tag: i64) -> PreparedScenario {
        let text = format!(
            "source schema:\n  S(a)\ntarget schema:\n  T(a)\n\
             dependencies:\n  m: S(x) -> T(x)\nsource data:\n  S({tag})\n"
        );
        prepare_scenario(load_scenario_str(&text).unwrap(), ChaseOptions::fresh()).unwrap()
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let store = SessionStore::new(2);
        let (a, ev) = store.insert(scenario(1));
        assert!(ev.is_empty());
        let (b, ev) = store.insert(scenario(2));
        assert!(ev.is_empty());
        // Touch a so b becomes the LRU victim.
        assert!(store.get(a).is_some());
        let (c, ev) = store.insert(scenario(3));
        assert_eq!(ev, vec![b], "b was least recently used");
        assert!(store.get(b).is_none());
        assert!(store.get(a).is_some());
        assert!(store.get(c).is_some());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn remove_frees_a_slot() {
        let store = SessionStore::new(1);
        let (a, _) = store.insert(scenario(1));
        assert!(store.remove(a));
        assert!(!store.remove(a), "second delete is a no-op");
        assert!(store.is_empty());
        let (_, ev) = store.insert(scenario(2));
        assert!(ev.is_empty(), "freed slot means no eviction");
    }

    #[test]
    fn forest_cache_hits_for_permuted_selections() {
        let store = SessionStore::new(4);
        let (id, _) = store.insert(scenario(5));
        let session = store.get(id).unwrap();
        let tuples: Vec<TupleId> = session.scenario.target.all_rows().collect();
        let workers = Pool::sequential();
        let (_, cached, wall) = session.forest_for(&tuples, &workers);
        assert!(!cached, "first computation misses");
        assert!(wall > Duration::ZERO, "misses report construction time");
        let mut reversed = tuples.clone();
        reversed.reverse();
        let (_, cached, wall) = session.forest_for(&reversed, &workers);
        assert!(cached, "same set in another order hits");
        assert_eq!(wall, Duration::ZERO, "hits cost nothing");
        assert_eq!(session.cached_forests(), 1);
    }
}
