//! The session store: loaded scenarios with chased solutions, shared
//! across worker threads, sharded for concurrency, bounded by a
//! segmented-LRU eviction policy.
//!
//! A session is immutable once created (the pool, instances, and mapping
//! are never touched again), so workers share it through an `Arc` and drop
//! the store lock before doing any route computation. The only interior
//! mutability is the per-session forest cache.
//!
//! Edits (`POST /sessions/{id}/edit`) keep that immutability: applying a
//! batch builds a **new** `Session` — same id, edited scenario, bumped
//! [`edit_seq`](Session::edit_seq), carried-over match memos, forest cache
//! pre-seeded with the survivors — and [`SessionStore::replace`] swaps it
//! into the shard entry in place, preserving the entry's recency stamp and
//! segment bit. In-flight readers holding the old `Arc` keep a consistent
//! pre-edit snapshot; the per-session edit lock (shared across
//! incarnations) serializes editors.
//!
//! ## Sharding
//!
//! The store holds `N` independent shards (`N` from
//! [`ROUTES_SESSION_SHARDS`](SHARDS_ENV), else the machine's available
//! parallelism, clamped to the capacity), each its own
//! `RwLock<HashMap>` with a slice of the total capacity. Session ids are
//! assigned by one monotonic counter, so `shard_of(id) = id % N` *is* the
//! session-id hash: the id space is dense and server-assigned (no
//! adversarial keys), which makes the modulo perfectly balanced and — the
//! property the metrics-reconciliation tests lean on — deterministic.
//!
//! ## Segmented LRU, touched without a write lock
//!
//! The old store kept an LRU `Vec` and re-ordered it under the **write**
//! lock on every `get`, an `O(live sessions)` `retain` on the hottest path
//! in the service. Here a lookup takes the shard's **read** lock only, and
//! recency is two relaxed atomics on the entry: a last-touch stamp drawn
//! from a per-shard logical clock (`fetch_max`, so racing touches keep the
//! newest stamp) and a `protected` bit. New entries start in *probation*;
//! the first touch promotes them to *protected* (idempotent — promotion is
//! a plain `store(true)`). Eviction scans, which run per shard under the
//! write lock and are fanned out through the `routes-pool` worker pool,
//! first demote the oldest protected entries when the protected segment
//! exceeds its quota (¾ of the shard slice), then evict the
//! oldest-stamped probation entry. The scan is `O(shard)` but runs only
//! when a shard is over capacity; touches never scan anything, which the
//! operation counters below pin in a regression test.
//!
//! Evicted ids leave a bounded tombstone behind so the service can answer
//! "410 Gone" (evicted) distinctly from "404 Not Found" (deleted or never
//! created).
//!
//! ## Persistence
//!
//! The store itself is purely in-memory; durability lives in
//! `routes-store` and the server's `persist` module. This module supplies
//! the two halves of the mapping: *collection* ([`SessionStore::persist_state`]
//! images every shard — clocks, tombstones, entries with their recency
//! stamps and compact scenario origins — fanned out per shard over the
//! worker pool) and *reconstruction* ([`SessionStore::restore_state`]
//! rebuilds a snapshot image byte-identically at the same shard count,
//! [`SessionStore::replay_records`] re-applies WAL records in log order
//! through the same stamp/promote/tombstone code paths live traffic
//! uses). Replay draws fresh stamps from the shard clocks in WAL order,
//! so recency is reconstructed exactly for any deterministic history.

use std::collections::{HashMap, HashSet, VecDeque};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use routes_chase::ChaseStats;
use routes_cli::PreparedScenario;
use routes_core::{RouteEnv, RouteForest};
use routes_incr::IncrState;
use routes_model::{RelId, TupleId};
use routes_pipeline::PreparedPipeline;
use routes_pool::Pool;
use routes_store::{
    ChaseMode, PersistedEntry, PersistedShard, Record, SelectionKey, SnapshotState,
};

/// Environment variable overriding the shard count (default: the
/// machine's available parallelism, clamped to `max_sessions`).
pub const SHARDS_ENV: &str = "ROUTES_SESSION_SHARDS";

/// Upper bounds (µs) of the per-shard lock-wait histograms; the last
/// bucket is unbounded. Lock waits are usually sub-microsecond, so the
/// buckets are much finer than the request-latency ones.
pub const LOCK_WAIT_BUCKETS_US: [u64; 5] = [1, 10, 100, 1_000, 10_000];

/// Evicted-id tombstones kept per shard (oldest dropped beyond this); a
/// tombstone is one `u64`, so the ceiling is memory noise next to one
/// loaded scenario.
const TOMBSTONES_PER_SHARD: usize = 4096;

/// The compact persistent representation of a session's scenario: the
/// source text plus the chase mode that materialized `J`. The chase is
/// deterministic at every worker count, so `(text, chase)` is a complete
/// recipe — recovery re-runs the chase instead of persisting the solution.
#[derive(Clone)]
pub struct SessionOrigin {
    pub chase: ChaseMode,
    pub text: Arc<str>,
}

/// What the restore/replay `prepare` callback rebuilds from a persisted
/// scenario text: the flat (final-hop) view every single-mapping endpoint
/// serves, plus the full chased pipeline when the text used the
/// multi-stage syntax. Core mode rides in the scenario text, so `(text,
/// chase)` stays a complete recipe for pipeline sessions too.
pub type PreparedSession = (PreparedScenario, Option<Arc<PreparedPipeline>>);

/// One loaded scenario with its chased (or supplied) solution.
pub struct Session {
    pub id: u64,
    pub scenario: PreparedScenario,
    /// The full stage chain, for pipeline scenarios; `scenario` is then
    /// the final hop's `(M, I, J)` view of the same chase.
    pipeline: Option<Arc<PreparedPipeline>>,
    /// The compact representation this session can be rebuilt from;
    /// `None` for sessions injected directly by tests and benchmarks
    /// (those are invisible to snapshots).
    origin: Option<SessionOrigin>,
    /// How many edit batches `scenario` reflects; the WAL's `Edit` records
    /// carry the post-batch value, which makes replay idempotent.
    edit_seq: u64,
    /// Per-tgd match memos carried between edit batches (empty until the
    /// first edit, and after recovery — the next edit re-warms them).
    incr: IncrState,
    /// Serializes editors. The lock is shared by every incarnation of the
    /// same session id, so two concurrent edits of one session queue even
    /// though each builds its own replacement `Session`.
    edit_lock: Arc<Mutex<()>>,
    /// Memoized route forests keyed by the *sorted* selected-tuple set, so
    /// `[t1, t2]` and `[t2, t1]` share an entry (`compute_all_routes` is
    /// order-insensitive in its result, per the forest's memoization).
    forest_cache: Mutex<HashMap<Vec<TupleId>, Arc<RouteForest>>>,
}

impl Session {
    fn with_origin(
        id: u64,
        scenario: PreparedScenario,
        pipeline: Option<Arc<PreparedPipeline>>,
        origin: Option<SessionOrigin>,
        edit_seq: u64,
    ) -> Self {
        Session {
            id,
            scenario,
            pipeline,
            origin,
            edit_seq,
            incr: IncrState::default(),
            edit_lock: Arc::new(Mutex::new(())),
            forest_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The post-edit incarnation of this session: same id, shared edit
    /// lock, new scenario/origin/memos, forest cache pre-seeded with the
    /// surviving entries.
    pub fn edited(
        &self,
        scenario: PreparedScenario,
        origin: SessionOrigin,
        edit_seq: u64,
        incr: IncrState,
        forests: HashMap<Vec<TupleId>, Arc<RouteForest>>,
    ) -> Session {
        Session {
            id: self.id,
            scenario,
            // Edits are rejected on pipeline sessions (the mutation API
            // speaks the flat syntax), so an edited incarnation is flat.
            pipeline: None,
            origin: Some(origin),
            edit_seq,
            incr,
            edit_lock: Arc::clone(&self.edit_lock),
            forest_cache: Mutex::new(forests),
        }
    }

    /// The compact representation this session can be rebuilt from, if
    /// it was created through the persistable path.
    pub fn origin(&self) -> Option<&SessionOrigin> {
        self.origin.as_ref()
    }

    /// The full stage chain, for pipeline sessions.
    pub fn pipeline(&self) -> Option<&Arc<PreparedPipeline>> {
        self.pipeline.as_ref()
    }

    /// How many edit batches this incarnation reflects.
    pub fn edit_seq(&self) -> u64 {
        self.edit_seq
    }

    /// The match memos the next edit batch starts from.
    pub fn incr_state(&self) -> &IncrState {
        &self.incr
    }

    /// The editor lock shared across this session's incarnations. Returned
    /// by `Arc` so the guard can outlive a store re-fetch.
    pub fn edit_lock(&self) -> Arc<Mutex<()>> {
        Arc::clone(&self.edit_lock)
    }

    /// Snapshot of the forest cache (selection key, forest) pairs, for
    /// survivor selection during an edit.
    pub fn forest_entries(&self) -> Vec<(Vec<TupleId>, Arc<RouteForest>)> {
        self.lock_forest_cache()
            .iter()
            .map(|(k, f)| (k.clone(), Arc::clone(f)))
            .collect()
    }

    /// The route environment over this session's `(M, I, J)`.
    pub fn env(&self) -> RouteEnv<'_> {
        RouteEnv::new(
            &self.scenario.mapping,
            &self.scenario.source,
            &self.scenario.target,
        )
    }

    /// Chase statistics, if a chase materialized the solution.
    pub fn chase_stats(&self) -> Option<ChaseStats> {
        self.scenario.chase_stats.clone()
    }

    /// Look up or compute the forest for a selection, fanning branch
    /// computation out over `workers` on a miss. Returns the forest, whether
    /// it was served from the cache, and the construction wall time (zero on
    /// a hit).
    pub fn forest_for(
        &self,
        selected: &[TupleId],
        workers: &Pool,
    ) -> (Arc<RouteForest>, bool, Duration) {
        let mut key: Vec<TupleId> = selected.to_vec();
        key.sort_unstable_by_key(|t| (t.rel.0, t.row));
        key.dedup();
        if let Some(found) = self.lock_forest_cache().get(&key) {
            return (Arc::clone(found), true, Duration::ZERO);
        }
        // Compute outside the lock: forests can be expensive and other
        // selections should not queue behind this one.
        let start = Instant::now();
        let forest = Arc::new(routes_core::compute_all_routes_with_pool(
            self.env(),
            &key,
            workers,
        ));
        let wall = start.elapsed();
        let mut cache = self.lock_forest_cache();
        let entry = cache.entry(key).or_insert_with(|| Arc::clone(&forest));
        (Arc::clone(entry), false, wall)
    }

    /// Number of cached forests (for the session view).
    pub fn cached_forests(&self) -> usize {
        self.lock_forest_cache().len()
    }

    /// The memoized selection keys as persistable `(relation, row)` pairs,
    /// sorted for deterministic snapshots.
    pub fn cached_forest_keys(&self) -> Vec<SelectionKey> {
        let cache = self.lock_forest_cache();
        let mut keys: Vec<SelectionKey> = cache
            .keys()
            .map(|key| key.iter().map(|t| (t.rel.0, t.row)).collect())
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The forest cache's mutex, recovering from poisoning: every write
    /// into the map is a single `HashMap` operation, so a thread that
    /// panicked while holding the lock (e.g. a route computation bug
    /// caught by the connection-level `catch_unwind`) cannot leave a
    /// half-written cache behind, and the surviving workers keep serving.
    fn lock_forest_cache(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<Vec<TupleId>, Arc<RouteForest>>> {
        self.forest_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The result of a store lookup: the distinction between *evicted* and
/// *never existed / deleted* is what lets the service answer 410 vs 404.
pub enum SessionLookup {
    /// Resident; the session was touched (marked most-recently-used).
    Found(Arc<Session>),
    /// Known to have been evicted by the LRU bound.
    Evicted,
    /// Never created, deleted, or evicted so long ago the tombstone aged out.
    Missing,
}

impl SessionLookup {
    /// The session, if resident.
    pub fn session(self) -> Option<Arc<Session>> {
        match self {
            SessionLookup::Found(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the lookup found a resident session.
    pub fn is_found(&self) -> bool {
        matches!(self, SessionLookup::Found(_))
    }
}

/// The result of a `remove`: mirrors [`SessionLookup`] for DELETE answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Removal {
    /// The session was live and is now deleted.
    Removed,
    /// Already evicted by the LRU bound (nothing to delete).
    Evicted,
    /// Never existed (or already deleted).
    Missing,
}

/// A map entry: the shared session plus its recency state. Lookups clone
/// the `Arc<Entry>` under the read lock and touch *after* dropping it, so
/// a touch can race an eviction — harmlessly, because stamps and the
/// protected bit live on the entry, and an entry removed from the map is
/// never scanned again (a touch cannot resurrect it).
struct Entry {
    session: Arc<Session>,
    /// Last-touch stamp from the owning shard's logical clock; insert
    /// stamps count too, so "newest entry" is well defined.
    touch: AtomicU64,
    /// Segmented-LRU segment: `false` = probation (not touched since
    /// insert or demotion), `true` = protected.
    protected: AtomicBool,
}

impl Entry {
    fn new(session: Arc<Session>, stamp: u64) -> Arc<Entry> {
        Arc::new(Entry {
            session,
            touch: AtomicU64::new(stamp),
            protected: AtomicBool::new(false),
        })
    }

    /// Draw the next stamp from a shard clock.
    fn next_stamp(clock: &AtomicU64) -> u64 {
        clock.fetch_add(1, Relaxed) + 1
    }

    /// Record a touch stamp. `fetch_max`, not `store`: two racing touches
    /// must leave the *newest* stamp, whichever thread writes last.
    fn record_stamp(&self, stamp: u64) {
        self.touch.fetch_max(stamp, Relaxed);
    }

    /// Promote probation → protected. Idempotent by construction.
    fn promote(&self) {
        self.protected.store(true, Relaxed);
    }

    /// The full touch path: stamp, then promote.
    fn touch(&self, clock: &AtomicU64) {
        self.record_stamp(Self::next_stamp(clock));
        self.promote();
    }
}

/// A lock-wait histogram over [`LOCK_WAIT_BUCKETS_US`].
#[derive(Default)]
struct WaitHist {
    buckets: [AtomicU64; LOCK_WAIT_BUCKETS_US.len() + 1],
}

impl WaitHist {
    fn record(&self, wait: Duration) {
        let us = wait.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LOCK_WAIT_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LOCK_WAIT_BUCKETS_US.len());
        self.buckets[idx].fetch_add(1, Relaxed);
    }

    fn counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Relaxed)).collect()
    }
}

/// Per-shard operation counters, all relaxed atomics. `evict_scan_steps`
/// and `write_locks` double as the touch-cost regression counters: lookups
/// must never contribute to either.
#[derive(Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    removes: AtomicU64,
    evictions: AtomicU64,
    demotions: AtomicU64,
    /// Entries examined by eviction victim scans.
    evict_scan_steps: AtomicU64,
    /// Write-lock acquisitions (inserts, removes, eviction scans — never
    /// lookups; the pre-shard store write-locked on every `get`).
    write_locks: AtomicU64,
    read_wait: WaitHist,
    write_wait: WaitHist,
}

struct ShardInner {
    sessions: HashMap<u64, Arc<Entry>>,
    /// Evicted-id tombstones, oldest first, mirrored in `gone_set`.
    gone: VecDeque<u64>,
    gone_set: HashSet<u64>,
}

struct Shard {
    inner: RwLock<ShardInner>,
    /// Logical clock ordering inserts and touches within this shard.
    clock: AtomicU64,
    /// Occupancy mirror maintained under the write lock, so capacity
    /// checks and `len()` never take a lock.
    occupancy: AtomicUsize,
    /// This shard's slice of the store capacity (≥ 1).
    capacity: usize,
    stats: ShardStats,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            inner: RwLock::new(ShardInner {
                sessions: HashMap::new(),
                gone: VecDeque::new(),
                gone_set: HashSet::new(),
            }),
            clock: AtomicU64::new(0),
            occupancy: AtomicUsize::new(0),
            capacity,
            stats: ShardStats::default(),
        }
    }

    // Both lock paths recover from poisoning instead of unwrapping: a
    // worker that panicked under the lock (the server wraps handlers in
    // `catch_unwind`) must not take the whole shard down with it. The
    // map and tombstone structures are updated by single operations, and
    // the `occupancy` mirror is re-stored after every mutation, so the
    // state a poisoned guard exposes is at worst mid-request, never
    // structurally broken.
    fn read_locked(&self) -> RwLockReadGuard<'_, ShardInner> {
        // The span covers acquisition only, so its duration is the lock
        // wait a request actually observed, not the hold time. It reuses
        // the stats measurement (`record_current`), keeping the traced
        // hot path free of extra clock reads.
        let start = Instant::now();
        let guard = self
            .inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let wait = start.elapsed();
        self.stats.read_wait.record(wait);
        routes_obs::record_current("session_lock_read", start, wait);
        guard
    }

    fn write_locked(&self) -> RwLockWriteGuard<'_, ShardInner> {
        let start = Instant::now();
        let guard = self
            .inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let wait = start.elapsed();
        self.stats.write_wait.record(wait);
        self.stats.write_locks.fetch_add(1, Relaxed);
        routes_obs::record_current("session_lock_write", start, wait);
        guard
    }

    /// Look up `id`, touching it if resident. Read lock only; the touch
    /// happens on the cloned entry after the lock is dropped.
    fn lookup(&self, id: u64) -> SessionLookup {
        let found = {
            let inner = self.read_locked();
            match inner.sessions.get(&id) {
                Some(entry) => Ok(Arc::clone(entry)),
                None => Err(inner.gone_set.contains(&id)),
            }
        };
        match found {
            Ok(entry) => {
                entry.touch(&self.clock);
                self.stats.hits.fetch_add(1, Relaxed);
                SessionLookup::Found(Arc::clone(&entry.session))
            }
            Err(evicted) => {
                self.stats.misses.fetch_add(1, Relaxed);
                if evicted {
                    SessionLookup::Evicted
                } else {
                    SessionLookup::Missing
                }
            }
        }
    }

    fn insert(&self, id: u64, session: Arc<Session>) {
        let mut inner = self.write_locked();
        let stamp = Entry::next_stamp(&self.clock);
        inner.sessions.insert(id, Entry::new(session, stamp));
        self.occupancy.store(inner.sessions.len(), Relaxed);
        drop(inner);
        self.stats.inserts.fetch_add(1, Relaxed);
    }

    fn remove(&self, id: u64) -> Removal {
        let mut inner = self.write_locked();
        if inner.sessions.remove(&id).is_some() {
            self.occupancy.store(inner.sessions.len(), Relaxed);
            drop(inner);
            self.stats.removes.fetch_add(1, Relaxed);
            Removal::Removed
        } else if inner.gone_set.contains(&id) {
            Removal::Evicted
        } else {
            Removal::Missing
        }
    }

    /// The protected segment's quota: at most ¾ of the slice, and always
    /// strictly under it, so an over-capacity scan can demote.
    fn protected_quota(&self) -> usize {
        (self.capacity * 3 / 4).min(self.capacity.saturating_sub(1))
    }

    /// Evict until at or under capacity; the returned ids are in eviction
    /// order. No-ops (without locking) when the shard is within bounds.
    fn evict_over_capacity(&self) -> Vec<u64> {
        if self.occupancy.load(Relaxed) <= self.capacity {
            return Vec::new();
        }
        let mut inner = self.write_locked();
        let mut evicted = Vec::new();
        while inner.sessions.len() > self.capacity {
            let victim = self.pick_victim(&inner);
            inner.sessions.remove(&victim);
            push_tombstone(&mut inner, victim);
            evicted.push(victim);
        }
        self.occupancy.store(inner.sessions.len(), Relaxed);
        drop(inner);
        self.stats
            .evictions
            .fetch_add(evicted.len() as u64, Relaxed);
        evicted
    }

    /// One victim-selection scan (write lock held by the caller): demote
    /// the oldest protected entries past the quota, then take the
    /// oldest-stamped probation entry. Ties break on id, so the choice is
    /// independent of `HashMap` iteration order.
    fn pick_victim(&self, inner: &ShardInner) -> u64 {
        let mut probation: Vec<(u64, u64)> = Vec::new();
        let mut protected: Vec<(u64, u64)> = Vec::new();
        for (&id, entry) in &inner.sessions {
            let key = (entry.touch.load(Relaxed), id);
            if entry.protected.load(Relaxed) {
                protected.push(key);
            } else {
                probation.push(key);
            }
        }
        self.stats
            .evict_scan_steps
            .fetch_add(inner.sessions.len() as u64, Relaxed);
        let quota = self.protected_quota();
        if protected.len() > quota {
            protected.sort_unstable();
            for &(_, id) in &protected[..protected.len() - quota] {
                inner.sessions[&id].protected.store(false, Relaxed);
            }
            self.stats
                .demotions
                .fetch_add((protected.len() - quota) as u64, Relaxed);
            probation.extend(protected.drain(..protected.len() - quota));
        }
        // Over capacity ⇒ occupancy > capacity > quota ⇒ probation holds at
        // least two entries after demotion, so the just-inserted (newest
        // stamp) entry is never the minimum.
        probation
            .into_iter()
            .min()
            .expect("eviction scan on an over-capacity shard")
            .1
    }

    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            sessions: self.occupancy.load(Relaxed),
            capacity: self.capacity,
            hits: self.stats.hits.load(Relaxed),
            misses: self.stats.misses.load(Relaxed),
            inserts: self.stats.inserts.load(Relaxed),
            removes: self.stats.removes.load(Relaxed),
            evictions: self.stats.evictions.load(Relaxed),
            demotions: self.stats.demotions.load(Relaxed),
            evict_scan_steps: self.stats.evict_scan_steps.load(Relaxed),
            write_locks: self.stats.write_locks.load(Relaxed),
            lock_wait_read_us: self.stats.read_wait.counts(),
            lock_wait_write_us: self.stats.write_wait.counts(),
        }
    }
}

/// One shard's counters at a point in time (`/metrics` renders these).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    pub sessions: usize,
    pub capacity: usize,
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub removes: u64,
    pub evictions: u64,
    pub demotions: u64,
    pub evict_scan_steps: u64,
    pub write_locks: u64,
    /// Bucket counts over [`LOCK_WAIT_BUCKETS_US`] (+1 unbounded bucket).
    pub lock_wait_read_us: Vec<u64>,
    pub lock_wait_write_us: Vec<u64>,
}

/// The whole store's counters at a point in time.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    /// Total capacity (the sum of the per-shard slices).
    pub capacity: usize,
    pub shards: Vec<ShardSnapshot>,
}

impl StoreSnapshot {
    pub fn live(&self) -> usize {
        self.shards.iter().map(|s| s.sessions).sum()
    }

    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits).sum()
    }

    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses).sum()
    }

    pub fn inserts(&self) -> u64 {
        self.shards.iter().map(|s| s.inserts).sum()
    }

    pub fn removes(&self) -> u64 {
        self.shards.iter().map(|s| s.removes).sum()
    }

    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions).sum()
    }

    pub fn evict_scan_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.evict_scan_steps).sum()
    }

    pub fn write_locks(&self) -> u64 {
        self.shards.iter().map(|s| s.write_locks).sum()
    }

    /// The canonical shard-count-independent accounting line: for one
    /// deterministic workload, this renders byte-identically at every
    /// shard count (the concurrency suite asserts exactly that).
    pub fn accounting_line(&self) -> String {
        format!(
            "hits={} misses={} inserts={} removes={} evictions={} live={}",
            self.hits(),
            self.misses(),
            self.inserts(),
            self.removes(),
            self.evictions(),
            self.live(),
        )
    }
}

/// Shared, bounded, sharded session store.
pub struct SessionStore {
    shards: Vec<Shard>,
    next_id: AtomicU64,
    max_sessions: usize,
}

impl SessionStore {
    /// An empty store holding at most `max_sessions` (≥ 1) sessions, with
    /// the shard count taken from [`SHARDS_ENV`] or the machine's
    /// available parallelism.
    pub fn new(max_sessions: usize) -> Self {
        SessionStore::with_shards(max_sessions, Self::shards_from_env())
    }

    /// [`SessionStore::new`] with an explicit shard count (tests and
    /// benchmarks pin it). Clamped to `1..=max_sessions` so every shard
    /// owns at least one capacity slot.
    pub fn with_shards(max_sessions: usize, shards: usize) -> Self {
        let max_sessions = max_sessions.max(1);
        let shards = shards.clamp(1, max_sessions);
        let base = max_sessions / shards;
        let extra = max_sessions % shards;
        SessionStore {
            shards: (0..shards)
                .map(|k| Shard::new(base + usize::from(k < extra)))
                .collect(),
            next_id: AtomicU64::new(1),
            max_sessions,
        }
    }

    fn shards_from_env() -> usize {
        std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The total capacity bound.
    pub fn capacity(&self) -> usize {
        self.max_sessions
    }

    /// The shard an id lives in: ids are dense and server-assigned, so the
    /// modulo is the hash (see the module docs for the determinism
    /// argument).
    pub fn shard_of(&self, id: u64) -> usize {
        (id % self.shards.len() as u64) as usize
    }

    /// Insert a prepared scenario; returns its fresh id plus the ids of
    /// any sessions evicted to stay under the bound. The eviction scan
    /// fans out per shard over `workers`.
    pub fn insert(&self, scenario: PreparedScenario, workers: &Pool) -> (u64, Vec<u64>) {
        self.insert_session(scenario, None, None, workers)
    }

    /// [`SessionStore::insert`] with the compact origin the session can
    /// later be rebuilt from; the server's persistable creation path uses
    /// this so snapshots can see the session.
    pub fn insert_with_origin(
        &self,
        scenario: PreparedScenario,
        origin: SessionOrigin,
        workers: &Pool,
    ) -> (u64, Vec<u64>) {
        self.insert_session(scenario, None, Some(origin), workers)
    }

    /// [`SessionStore::insert_with_origin`] carrying the full prepared
    /// pipeline alongside the flat final-hop view (pipeline creations).
    pub fn insert_prepared(
        &self,
        scenario: PreparedScenario,
        pipeline: Option<Arc<PreparedPipeline>>,
        origin: SessionOrigin,
        workers: &Pool,
    ) -> (u64, Vec<u64>) {
        self.insert_session(scenario, pipeline, Some(origin), workers)
    }

    fn insert_session(
        &self,
        scenario: PreparedScenario,
        pipeline: Option<Arc<PreparedPipeline>>,
        origin: Option<SessionOrigin>,
        workers: &Pool,
    ) -> (u64, Vec<u64>) {
        let id = self.next_id.fetch_add(1, Relaxed);
        let session = Arc::new(Session::with_origin(id, scenario, pipeline, origin, 0));
        let shard = &self.shards[self.shard_of(id)];
        shard.insert(id, session);
        let evicted = if shard.occupancy.load(Relaxed) > shard.capacity {
            self.scan_evict(workers)
        } else {
            Vec::new()
        };
        (id, evicted)
    }

    /// Run one eviction scan across every shard, fanned out over
    /// `workers`; shards within bounds are skipped without locking.
    /// Returns evicted ids in deterministic shard order. Inserts call this
    /// whenever they push a shard over its slice; it is also a standalone
    /// maintenance entry point.
    pub fn scan_evict(&self, workers: &Pool) -> Vec<u64> {
        workers.par_flat_map_items(&self.shards, 1, Shard::evict_over_capacity)
    }

    /// Fetch a session; a hit marks it most-recently-used (read lock +
    /// atomic touch — never the write lock).
    pub fn get(&self, id: u64) -> SessionLookup {
        self.shards[self.shard_of(id)].lookup(id)
    }

    /// Fetch without touching: no recency stamp, no hit/miss accounting.
    /// The edit path re-validates its session under the edit lock with
    /// this, so a live edit perturbs exactly the state WAL replay will
    /// reconstruct (one `Touch` + one `Edit` per batch).
    pub fn peek(&self, id: u64) -> SessionLookup {
        let shard = &self.shards[self.shard_of(id)];
        let inner = shard.read_locked();
        match inner.sessions.get(&id) {
            Some(entry) => SessionLookup::Found(Arc::clone(&entry.session)),
            None if inner.gone_set.contains(&id) => SessionLookup::Evicted,
            None => SessionLookup::Missing,
        }
    }

    /// Swap a session's incarnation in place: the shard entry keeps its
    /// recency stamp and segment bit, only the `Arc<Session>` changes.
    /// Returns `false` (without inserting) if the id is no longer resident
    /// — a concurrent DELETE or eviction wins over the edit.
    pub fn replace(&self, id: u64, session: Arc<Session>) -> bool {
        let shard = &self.shards[self.shard_of(id)];
        let mut inner = shard.write_locked();
        let Some(old) = inner.sessions.get(&id) else {
            return false;
        };
        let stored = Entry::new(session, old.touch.load(Relaxed));
        stored.protected.store(old.protected.load(Relaxed), Relaxed);
        inner.sessions.insert(id, stored);
        true
    }

    /// Remove a session, distinguishing live, evicted, and unknown ids.
    pub fn remove(&self, id: u64) -> Removal {
        self.shards[self.shard_of(id)].remove(id)
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.occupancy.load(Relaxed)).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A counters snapshot for `/metrics`.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            capacity: self.max_sessions,
            shards: self.shards.iter().map(Shard::snapshot).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Persistence: collection and reconstruction (see the module docs).
    // ------------------------------------------------------------------

    /// Image the store for a snapshot: per-shard clocks and tombstones
    /// plus every persistable entry (sessions injected without an origin —
    /// tests, benchmarks — are invisible to snapshots). Collection fans
    /// out per shard over `workers`; each shard is imaged under its read
    /// lock, and the caller (the server's checkpoint) holds the WAL
    /// rotation lock across the whole call, so every concurrent mutation
    /// lands either in this image or in a WAL record ordered after it.
    pub fn persist_state(&self, workers: &Pool) -> SnapshotState {
        let per_shard: Vec<(PersistedShard, Vec<PersistedEntry>)> =
            workers.par_map_items(&self.shards, 1, |shard| {
                let inner = shard.read_locked();
                let image = PersistedShard {
                    clock: shard.clock.load(Relaxed),
                    tombstones: inner.gone.iter().copied().collect(),
                };
                let mut entries: Vec<PersistedEntry> = inner
                    .sessions
                    .iter()
                    .filter_map(|(&id, entry)| {
                        let origin = entry.session.origin()?;
                        Some(PersistedEntry {
                            id,
                            stamp: entry.touch.load(Relaxed),
                            protected: entry.protected.load(Relaxed),
                            chase: origin.chase,
                            edit_seq: entry.session.edit_seq,
                            scenario: origin.text.to_string(),
                            forests: entry.session.cached_forest_keys(),
                        })
                    })
                    .collect();
                entries.sort_unstable_by_key(|e| e.id);
                (image, entries)
            });
        let mut state = SnapshotState {
            next_id: self.next_id.load(Relaxed),
            shards: Vec::with_capacity(per_shard.len()),
            entries: Vec::new(),
        };
        for (image, entries) in per_shard {
            state.shards.push(image);
            state.entries.extend(entries);
        }
        // Ids are assigned round-robin across shards, so the per-shard
        // sorted runs interleave; one global sort restores id order.
        state.entries.sort_unstable_by_key(|e| e.id);
        state
    }

    /// Rebuild the store from a snapshot image (recovery calls this on an
    /// empty store before WAL replay). At the image's shard count the
    /// restoration is byte-identical: exact per-shard clocks, tombstones
    /// in deque order, every entry's stamp and segment bit. At a
    /// different shard count it is semantically equivalent instead: all
    /// shard clocks start at the image's maximum (so every later stamp
    /// sorts after every restored one) and tombstones re-shard by id.
    /// Scenario preparation — the chase — dominates recovery time and
    /// fans out over `workers`; an entry whose text no longer prepares is
    /// dropped (`prepare` returning `None`) rather than aborting
    /// recovery. Returns the number of restored sessions.
    pub fn restore_state(
        &self,
        state: &SnapshotState,
        workers: &Pool,
        prepare: &(dyn Fn(&str, ChaseMode) -> Option<PreparedSession> + Sync),
    ) -> usize {
        self.next_id.fetch_max(state.next_id, Relaxed);
        if state.shards.len() == self.shards.len() {
            for (shard, image) in self.shards.iter().zip(&state.shards) {
                shard.clock.fetch_max(image.clock, Relaxed);
                let mut inner = shard.write_locked();
                for &id in &image.tombstones {
                    push_tombstone(&mut inner, id);
                }
            }
        } else {
            let max_clock = state.shards.iter().map(|s| s.clock).max().unwrap_or(0);
            for shard in &self.shards {
                shard.clock.fetch_max(max_clock, Relaxed);
            }
            for image in &state.shards {
                for &id in &image.tombstones {
                    let mut inner = self.shards[self.shard_of(id)].write_locked();
                    push_tombstone(&mut inner, id);
                }
            }
        }
        let prepared: Vec<Option<PreparedSession>> =
            workers.par_map_items(&state.entries, 1, |entry| {
                prepare(&entry.scenario, entry.chase)
            });
        let mut restored = 0usize;
        for (entry, prepared) in state.entries.iter().zip(prepared) {
            let Some((scenario, pipeline)) = prepared else {
                continue;
            };
            let origin = SessionOrigin {
                chase: entry.chase,
                text: Arc::from(entry.scenario.as_str()),
            };
            let session = Arc::new(Session::with_origin(
                entry.id,
                scenario,
                pipeline,
                Some(origin),
                entry.edit_seq,
            ));
            self.warm_forests(&session, &entry.forests, workers);
            let shard = &self.shards[self.shard_of(entry.id)];
            let stored = Entry::new(Arc::clone(&session), entry.stamp);
            stored.protected.store(entry.protected, Relaxed);
            let mut inner = shard.write_locked();
            inner.sessions.insert(entry.id, stored);
            shard.occupancy.store(inner.sessions.len(), Relaxed);
            drop(inner);
            restored += 1;
        }
        restored
    }

    /// Re-apply WAL records in log order on top of a restored snapshot.
    /// Creates draw fresh stamps from the shard clocks exactly as live
    /// inserts do, touches run the live stamp/promote path, deletes and
    /// evictions remove (evictions leaving the bounded tombstone) — so a
    /// deterministic history replays to the same recency structure it
    /// produced live. A Create whose id is tombstoned is skipped: ids are
    /// never reused, so the Evict/Delete that follows it in the log (or
    /// preceded it in a racy interleaving) is authoritative. Returns the
    /// number of records applied.
    pub fn replay_records(
        &self,
        records: &[Record],
        workers: &Pool,
        prepare: &(dyn Fn(&str, ChaseMode) -> Option<PreparedSession> + Sync),
    ) -> usize {
        let mut applied = 0usize;
        for record in records {
            match record {
                Record::Create {
                    id,
                    chase,
                    scenario,
                } => {
                    let shard = &self.shards[self.shard_of(*id)];
                    if shard.read_locked().gone_set.contains(id) {
                        continue;
                    }
                    let Some((prep, pipeline)) = prepare(scenario, *chase) else {
                        continue;
                    };
                    // Keep the id counter ahead of every replayed id even
                    // if the log tail (where the counter would have been
                    // snapshotted) was lost.
                    self.next_id.fetch_max(id + 1, Relaxed);
                    let origin = SessionOrigin {
                        chase: *chase,
                        text: Arc::from(scenario.as_str()),
                    };
                    let session =
                        Arc::new(Session::with_origin(*id, prep, pipeline, Some(origin), 0));
                    let stamp = Entry::next_stamp(&shard.clock);
                    let mut inner = shard.write_locked();
                    inner.sessions.insert(*id, Entry::new(session, stamp));
                    shard.occupancy.store(inner.sessions.len(), Relaxed);
                    drop(inner);
                    applied += 1;
                }
                Record::Touch { id } => {
                    let shard = &self.shards[self.shard_of(*id)];
                    let entry = shard.read_locked().sessions.get(id).cloned();
                    if let Some(entry) = entry {
                        entry.touch(&shard.clock);
                        applied += 1;
                    }
                }
                Record::Delete { id } => {
                    let shard = &self.shards[self.shard_of(*id)];
                    let mut inner = shard.write_locked();
                    if inner.sessions.remove(id).is_some() {
                        shard.occupancy.store(inner.sessions.len(), Relaxed);
                        applied += 1;
                    }
                }
                Record::Evict { id } => {
                    let shard = &self.shards[self.shard_of(*id)];
                    let mut inner = shard.write_locked();
                    inner.sessions.remove(id);
                    push_tombstone(&mut inner, *id);
                    shard.occupancy.store(inner.sessions.len(), Relaxed);
                    applied += 1;
                }
                Record::Forest { id, selection } => {
                    let session = self.shards[self.shard_of(*id)]
                        .read_locked()
                        .sessions
                        .get(id)
                        .map(|e| Arc::clone(&e.session));
                    if let Some(session) = session {
                        self.warm_forests(&session, std::slice::from_ref(selection), workers);
                        applied += 1;
                    }
                }
                Record::Edit { id, seq, ops } => {
                    // Idempotent by sequence number: a snapshot taken after
                    // the batch already reflects it, so replaying on top
                    // would double-apply. Replay re-edits the canonical text
                    // and re-prepares from scratch — recovery optimizes for
                    // correctness, not latency; the chase is deterministic,
                    // so the result matches the live incremental apply byte
                    // for byte. Memos restart empty and forests re-warm
                    // from later `Forest` records.
                    let shard = &self.shards[self.shard_of(*id)];
                    let session = shard
                        .read_locked()
                        .sessions
                        .get(id)
                        .map(|e| Arc::clone(&e.session));
                    let Some(session) = session else { continue };
                    if *seq <= session.edit_seq {
                        continue;
                    }
                    let Some(origin) = session.origin() else {
                        continue;
                    };
                    let Ok((text, _)) = routes_incr::apply_edits(&origin.text, ops) else {
                        continue;
                    };
                    // Edits only exist for flat sessions, so the replayed
                    // incarnation never carries a pipeline.
                    let Some((prep, _)) = prepare(&text, origin.chase) else {
                        continue;
                    };
                    let new_origin = SessionOrigin {
                        chase: origin.chase,
                        text: Arc::from(text.as_str()),
                    };
                    let replaced = Arc::new(session.edited(
                        prep,
                        new_origin,
                        *seq,
                        IncrState::default(),
                        HashMap::new(),
                    ));
                    if self.replace(*id, replaced) {
                        applied += 1;
                    }
                }
            }
        }
        applied
    }

    /// Recompute persisted forest-cache keys for a restored session,
    /// skipping any selection that no longer names valid tuples (the
    /// scenario text is the source of truth; a key that validated when
    /// written validates again unless the codec versions drifted).
    fn warm_forests(&self, session: &Session, keys: &[SelectionKey], workers: &Pool) {
        let target = &session.scenario.target;
        for key in keys {
            let tuples: Vec<TupleId> = key
                .iter()
                .map(|&(rel, row)| TupleId {
                    rel: RelId(rel),
                    row,
                })
                .collect();
            let valid = tuples.iter().all(|t| {
                (t.rel.0 as usize) < target.num_relations() && t.row < target.rel_len(t.rel)
            });
            if valid {
                session.forest_for(&tuples, workers);
            }
        }
    }
}

/// Record an eviction tombstone in a shard (shared by the live eviction
/// scan's inline version and the restore/replay paths), bounded by
/// [`TOMBSTONES_PER_SHARD`].
fn push_tombstone(inner: &mut ShardInner, id: u64) {
    if inner.gone_set.insert(id) {
        inner.gone.push_back(id);
        if inner.gone.len() > TOMBSTONES_PER_SHARD {
            if let Some(old) = inner.gone.pop_front() {
                inner.gone_set.remove(&old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_chase::ChaseOptions;
    use routes_cli::{load_scenario_str, prepare_scenario};

    fn scenario(tag: i64) -> PreparedScenario {
        let text = format!(
            "source schema:\n  S(a)\ntarget schema:\n  T(a)\n\
             dependencies:\n  m: S(x) -> T(x)\nsource data:\n  S({tag})\n"
        );
        prepare_scenario(load_scenario_str(&text).unwrap(), ChaseOptions::fresh()).unwrap()
    }

    fn seq() -> Pool {
        Pool::sequential()
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let store = SessionStore::with_shards(2, 1);
        let (a, ev) = store.insert(scenario(1), &seq());
        assert!(ev.is_empty());
        let (b, ev) = store.insert(scenario(2), &seq());
        assert!(ev.is_empty());
        // Touch a so b becomes the LRU victim.
        assert!(store.get(a).is_found());
        let (c, ev) = store.insert(scenario(3), &seq());
        assert_eq!(ev, vec![b], "b was least recently used");
        assert!(matches!(store.get(b), SessionLookup::Evicted));
        assert!(store.get(a).is_found());
        assert!(store.get(c).is_found());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn remove_frees_a_slot_and_classifies_misses() {
        let store = SessionStore::with_shards(1, 1);
        let (a, _) = store.insert(scenario(1), &seq());
        assert_eq!(store.remove(a), Removal::Removed);
        assert_eq!(
            store.remove(a),
            Removal::Missing,
            "second delete is a no-op"
        );
        assert!(store.is_empty());
        assert!(
            matches!(store.get(a), SessionLookup::Missing),
            "deleted is Missing, not Evicted"
        );
        let (b, ev) = store.insert(scenario(2), &seq());
        assert!(ev.is_empty(), "freed slot means no eviction");
        let (_, ev) = store.insert(scenario(3), &seq());
        assert_eq!(ev, vec![b]);
        assert_eq!(store.remove(b), Removal::Evicted, "evicted ids answer Gone");
        assert!(matches!(store.get(b), SessionLookup::Evicted));
        assert!(matches!(store.get(999), SessionLookup::Missing));
    }

    #[test]
    fn forest_cache_hits_for_permuted_selections() {
        let store = SessionStore::with_shards(4, 2);
        let (id, _) = store.insert(scenario(5), &seq());
        let session = store.get(id).session().unwrap();
        let tuples: Vec<TupleId> = session.scenario.target.all_rows().collect();
        let workers = Pool::sequential();
        let (_, cached, wall) = session.forest_for(&tuples, &workers);
        assert!(!cached, "first computation misses");
        assert!(wall > Duration::ZERO, "misses report construction time");
        let mut reversed = tuples.clone();
        reversed.reverse();
        let (_, cached, wall) = session.forest_for(&reversed, &workers);
        assert!(cached, "same set in another order hits");
        assert_eq!(wall, Duration::ZERO, "hits cost nothing");
        assert_eq!(session.cached_forests(), 1);
    }

    #[test]
    fn capacity_slices_cover_the_bound_exactly() {
        for (max, shards) in [(16, 8), (16, 1), (7, 3), (5, 8), (1, 4)] {
            let store = SessionStore::with_shards(max, shards);
            let total: usize = store.shards.iter().map(|s| s.capacity).sum();
            assert_eq!(total, max, "max={max} shards={shards}");
            assert!(store.shards.iter().all(|s| s.capacity >= 1));
            assert!(store.shard_count() <= max, "no zero-capacity shards");
        }
    }

    #[test]
    fn sharded_store_keeps_every_shard_within_its_slice() {
        let store = SessionStore::with_shards(8, 4);
        let mut all_evicted = Vec::new();
        for tag in 0..24 {
            let (_, ev) = store.insert(scenario(tag), &seq());
            all_evicted.extend(ev);
        }
        assert_eq!(store.len(), 8, "saturated store holds exactly its capacity");
        for shard in &store.shards {
            assert!(shard.occupancy.load(Relaxed) <= shard.capacity);
        }
        let snap = store.snapshot();
        assert_eq!(snap.evictions(), all_evicted.len() as u64);
        assert_eq!(snap.inserts(), 24);
        assert_eq!(snap.evictions(), 24 - 8);
        for id in all_evicted {
            assert!(
                matches!(store.get(id), SessionLookup::Evicted),
                "evicted id {id} answers Evicted"
            );
        }
    }

    #[test]
    fn protected_sessions_outlive_probation_under_pressure() {
        // One shard, capacity 4: touch two early sessions, then churn; the
        // touched (protected) pair must outlive untouched probation peers.
        let store = SessionStore::with_shards(4, 1);
        let (a, _) = store.insert(scenario(1), &seq());
        let (b, _) = store.insert(scenario(2), &seq());
        let (c, _) = store.insert(scenario(3), &seq());
        let (d, _) = store.insert(scenario(4), &seq());
        assert!(store.get(a).is_found());
        assert!(store.get(b).is_found());
        let (_, ev1) = store.insert(scenario(5), &seq());
        let (_, ev2) = store.insert(scenario(6), &seq());
        let evicted: Vec<u64> = ev1.into_iter().chain(ev2).collect();
        assert_eq!(evicted, vec![c, d], "probation evicts before protected");
        assert!(store.get(a).is_found());
        assert!(store.get(b).is_found());
    }

    #[test]
    fn touch_takes_no_write_lock_and_scans_nothing() {
        // The satellite-4 regression: the old store's get did an O(n)
        // LRU-vector retain under the write lock; the new touch path is a
        // read lock plus two atomics. Pin it with the operation counters,
        // at two store sizes and two shard counts.
        for shards in [1usize, 4] {
            for size in [4usize, 64] {
                let store = SessionStore::with_shards(64, shards);
                let ids: Vec<u64> = (0..size)
                    .map(|k| store.insert(scenario(k as i64), &seq()).0)
                    .collect();
                let before = store.snapshot();
                for _ in 0..50 {
                    for &id in &ids {
                        assert!(store.get(id).is_found());
                    }
                }
                let after = store.snapshot();
                assert_eq!(
                    after.write_locks(),
                    before.write_locks(),
                    "gets take no write lock (shards={shards} size={size})"
                );
                assert_eq!(
                    after.evict_scan_steps(),
                    before.evict_scan_steps(),
                    "gets scan nothing (shards={shards} size={size})"
                );
                assert_eq!(after.hits() - before.hits(), 50 * size as u64);
            }
        }
    }

    #[test]
    fn shard_count_comes_from_env_or_parallelism() {
        // Read the ambient override the CI matrix sets (the suite must not
        // mutate process-global env itself — other tests run in parallel).
        let expected = std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get));
        let store = SessionStore::new(64);
        assert_eq!(store.shard_count(), expected.clamp(1, 64));
    }

    // ------------------------------------------------------------------
    // Hand-rolled interleaving ("loom-style") schedules for the touch
    // path. The workspace is hermetic, so instead of loom we enumerate
    // every merge order of two short step sequences and run each schedule
    // on fresh state, asserting the same invariants loom would check.
    // ------------------------------------------------------------------

    /// Every interleaving of `a` steps by thread A and `b` steps by
    /// thread B, as vectors of `true` (= run A's next step) / `false`.
    fn interleavings(a: usize, b: usize) -> Vec<Vec<bool>> {
        if a == 0 {
            return vec![vec![false; b]];
        }
        if b == 0 {
            return vec![vec![true; a]];
        }
        let mut out = Vec::new();
        for mut tail in interleavings(a - 1, b) {
            tail.insert(0, true);
            out.push(tail);
        }
        for mut tail in interleavings(a, b - 1) {
            tail.insert(0, false);
            out.push(tail);
        }
        out
    }

    #[test]
    fn promotion_is_idempotent_under_every_two_thread_schedule() {
        // Two touchers race on one entry. Steps per toucher: draw a stamp,
        // record it, promote. All 20 interleavings must end protected with
        // the *newest* stamp (record_stamp is fetch_max, not store).
        for schedule in interleavings(3, 3) {
            let store = SessionStore::with_shards(2, 1);
            let (id, _) = store.insert(scenario(1), &seq());
            let shard = &store.shards[store.shard_of(id)];
            let entry = Arc::clone(shard.inner.read().unwrap().sessions.get(&id).unwrap());
            let clock_before = shard.clock.load(Relaxed);

            let (mut a_step, mut b_step) = (0usize, 0usize);
            let (mut a_stamp, mut b_stamp) = (0u64, 0u64);
            for &run_a in &schedule {
                let (step, stamp) = if run_a {
                    (&mut a_step, &mut a_stamp)
                } else {
                    (&mut b_step, &mut b_stamp)
                };
                match *step {
                    0 => *stamp = Entry::next_stamp(&shard.clock),
                    1 => entry.record_stamp(*stamp),
                    2 => entry.promote(),
                    _ => unreachable!(),
                }
                *step += 1;
            }
            assert!(entry.protected.load(Relaxed), "promotion happened");
            assert_eq!(
                entry.touch.load(Relaxed),
                clock_before + 2,
                "racing touches keep the newest of the two issued stamps \
                 (schedule {schedule:?})"
            );
        }
    }

    #[test]
    fn touch_racing_eviction_never_resurrects_the_victim() {
        // Thread A runs the two halves of a lookup (clone the entry under
        // the read lock; touch after dropping it). Thread B inserts into a
        // full shard, evicting the LRU victim. Whatever the interleaving,
        // a touch that lands on an already-evicted entry must be inert:
        // the id stays gone, the store stays within capacity, and the
        // victim is schedule-determined.
        //
        // Setup: one shard, capacity 2, holding x (older) and w (newer).
        let schedules = interleavings(2, 1);
        assert_eq!(schedules.len(), 3);
        // Victim per schedule: if x's touch completes before the insert's
        // eviction scan, x is protected with the newest stamp, so w is
        // evicted; otherwise x is the oldest probation entry and dies.
        for schedule in schedules {
            let store = SessionStore::with_shards(2, 1);
            let (x, _) = store.insert(scenario(1), &seq());
            let (w, _) = store.insert(scenario(2), &seq());
            let shard = &store.shards[store.shard_of(x)];

            let mut a_step = 0usize;
            let mut held: Option<Arc<Entry>> = None;
            let mut evicted: Vec<u64> = Vec::new();
            for &run_a in &schedule {
                if run_a {
                    match a_step {
                        // Lookup half 1: clone under the read lock.
                        0 => held = shard.inner.read().unwrap().sessions.get(&x).cloned(),
                        // Lookup half 2: touch outside the lock.
                        1 => {
                            if let Some(e) = &held {
                                e.touch(&shard.clock);
                            }
                        }
                        _ => unreachable!(),
                    }
                    a_step += 1;
                } else {
                    let (_, ev) = store.insert(scenario(3), &seq());
                    evicted = ev;
                }
            }
            let touched_first = schedule.iter().take(2).all(|&s| s);
            let expected_victim = if touched_first { w } else { x };
            assert_eq!(evicted, vec![expected_victim], "schedule {schedule:?}");
            assert_eq!(store.len(), 2, "capacity holds");
            assert!(
                matches!(store.get(expected_victim), SessionLookup::Evicted),
                "victim stays gone after a late touch (schedule {schedule:?})"
            );
            // A later insert evicts a *resident* session — the stale
            // entry the toucher still holds can never re-enter the scan.
            let (_, ev) = store.insert(scenario(4), &seq());
            assert_eq!(ev.len(), 1);
            assert_ne!(ev[0], expected_victim, "no resurrection");
        }
    }

    #[test]
    fn touch_racing_remove_leaves_the_id_deleted() {
        // Same two lookup halves racing a DELETE: all three interleavings
        // end with the id Missing (deleted, not evicted) and the detached
        // touch inert.
        for schedule in interleavings(2, 1) {
            let store = SessionStore::with_shards(2, 1);
            let (x, _) = store.insert(scenario(1), &seq());
            let (w, _) = store.insert(scenario(2), &seq());
            let shard = &store.shards[store.shard_of(x)];

            let mut a_step = 0usize;
            let mut held: Option<Arc<Entry>> = None;
            for &run_a in &schedule {
                if run_a {
                    match a_step {
                        0 => held = shard.inner.read().unwrap().sessions.get(&x).cloned(),
                        1 => {
                            if let Some(e) = &held {
                                e.touch(&shard.clock);
                            }
                        }
                        _ => unreachable!(),
                    }
                    a_step += 1;
                } else {
                    assert_eq!(store.remove(x), Removal::Removed);
                }
            }
            assert!(matches!(store.get(x), SessionLookup::Missing));
            assert!(store.get(w).is_found(), "the bystander survives");
            assert_eq!(store.len(), 1);
        }
    }
}
