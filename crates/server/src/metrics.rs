//! Service counters, lock-free via atomics.
//!
//! One [`Metrics`] instance is shared by every worker thread; all updates
//! are relaxed (counters tolerate reordering, they only need to not lose
//! increments). `GET /metrics` renders a snapshot.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use crate::json::Json;

/// Upper bounds (µs) of the request-latency histogram buckets; the last
/// bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 7] = [100, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// A work phase whose wall time is tracked separately from whole-request
/// latency: the chase materializing `J`, route-forest construction
/// (`ComputeAllRoutes`), single-route enumeration (`ComputeOneRoute` +
/// replay), and result rendering ("print": view building + JSON encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Chase,
    Forest,
    Route,
    Print,
}

impl Phase {
    /// All phases, in the order they appear in the `/metrics` JSON.
    pub const ALL: [Phase; 4] = [Phase::Chase, Phase::Forest, Phase::Route, Phase::Print];

    /// The JSON key of this phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Chase => "chase",
            Phase::Forest => "forest",
            Phase::Route => "route",
            Phase::Print => "print",
        }
    }
}

/// Per-phase wall-time accounting: sample count, total microseconds, and a
/// latency histogram over [`LATENCY_BUCKETS_US`].
#[derive(Default)]
pub struct PhaseStats {
    pub count: AtomicU64,
    pub total_us: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
}

impl PhaseStats {
    fn record(&self, latency: Duration) {
        self.count.fetch_add(1, Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.total_us.fetch_add(us, Relaxed);
        self.latency[bucket_of(us)].fetch_add(1, Relaxed);
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count.load(Relaxed))),
            ("total_us", Json::from(self.total_us.load(Relaxed))),
            ("latency_us", histogram_json(&self.latency)),
        ])
    }
}

/// Shared service counters.
#[derive(Default)]
pub struct Metrics {
    pub requests_total: AtomicU64,
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    pub bad_requests: AtomicU64,
    pub connections_accepted: AtomicU64,
    pub sessions_created: AtomicU64,
    pub sessions_deleted: AtomicU64,
    pub sessions_evicted: AtomicU64,
    pub one_routes_computed: AtomicU64,
    pub all_routes_computed: AtomicU64,
    pub forest_cache_hits: AtomicU64,
    pub forest_cache_misses: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    phases: [PhaseStats; Phase::ALL.len()],
}

fn bucket_of(us: u64) -> usize {
    LATENCY_BUCKETS_US
        .iter()
        .position(|&b| us <= b)
        .unwrap_or(LATENCY_BUCKETS_US.len())
}

fn histogram_json(latency: &[AtomicU64; LATENCY_BUCKETS_US.len() + 1]) -> Json {
    Json::Array(
        (0..=LATENCY_BUCKETS_US.len())
            .map(|i| {
                let le = LATENCY_BUCKETS_US
                    .get(i)
                    .map_or_else(|| "inf".to_owned(), |b| b.to_string());
                Json::obj([
                    ("le_us", Json::from(le)),
                    ("count", Json::from(latency[i].load(Relaxed))),
                ])
            })
            .collect(),
    )
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Count one handled request with its response status and latency.
    pub fn record_response(&self, status: u16, latency: Duration) {
        self.requests_total.fetch_add(1, Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency[bucket_of(us)].fetch_add(1, Relaxed);
    }

    /// Record one sample of a work phase's wall time.
    pub fn record_phase(&self, phase: Phase, latency: Duration) {
        self.phases[phase as usize].record(latency);
    }

    /// The accounting of one phase (snapshot reads).
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        &self.phases[phase as usize]
    }

    /// Render the snapshot served by `GET /metrics`. `threads` is the worker
    /// pool width used for parallel chase / forest construction.
    pub fn to_json(&self, live_sessions: usize, threads: usize) -> Json {
        let hist = histogram_json(&self.latency);
        let phases = Json::Object(
            Phase::ALL
                .iter()
                .map(|&p| (p.name().to_owned(), self.phases[p as usize].to_json()))
                .collect(),
        );
        Json::obj([
            ("threads", Json::from(threads)),
            ("requests_total", Json::from(self.requests_total.load(Relaxed))),
            ("responses_2xx", Json::from(self.responses_2xx.load(Relaxed))),
            ("responses_4xx", Json::from(self.responses_4xx.load(Relaxed))),
            ("responses_5xx", Json::from(self.responses_5xx.load(Relaxed))),
            ("bad_requests", Json::from(self.bad_requests.load(Relaxed))),
            (
                "connections_accepted",
                Json::from(self.connections_accepted.load(Relaxed)),
            ),
            ("live_sessions", Json::from(live_sessions)),
            ("sessions_created", Json::from(self.sessions_created.load(Relaxed))),
            ("sessions_deleted", Json::from(self.sessions_deleted.load(Relaxed))),
            ("sessions_evicted", Json::from(self.sessions_evicted.load(Relaxed))),
            (
                "one_routes_computed",
                Json::from(self.one_routes_computed.load(Relaxed)),
            ),
            (
                "all_routes_computed",
                Json::from(self.all_routes_computed.load(Relaxed)),
            ),
            ("forest_cache_hits", Json::from(self.forest_cache_hits.load(Relaxed))),
            (
                "forest_cache_misses",
                Json::from(self.forest_cache_misses.load(Relaxed)),
            ),
            ("latency_us", hist),
            ("phases", phases),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_land_in_class_and_latency_buckets() {
        let m = Metrics::new();
        m.record_response(200, Duration::from_micros(50));
        m.record_response(201, Duration::from_micros(400));
        m.record_response(404, Duration::from_millis(2));
        m.record_response(500, Duration::from_secs(5));
        assert_eq!(m.requests_total.load(Relaxed), 4);
        assert_eq!(m.responses_2xx.load(Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Relaxed), 1);
        assert_eq!(m.responses_5xx.load(Relaxed), 1);
        let snapshot = m.to_json(3, 2);
        assert_eq!(snapshot.get("requests_total").unwrap().as_u64(), Some(4));
        assert_eq!(snapshot.get("live_sessions").unwrap().as_u64(), Some(3));
        assert_eq!(snapshot.get("threads").unwrap().as_u64(), Some(2));
        let hist = snapshot.get("latency_us").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), LATENCY_BUCKETS_US.len() + 1);
        let total: u64 = hist.iter().map(|b| b.get("count").unwrap().as_u64().unwrap()).sum();
        assert_eq!(total, 4);
        // The 5 s response falls in the unbounded bucket.
        assert_eq!(hist.last().unwrap().get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn phase_samples_accumulate_count_total_and_histogram() {
        let m = Metrics::new();
        m.record_phase(Phase::Chase, Duration::from_micros(90));
        m.record_phase(Phase::Chase, Duration::from_micros(400));
        m.record_phase(Phase::Forest, Duration::from_millis(2));
        assert_eq!(m.phase(Phase::Chase).count.load(Relaxed), 2);
        assert_eq!(m.phase(Phase::Chase).total_us.load(Relaxed), 490);
        assert_eq!(m.phase(Phase::Route).count.load(Relaxed), 0);
        let snapshot = m.to_json(0, 1);
        let phases = snapshot.get("phases").unwrap();
        for p in Phase::ALL {
            let entry = phases.get(p.name()).unwrap();
            let hist_total: u64 = entry
                .get("latency_us")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|b| b.get("count").unwrap().as_u64().unwrap())
                .sum();
            assert_eq!(Some(hist_total), entry.get("count").unwrap().as_u64());
        }
        assert_eq!(
            phases.get("forest").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }
}
