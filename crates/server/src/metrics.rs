//! Service counters, lock-free via atomics.
//!
//! One [`Metrics`] instance is shared by every worker thread; all updates
//! are relaxed (counters tolerate reordering, they only need to not lose
//! increments). `GET /metrics` renders a snapshot.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use routes_model::JoinSnapshot;
use routes_store::{PersistSnapshot, FSYNC_BUCKETS_US};

use crate::json::Json;
use crate::session::{ShardSnapshot, StoreSnapshot, LOCK_WAIT_BUCKETS_US};
use crate::window::{window_seconds_from_env, WindowRing, WindowSnapshot};

/// Upper bounds (µs) of the request-latency histogram buckets; the last
/// bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 7] = [100, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// A work phase whose wall time is tracked separately from whole-request
/// latency: the chase materializing `J`, route-forest construction
/// (`ComputeAllRoutes`), single-route enumeration (`ComputeOneRoute` +
/// replay), result rendering ("print": view building + JSON encoding), and
/// edit-batch application (the whole incremental pipeline; the replayed
/// chase inside it is also sampled under `chase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Chase,
    Forest,
    Route,
    Print,
    Edit,
}

impl Phase {
    /// All phases, in the order they appear in the `/metrics` JSON.
    pub const ALL: [Phase; 5] = [
        Phase::Chase,
        Phase::Forest,
        Phase::Route,
        Phase::Print,
        Phase::Edit,
    ];

    /// The JSON key of this phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Chase => "chase",
            Phase::Forest => "forest",
            Phase::Route => "route",
            Phase::Print => "print",
            Phase::Edit => "edit",
        }
    }
}

/// Per-phase wall-time accounting: sample count, total microseconds, and a
/// latency histogram over [`LATENCY_BUCKETS_US`].
#[derive(Default)]
pub struct PhaseStats {
    pub count: AtomicU64,
    pub total_us: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
}

impl PhaseStats {
    fn record(&self, latency: Duration) {
        self.count.fetch_add(1, Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.total_us.fetch_add(us, Relaxed);
        self.latency[bucket_of(us)].fetch_add(1, Relaxed);
    }

    fn latency_counts(&self) -> Vec<u64> {
        self.latency.iter().map(|c| c.load(Relaxed)).collect()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count.load(Relaxed))),
            ("total_us", Json::from(self.total_us.load(Relaxed))),
            (
                "latency_us",
                histogram_json(&LATENCY_BUCKETS_US, &self.latency_counts()),
            ),
        ])
    }
}

/// Shared service counters.
pub struct Metrics {
    /// When this instance was created (serving process start, in
    /// practice); `/metrics` renders the elapsed time as `uptime_seconds`.
    started: Instant,
    pub requests_total: AtomicU64,
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    pub bad_requests: AtomicU64,
    pub connections_accepted: AtomicU64,
    /// Bound of the acceptor's connection queue (0 until a server stores
    /// its resolved `--max-queue`; `Metrics` alone has no front door).
    pub admission_queue_capacity: AtomicU64,
    /// Connections currently parked in the acceptor's queue.
    pub admission_queue_depth: AtomicU64,
    /// Connections admitted into the queue (later popped by a worker).
    pub admission_admitted: AtomicU64,
    /// Connections shed at the door with `429 Too Many Requests`.
    pub admission_shed: AtomicU64,
    /// Requests answered `408 Request Timeout` after their wall-clock
    /// deadline expired mid-parse.
    pub admission_timeouts: AtomicU64,
    /// Connections force-closed by a deadline (every 408 plus write-side
    /// stalls that never got a response).
    pub admission_reaped: AtomicU64,
    admission_queue_wait: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    pub sessions_created: AtomicU64,
    pub sessions_deleted: AtomicU64,
    pub sessions_evicted: AtomicU64,
    pub one_routes_computed: AtomicU64,
    pub all_routes_computed: AtomicU64,
    pub forest_cache_hits: AtomicU64,
    pub forest_cache_misses: AtomicU64,
    pub edits_applied: AtomicU64,
    pub edits_rejected: AtomicU64,
    pub edit_ops_applied: AtomicU64,
    pub edit_forests_kept: AtomicU64,
    pub edit_forests_invalidated: AtomicU64,
    /// Multi-stage pipeline sessions created (subset of `sessions_created`).
    pub pipeline_sessions_created: AtomicU64,
    /// Stage chases run while creating pipeline sessions (hops summed).
    pub pipeline_stage_chases: AtomicU64,
    /// Core minimization passes run (one per hop when core mode is on).
    pub pipeline_core_runs: AtomicU64,
    /// Tuples removed by core minimization, summed over hops and sessions.
    pub pipeline_core_tuples_removed: AtomicU64,
    /// Stitched end-to-end routes answered.
    pub pipeline_stitched_routes: AtomicU64,
    /// Per-hop routes inside answered stitched routes (hops summed).
    pub pipeline_stitched_hops: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    phases: [PhaseStats; Phase::ALL.len()],
    /// Rolling one-second traffic windows (live rps / error rate / tail
    /// latency; `ROUTES_WINDOW_SECONDS` sizes the ring).
    window: WindowRing,
    /// Per-latency-bucket exemplar: the trace id and duration of the
    /// slowest recent request that landed in the bucket, linking a
    /// `/metrics` scrape to `GET /trace?trace_id=` evidence.
    exemplars: [Mutex<Option<Exemplar>>; LATENCY_BUCKETS_US.len() + 1],
}

/// One retained bucket occupant; see [`Metrics::exemplars`].
struct Exemplar {
    trace: String,
    dur_us: u64,
    at: Instant,
}

/// How long a bucket exemplar stays authoritative: after this, any new
/// occupant replaces it even if faster, so exemplars keep pointing at
/// traces the ring buffer still holds.
const EXEMPLAR_TTL: Duration = Duration::from_secs(10);

fn bucket_of(us: u64) -> usize {
    LATENCY_BUCKETS_US
        .iter()
        .position(|&b| us <= b)
        .unwrap_or(LATENCY_BUCKETS_US.len())
}

/// Render a histogram as `[{le_us, count}, ...]`; `counts` must hold one
/// entry per bound plus the final unbounded bucket.
fn histogram_json(bounds: &[u64], counts: &[u64]) -> Json {
    debug_assert_eq!(counts.len(), bounds.len() + 1);
    Json::Array(
        counts
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let le = bounds
                    .get(i)
                    .map_or_else(|| "inf".to_owned(), |b| b.to_string());
                Json::obj([("le_us", Json::from(le)), ("count", Json::from(count))])
            })
            .collect(),
    )
}

fn shard_json(shard: &ShardSnapshot) -> Json {
    Json::obj([
        ("sessions", Json::from(shard.sessions)),
        ("capacity", Json::from(shard.capacity)),
        ("hits", Json::from(shard.hits)),
        ("misses", Json::from(shard.misses)),
        ("inserts", Json::from(shard.inserts)),
        ("removes", Json::from(shard.removes)),
        ("evictions", Json::from(shard.evictions)),
        ("demotions", Json::from(shard.demotions)),
        ("evict_scan_steps", Json::from(shard.evict_scan_steps)),
        ("write_locks", Json::from(shard.write_locks)),
        (
            "lock_wait_read_us",
            histogram_json(&LOCK_WAIT_BUCKETS_US, &shard.lock_wait_read_us),
        ),
        (
            "lock_wait_write_us",
            histogram_json(&LOCK_WAIT_BUCKETS_US, &shard.lock_wait_write_us),
        ),
    ])
}

/// Render a session-store snapshot: store-wide totals plus the per-shard
/// counter blocks (`/metrics` embeds this as `session_store`).
pub fn store_json(store: &StoreSnapshot) -> Json {
    Json::obj([
        ("capacity", Json::from(store.capacity)),
        ("shard_count", Json::from(store.shards.len())),
        ("live_sessions", Json::from(store.live())),
        ("hits", Json::from(store.hits())),
        ("misses", Json::from(store.misses())),
        ("inserts", Json::from(store.inserts())),
        ("removes", Json::from(store.removes())),
        ("evictions", Json::from(store.evictions())),
        ("evict_scan_steps", Json::from(store.evict_scan_steps())),
        ("write_locks", Json::from(store.write_locks())),
        (
            "shards",
            Json::Array(store.shards.iter().map(shard_json).collect()),
        ),
    ])
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Render the persistence counters (`/metrics` embeds this as
/// `persistence` when a data directory is configured).
pub fn persist_json(p: &PersistSnapshot) -> Json {
    Json::obj([
        ("wal_gen", Json::from(p.wal_gen)),
        ("wal_appends", Json::from(p.wal_appends)),
        ("wal_bytes", Json::from(p.wal_bytes)),
        (
            "wal_records_since_checkpoint",
            Json::from(p.wal_records_since_checkpoint),
        ),
        ("fsync_batches", Json::from(p.fsync_batches)),
        ("fsync_records", Json::from(p.fsync_records)),
        (
            "fsync_latency_us",
            histogram_json(&FSYNC_BUCKETS_US, &p.fsync_latency_us),
        ),
        ("snapshots_written", Json::from(p.snapshots_written)),
        ("replayed_records", Json::from(p.replayed_records)),
        ("restored_sessions", Json::from(p.restored_sessions)),
        ("recovery_us", Json::from(p.recovery_us)),
    ])
}

/// Render a window snapshot (`/metrics` embeds this as `window`). All
/// integer-valued: rates milli-scaled, quantiles in µs (see
/// [`WindowSnapshot`]).
pub fn window_json(w: &WindowSnapshot) -> Json {
    Json::obj([
        ("seconds", Json::from(w.seconds)),
        ("requests", Json::from(w.requests)),
        ("errors", Json::from(w.errors)),
        ("rps_milli", Json::from(w.rps_milli)),
        ("error_rate_milli", Json::from(w.error_rate_milli)),
        ("p50_us", Json::from(w.p50_us)),
        ("p90_us", Json::from(w.p90_us)),
        ("p99_us", Json::from(w.p99_us)),
    ])
}

/// Render the occupied latency-bucket exemplars as
/// `[{le_us, trace_id, dur_us}, ...]` (`/metrics` embeds this as
/// `exemplars`; same `(trace, duration)` pairs the Prometheus rendering
/// annotates its bucket lines with).
fn exemplars_json(exemplars: &[Option<(String, u64)>]) -> Json {
    Json::Array(
        exemplars
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|(trace, dur)| (i, trace, dur)))
            .map(|(i, trace, &dur)| {
                let le = LATENCY_BUCKETS_US
                    .get(i)
                    .map_or_else(|| "inf".to_owned(), |b| b.to_string());
                Json::obj([
                    ("le_us", Json::from(le)),
                    ("trace_id", Json::from(trace.as_str())),
                    ("dur_us", Json::from(dur)),
                ])
            })
            .collect(),
    )
}

/// Render the vectorized-join counters (`/metrics` embeds this as `join`).
pub fn join_json(j: &JoinSnapshot) -> Json {
    Json::obj([
        ("batches", Json::from(j.batches)),
        ("rows_probed", Json::from(j.rows_probed)),
        ("index_probes", Json::from(j.index_probes)),
        ("hash_builds", Json::from(j.hash_builds)),
        ("hash_build_rows", Json::from(j.hash_build_rows)),
    ])
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            admission_queue_capacity: AtomicU64::new(0),
            admission_queue_depth: AtomicU64::new(0),
            admission_admitted: AtomicU64::new(0),
            admission_shed: AtomicU64::new(0),
            admission_timeouts: AtomicU64::new(0),
            admission_reaped: AtomicU64::new(0),
            admission_queue_wait: Default::default(),
            sessions_created: AtomicU64::new(0),
            sessions_deleted: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            one_routes_computed: AtomicU64::new(0),
            all_routes_computed: AtomicU64::new(0),
            forest_cache_hits: AtomicU64::new(0),
            forest_cache_misses: AtomicU64::new(0),
            edits_applied: AtomicU64::new(0),
            edits_rejected: AtomicU64::new(0),
            edit_ops_applied: AtomicU64::new(0),
            edit_forests_kept: AtomicU64::new(0),
            edit_forests_invalidated: AtomicU64::new(0),
            pipeline_sessions_created: AtomicU64::new(0),
            pipeline_stage_chases: AtomicU64::new(0),
            pipeline_core_runs: AtomicU64::new(0),
            pipeline_core_tuples_removed: AtomicU64::new(0),
            pipeline_stitched_routes: AtomicU64::new(0),
            pipeline_stitched_hops: AtomicU64::new(0),
            latency: Default::default(),
            phases: Default::default(),
            window: WindowRing::new(window_seconds_from_env()),
            exemplars: Default::default(),
        }
    }

    /// Seconds since this metrics instance (the serving process) started.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Count one handled request with its response status and latency.
    /// `trace`, when the tracer minted one, becomes the request's latency
    /// bucket exemplar if it is the slowest recent occupant.
    pub fn record_response(&self, status: u16, latency: Duration, trace: Option<&str>) {
        self.requests_total.fetch_add(1, Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = bucket_of(us);
        self.latency[bucket].fetch_add(1, Relaxed);
        self.window.record(status, us);
        if let Some(trace) = trace {
            // Never block the request path on a scrape holding the lock:
            // on contention the exemplar is simply not updated (the next
            // slow request in this bucket will be).
            if let Ok(mut slot) = self.exemplars[bucket].try_lock() {
                let replace = match slot.as_ref() {
                    None => true,
                    Some(e) => us >= e.dur_us || e.at.elapsed() > EXEMPLAR_TTL,
                };
                if replace {
                    *slot = Some(Exemplar {
                        trace: trace.to_owned(),
                        dur_us: us,
                        at: Instant::now(),
                    });
                }
            }
        }
    }

    /// Aggregated view over the rolling traffic window.
    pub fn window(&self) -> WindowSnapshot {
        self.window.snapshot()
    }

    /// Current latency-bucket exemplars: `(trace_id, dur_us)` per bucket
    /// (one entry per bound plus the unbounded tail), `None` where no
    /// traced request has landed yet.
    pub fn exemplars(&self) -> Vec<Option<(String, u64)>> {
        self.exemplars
            .iter()
            .map(|slot| {
                slot.lock()
                    .ok()
                    .and_then(|e| e.as_ref().map(|e| (e.trace.clone(), e.dur_us)))
            })
            .collect()
    }

    /// Record one sample of a work phase's wall time.
    pub fn record_phase(&self, phase: Phase, latency: Duration) {
        self.phases[phase as usize].record(latency);
    }

    /// Record how long a connection waited in the admission queue before a
    /// worker popped it.
    pub fn record_queue_wait(&self, wait: Duration) {
        let us = wait.as_micros().min(u128::from(u64::MAX)) as u64;
        self.admission_queue_wait[bucket_of(us)].fetch_add(1, Relaxed);
    }

    /// Snapshot of the queue-wait histogram (one count per latency bucket
    /// plus the unbounded tail).
    pub fn queue_wait_counts(&self) -> Vec<u64> {
        self.admission_queue_wait
            .iter()
            .map(|c| c.load(Relaxed))
            .collect()
    }

    /// The accounting of one phase (snapshot reads).
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        &self.phases[phase as usize]
    }

    /// [`Metrics::to_json`] plus the vectorized-join counter block, the
    /// sharded session-store counter block and, when durability is enabled,
    /// the `persistence` block (what `GET /metrics` actually serves). The
    /// join counters are process-wide ([`routes_model::joinstats`]); the
    /// caller passes an explicit snapshot so both renderings of one request
    /// agree and tests stay deterministic.
    pub fn to_json_with_store(
        &self,
        store: &StoreSnapshot,
        persist: Option<&PersistSnapshot>,
        join: &JoinSnapshot,
        threads: usize,
    ) -> Json {
        let mut snapshot = self.to_json(store.live(), threads);
        if let Json::Object(fields) = &mut snapshot {
            fields.push(("join".to_owned(), join_json(join)));
            fields.push(("session_store".to_owned(), store_json(store)));
            if let Some(persist) = persist {
                fields.push(("persistence".to_owned(), persist_json(persist)));
            }
        }
        snapshot
    }

    /// Render the snapshot served by `GET /metrics`. `threads` is the worker
    /// pool width used for parallel chase / forest construction.
    pub fn to_json(&self, live_sessions: usize, threads: usize) -> Json {
        let latency: Vec<u64> = self.latency.iter().map(|c| c.load(Relaxed)).collect();
        let hist = histogram_json(&LATENCY_BUCKETS_US, &latency);
        let phases = Json::Object(
            Phase::ALL
                .iter()
                .map(|&p| (p.name().to_owned(), self.phases[p as usize].to_json()))
                .collect(),
        );
        Json::obj([
            ("version", Json::from(env!("CARGO_PKG_VERSION"))),
            ("uptime_seconds", Json::from(self.uptime_seconds())),
            ("threads", Json::from(threads)),
            (
                "requests_total",
                Json::from(self.requests_total.load(Relaxed)),
            ),
            (
                "responses_2xx",
                Json::from(self.responses_2xx.load(Relaxed)),
            ),
            (
                "responses_4xx",
                Json::from(self.responses_4xx.load(Relaxed)),
            ),
            (
                "responses_5xx",
                Json::from(self.responses_5xx.load(Relaxed)),
            ),
            ("bad_requests", Json::from(self.bad_requests.load(Relaxed))),
            (
                "connections_accepted",
                Json::from(self.connections_accepted.load(Relaxed)),
            ),
            ("live_sessions", Json::from(live_sessions)),
            (
                "sessions_created",
                Json::from(self.sessions_created.load(Relaxed)),
            ),
            (
                "sessions_deleted",
                Json::from(self.sessions_deleted.load(Relaxed)),
            ),
            (
                "sessions_evicted",
                Json::from(self.sessions_evicted.load(Relaxed)),
            ),
            (
                "one_routes_computed",
                Json::from(self.one_routes_computed.load(Relaxed)),
            ),
            (
                "all_routes_computed",
                Json::from(self.all_routes_computed.load(Relaxed)),
            ),
            (
                "forest_cache_hits",
                Json::from(self.forest_cache_hits.load(Relaxed)),
            ),
            (
                "forest_cache_misses",
                Json::from(self.forest_cache_misses.load(Relaxed)),
            ),
            (
                "edits",
                Json::obj([
                    ("applied", Json::from(self.edits_applied.load(Relaxed))),
                    ("rejected", Json::from(self.edits_rejected.load(Relaxed))),
                    (
                        "ops_applied",
                        Json::from(self.edit_ops_applied.load(Relaxed)),
                    ),
                    (
                        "forests_kept",
                        Json::from(self.edit_forests_kept.load(Relaxed)),
                    ),
                    (
                        "forests_invalidated",
                        Json::from(self.edit_forests_invalidated.load(Relaxed)),
                    ),
                ]),
            ),
            (
                "pipeline",
                Json::obj([
                    (
                        "sessions_created",
                        Json::from(self.pipeline_sessions_created.load(Relaxed)),
                    ),
                    (
                        "stage_chases",
                        Json::from(self.pipeline_stage_chases.load(Relaxed)),
                    ),
                    (
                        "core_runs",
                        Json::from(self.pipeline_core_runs.load(Relaxed)),
                    ),
                    (
                        "core_tuples_removed",
                        Json::from(self.pipeline_core_tuples_removed.load(Relaxed)),
                    ),
                    (
                        "stitched_routes",
                        Json::from(self.pipeline_stitched_routes.load(Relaxed)),
                    ),
                    (
                        "stitched_hops",
                        Json::from(self.pipeline_stitched_hops.load(Relaxed)),
                    ),
                ]),
            ),
            (
                "admission",
                Json::obj([
                    (
                        "queue_capacity",
                        Json::from(self.admission_queue_capacity.load(Relaxed)),
                    ),
                    (
                        "queue_depth",
                        Json::from(self.admission_queue_depth.load(Relaxed)),
                    ),
                    (
                        "admitted",
                        Json::from(self.admission_admitted.load(Relaxed)),
                    ),
                    ("shed", Json::from(self.admission_shed.load(Relaxed))),
                    (
                        "timeouts",
                        Json::from(self.admission_timeouts.load(Relaxed)),
                    ),
                    ("reaped", Json::from(self.admission_reaped.load(Relaxed))),
                    (
                        "queue_wait_us",
                        histogram_json(&LATENCY_BUCKETS_US, &self.queue_wait_counts()),
                    ),
                ]),
            ),
            ("latency_us", hist),
            ("exemplars", exemplars_json(&self.exemplars())),
            ("window", window_json(&self.window())),
            ("phases", phases),
        ])
    }

    /// Render the same snapshot [`Metrics::to_json_with_store`] serves, in
    /// Prometheus text exposition format. Every JSON counter, gauge, and
    /// histogram has a named (and, for shards and phases, labeled) family
    /// here; the reconciliation test in `tests/prometheus.rs` holds the two
    /// renderings equal field for field.
    pub fn to_prometheus(
        &self,
        store: &StoreSnapshot,
        persist: Option<&PersistSnapshot>,
        join: &JoinSnapshot,
        threads: usize,
    ) -> String {
        use routes_obs::PromText;
        let mut w = PromText::new();

        w.family(
            "routes_build_info",
            "gauge",
            "Build metadata; the value is always 1.",
        );
        w.sample(
            "routes_build_info",
            &[("version", env!("CARGO_PKG_VERSION"))],
            1,
        );
        w.family(
            "routes_uptime_seconds",
            "gauge",
            "Seconds since the serving process started.",
        );
        w.sample("routes_uptime_seconds", &[], self.uptime_seconds());
        w.family(
            "routes_threads",
            "gauge",
            "Worker pool width for parallel chase and forest construction.",
        );
        w.sample("routes_threads", &[], threads as u64);

        w.family(
            "routes_requests_total",
            "counter",
            "Requests handled (any status).",
        );
        w.sample(
            "routes_requests_total",
            &[],
            self.requests_total.load(Relaxed),
        );
        w.family(
            "routes_responses_total",
            "counter",
            "Responses by status class.",
        );
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            w.sample(
                "routes_responses_total",
                &[("class", class)],
                counter.load(Relaxed),
            );
        }
        w.family(
            "routes_bad_requests_total",
            "counter",
            "Requests rejected before dispatch (parse errors, limits).",
        );
        w.sample(
            "routes_bad_requests_total",
            &[],
            self.bad_requests.load(Relaxed),
        );
        w.family(
            "routes_connections_accepted_total",
            "counter",
            "TCP connections accepted.",
        );
        w.sample(
            "routes_connections_accepted_total",
            &[],
            self.connections_accepted.load(Relaxed),
        );

        w.family(
            "routes_admission_queue_capacity",
            "gauge",
            "Bound of the acceptor's connection queue (--max-queue).",
        );
        w.sample(
            "routes_admission_queue_capacity",
            &[],
            self.admission_queue_capacity.load(Relaxed),
        );
        w.family(
            "routes_admission_queue_depth",
            "gauge",
            "Connections currently waiting in the admission queue.",
        );
        w.sample(
            "routes_admission_queue_depth",
            &[],
            self.admission_queue_depth.load(Relaxed),
        );
        for (name, help, counter) in [
            (
                "routes_admission_admitted_total",
                "Connections admitted into the acceptor's queue.",
                &self.admission_admitted,
            ),
            (
                "routes_admission_shed_total",
                "Connections shed at the door with 429 Too Many Requests.",
                &self.admission_shed,
            ),
            (
                "routes_admission_timeouts_total",
                "Requests answered 408 after the request deadline expired.",
                &self.admission_timeouts,
            ),
            (
                "routes_admission_reaped_total",
                "Connections force-closed by a deadline (stalled readers/writers).",
                &self.admission_reaped,
            ),
        ] {
            w.family(name, "counter", help);
            w.sample(name, &[], counter.load(Relaxed));
        }
        w.family(
            "routes_admission_queue_wait_us",
            "histogram",
            "Time connections spent queued before a worker popped them, in microseconds.",
        );
        w.histogram(
            "routes_admission_queue_wait_us",
            &[],
            &LATENCY_BUCKETS_US,
            &self.queue_wait_counts(),
            None,
        );

        w.family(
            "routes_live_sessions",
            "gauge",
            "Sessions currently resident in the store.",
        );
        w.sample("routes_live_sessions", &[], store.live() as u64);
        for (name, help, counter) in [
            (
                "routes_sessions_created_total",
                "Sessions created.",
                &self.sessions_created,
            ),
            (
                "routes_sessions_deleted_total",
                "Sessions deleted by clients.",
                &self.sessions_deleted,
            ),
            (
                "routes_sessions_evicted_total",
                "Sessions evicted at capacity.",
                &self.sessions_evicted,
            ),
            (
                "routes_one_routes_computed_total",
                "ComputeOneRoute invocations.",
                &self.one_routes_computed,
            ),
            (
                "routes_all_routes_computed_total",
                "ComputeAllRoutes invocations.",
                &self.all_routes_computed,
            ),
            (
                "routes_forest_cache_hits_total",
                "Route-forest memo hits.",
                &self.forest_cache_hits,
            ),
            (
                "routes_forest_cache_misses_total",
                "Route-forest memo misses (forest built).",
                &self.forest_cache_misses,
            ),
            (
                "routes_edits_applied_total",
                "Edit batches applied.",
                &self.edits_applied,
            ),
            (
                "routes_edits_rejected_total",
                "Edit batches rejected by validation.",
                &self.edits_rejected,
            ),
            (
                "routes_edit_ops_applied_total",
                "Individual edit ops applied (across batches).",
                &self.edit_ops_applied,
            ),
            (
                "routes_edit_forests_kept_total",
                "Cached route forests surviving an edit batch.",
                &self.edit_forests_kept,
            ),
            (
                "routes_edit_forests_invalidated_total",
                "Cached route forests invalidated by an edit batch.",
                &self.edit_forests_invalidated,
            ),
        ] {
            w.family(name, "counter", help);
            w.sample(name, &[], counter.load(Relaxed));
        }

        for (name, help, counter) in [
            (
                "routes_pipeline_sessions_created_total",
                "Multi-stage pipeline sessions created.",
                &self.pipeline_sessions_created,
            ),
            (
                "routes_pipeline_stage_chases_total",
                "Stage chases run while creating pipeline sessions.",
                &self.pipeline_stage_chases,
            ),
            (
                "routes_pipeline_core_runs_total",
                "Core minimization passes run on chased stage instances.",
                &self.pipeline_core_runs,
            ),
            (
                "routes_pipeline_core_tuples_removed_total",
                "Tuples removed by core minimization.",
                &self.pipeline_core_tuples_removed,
            ),
            (
                "routes_pipeline_stitched_routes_total",
                "Stitched end-to-end routes answered.",
                &self.pipeline_stitched_routes,
            ),
            (
                "routes_pipeline_stitched_hops_total",
                "Per-hop routes inside answered stitched routes.",
                &self.pipeline_stitched_hops,
            ),
        ] {
            w.family(name, "counter", help);
            w.sample(name, &[], counter.load(Relaxed));
        }

        for (name, help, value) in [
            (
                "routes_join_batches_total",
                "Binding batches pushed through the vectorized join executor.",
                join.batches,
            ),
            (
                "routes_join_rows_probed_total",
                "Candidate rows examined while extending binding batches.",
                join.rows_probed,
            ),
            (
                "routes_join_index_probes_total",
                "Hash-index probe operations issued by the batch executor.",
                join.index_probes,
            ),
            (
                "routes_join_hash_builds_total",
                "Hash-index builds, including incremental catch-ups.",
                join.hash_builds,
            ),
            (
                "routes_join_hash_build_rows_total",
                "Rows inserted into hash indexes by builds and catch-ups.",
                join.hash_build_rows,
            ),
        ] {
            w.family(name, "counter", help);
            w.sample(name, &[], value);
        }

        let latency: Vec<u64> = self.latency.iter().map(|c| c.load(Relaxed)).collect();
        w.family(
            "routes_request_latency_us",
            "histogram",
            "Whole-request latency in microseconds.",
        );
        w.histogram_with_exemplars(
            "routes_request_latency_us",
            &[],
            &LATENCY_BUCKETS_US,
            &latency,
            None,
            &self.exemplars(),
        );

        let window = self.window();
        for (name, help, value) in [
            (
                "routes_window_seconds",
                "Length of the rolling traffic window, in seconds.",
                window.seconds as u64,
            ),
            (
                "routes_window_requests",
                "Requests recorded in the rolling window.",
                window.requests,
            ),
            (
                "routes_window_errors",
                "5xx responses recorded in the rolling window.",
                window.errors,
            ),
            (
                "routes_window_rps_milli",
                "Requests per second over the window, times 1000.",
                window.rps_milli,
            ),
            (
                "routes_window_error_rate_milli",
                "Errors per request over the window, times 1000.",
                window.error_rate_milli,
            ),
            (
                "routes_window_latency_p50_us",
                "Interpolated p50 request latency over the window, in microseconds.",
                window.p50_us,
            ),
            (
                "routes_window_latency_p90_us",
                "Interpolated p90 request latency over the window, in microseconds.",
                window.p90_us,
            ),
            (
                "routes_window_latency_p99_us",
                "Interpolated p99 request latency over the window, in microseconds.",
                window.p99_us,
            ),
        ] {
            w.family(name, "gauge", help);
            w.sample(name, &[], value);
        }
        w.family(
            "routes_phase_latency_us",
            "histogram",
            "Per-phase wall time in microseconds (chase, forest, route, print, edit).",
        );
        for p in Phase::ALL {
            let stats = &self.phases[p as usize];
            w.histogram(
                "routes_phase_latency_us",
                &[("phase", p.name())],
                &LATENCY_BUCKETS_US,
                &stats.latency_counts(),
                Some(stats.total_us.load(Relaxed)),
            );
        }

        w.family(
            "routes_session_store_capacity",
            "gauge",
            "Session-store capacity (sessions).",
        );
        w.sample("routes_session_store_capacity", &[], store.capacity as u64);
        w.family(
            "routes_session_store_shards",
            "gauge",
            "Session-store shard count.",
        );
        w.sample(
            "routes_session_store_shards",
            &[],
            store.shards.len() as u64,
        );
        for (name, help, value) in [
            (
                "routes_session_store_hits_total",
                "Store-wide lookup hits.",
                store.hits(),
            ),
            (
                "routes_session_store_misses_total",
                "Store-wide lookup misses.",
                store.misses(),
            ),
            (
                "routes_session_store_inserts_total",
                "Store-wide inserts.",
                store.inserts(),
            ),
            (
                "routes_session_store_removes_total",
                "Store-wide removes.",
                store.removes(),
            ),
            (
                "routes_session_store_evictions_total",
                "Store-wide evictions.",
                store.evictions(),
            ),
            (
                "routes_session_store_evict_scan_steps_total",
                "Entries examined while hunting eviction victims.",
                store.evict_scan_steps(),
            ),
            (
                "routes_session_store_write_locks_total",
                "Store-wide shard write-lock acquisitions.",
                store.write_locks(),
            ),
        ] {
            w.family(name, "counter", help);
            w.sample(name, &[], value);
        }

        w.family(
            "routes_session_shard_sessions",
            "gauge",
            "Sessions resident per shard.",
        );
        let shard_labels: Vec<String> = (0..store.shards.len()).map(|i| i.to_string()).collect();
        for (i, shard) in store.shards.iter().enumerate() {
            w.sample(
                "routes_session_shard_sessions",
                &[("shard", &shard_labels[i])],
                shard.sessions as u64,
            );
        }
        w.family(
            "routes_session_shard_capacity",
            "gauge",
            "Per-shard session capacity.",
        );
        for (i, shard) in store.shards.iter().enumerate() {
            w.sample(
                "routes_session_shard_capacity",
                &[("shard", &shard_labels[i])],
                shard.capacity as u64,
            );
        }
        type ShardField = fn(&ShardSnapshot) -> u64;
        let shard_counters: [(&str, &str, ShardField); 8] = [
            (
                "routes_session_shard_hits_total",
                "Per-shard lookup hits.",
                |s| s.hits,
            ),
            (
                "routes_session_shard_misses_total",
                "Per-shard lookup misses.",
                |s| s.misses,
            ),
            (
                "routes_session_shard_inserts_total",
                "Per-shard inserts.",
                |s| s.inserts,
            ),
            (
                "routes_session_shard_removes_total",
                "Per-shard removes.",
                |s| s.removes,
            ),
            (
                "routes_session_shard_evictions_total",
                "Per-shard evictions.",
                |s| s.evictions,
            ),
            (
                "routes_session_shard_demotions_total",
                "Segmented-LRU demotions from protected to probation.",
                |s| s.demotions,
            ),
            (
                "routes_session_shard_evict_scan_steps_total",
                "Per-shard entries examined while hunting eviction victims.",
                |s| s.evict_scan_steps,
            ),
            (
                "routes_session_shard_write_locks_total",
                "Per-shard write-lock acquisitions.",
                |s| s.write_locks,
            ),
        ];
        for (name, help, field) in shard_counters {
            w.family(name, "counter", help);
            for (i, shard) in store.shards.iter().enumerate() {
                w.sample(name, &[("shard", &shard_labels[i])], field(shard));
            }
        }
        w.family(
            "routes_session_shard_lock_wait_us",
            "histogram",
            "Shard lock-acquisition wait in microseconds, by shard and mode.",
        );
        for (i, shard) in store.shards.iter().enumerate() {
            for (mode, counts) in [
                ("read", &shard.lock_wait_read_us),
                ("write", &shard.lock_wait_write_us),
            ] {
                w.histogram(
                    "routes_session_shard_lock_wait_us",
                    &[("shard", &shard_labels[i]), ("mode", mode)],
                    &LOCK_WAIT_BUCKETS_US,
                    counts,
                    None,
                );
            }
        }

        if let Some(p) = persist {
            w.family(
                "routes_wal_generation",
                "gauge",
                "Current WAL generation number.",
            );
            w.sample("routes_wal_generation", &[], p.wal_gen);
            for (name, help, value) in [
                (
                    "routes_wal_appends_total",
                    "WAL records appended.",
                    p.wal_appends,
                ),
                ("routes_wal_bytes_total", "WAL bytes written.", p.wal_bytes),
                (
                    "routes_fsync_batches_total",
                    "Group-commit fsync batches.",
                    p.fsync_batches,
                ),
                (
                    "routes_fsync_records_total",
                    "WAL records made durable by fsync batches.",
                    p.fsync_records,
                ),
                (
                    "routes_snapshots_written_total",
                    "Checkpoint snapshots written.",
                    p.snapshots_written,
                ),
            ] {
                w.family(name, "counter", help);
                w.sample(name, &[], value);
            }
            w.family(
                "routes_wal_records_since_checkpoint",
                "gauge",
                "WAL records appended since the last checkpoint.",
            );
            w.sample(
                "routes_wal_records_since_checkpoint",
                &[],
                p.wal_records_since_checkpoint,
            );
            w.family(
                "routes_fsync_latency_us",
                "histogram",
                "Group-commit fsync latency in microseconds.",
            );
            w.histogram(
                "routes_fsync_latency_us",
                &[],
                &FSYNC_BUCKETS_US,
                &p.fsync_latency_us,
                None,
            );
            w.family(
                "routes_wal_replayed_records",
                "gauge",
                "WAL records replayed during the last recovery.",
            );
            w.sample("routes_wal_replayed_records", &[], p.replayed_records);
            w.family(
                "routes_wal_restored_sessions",
                "gauge",
                "Sessions restored during the last recovery.",
            );
            w.sample("routes_wal_restored_sessions", &[], p.restored_sessions);
            w.family(
                "routes_recovery_us",
                "gauge",
                "Wall time of the last recovery in microseconds.",
            );
            w.sample("routes_recovery_us", &[], p.recovery_us);
        }

        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_land_in_class_and_latency_buckets() {
        let m = Metrics::new();
        m.record_response(200, Duration::from_micros(50), None);
        m.record_response(201, Duration::from_micros(400), None);
        m.record_response(404, Duration::from_millis(2), None);
        m.record_response(500, Duration::from_secs(5), None);
        assert_eq!(m.requests_total.load(Relaxed), 4);
        assert_eq!(m.responses_2xx.load(Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Relaxed), 1);
        assert_eq!(m.responses_5xx.load(Relaxed), 1);
        let snapshot = m.to_json(3, 2);
        assert_eq!(
            snapshot.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION")),
            "the crate version leads the snapshot"
        );
        assert!(snapshot.get("uptime_seconds").unwrap().as_u64().is_some());
        assert_eq!(snapshot.get("requests_total").unwrap().as_u64(), Some(4));
        assert_eq!(snapshot.get("live_sessions").unwrap().as_u64(), Some(3));
        assert_eq!(snapshot.get("threads").unwrap().as_u64(), Some(2));
        let hist = snapshot.get("latency_us").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), LATENCY_BUCKETS_US.len() + 1);
        let total: u64 = hist
            .iter()
            .map(|b| b.get("count").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total, 4);
        // The 5 s response falls in the unbounded bucket.
        assert_eq!(hist.last().unwrap().get("count").unwrap().as_u64(), Some(1));
        // The rolling window saw the same four requests, one of them 5xx.
        let window = snapshot.get("window").unwrap();
        assert_eq!(window.get("requests").unwrap().as_u64(), Some(4));
        assert_eq!(window.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(window.get("error_rate_milli").unwrap().as_u64(), Some(250));
        // No traced request yet: the exemplar list is empty.
        let exemplars = snapshot.get("exemplars").unwrap().as_array().unwrap();
        assert!(exemplars.is_empty());
    }

    #[test]
    fn traced_requests_become_bucket_exemplars() {
        let m = Metrics::new();
        m.record_response(200, Duration::from_micros(40), Some("fast"));
        // Slower occupant of the same bucket replaces the exemplar…
        m.record_response(200, Duration::from_micros(80), Some("slow"));
        // …a faster one does not.
        m.record_response(200, Duration::from_micros(60), Some("mid"));
        // A different bucket keeps its own exemplar.
        m.record_response(500, Duration::from_micros(300), Some("err"));
        let exemplars = m.exemplars();
        assert_eq!(exemplars[0], Some(("slow".to_owned(), 80)));
        assert_eq!(exemplars[1], Some(("err".to_owned(), 300)));
        assert!(exemplars[2..].iter().all(|e| e.is_none()));
        let json = m.to_json(0, 1);
        let rendered = json.get("exemplars").unwrap().as_array().unwrap();
        assert_eq!(rendered.len(), 2);
        assert_eq!(rendered[0].get("trace_id").unwrap().as_str(), Some("slow"));
        assert_eq!(rendered[0].get("le_us").unwrap().as_str(), Some("100"));
        assert_eq!(rendered[0].get("dur_us").unwrap().as_u64(), Some(80));
    }

    #[test]
    fn empty_window_renders_zero_gauges_at_boot() {
        use crate::session::SessionStore;

        let m = Metrics::new();
        let store = SessionStore::with_shards(1, 1);
        let text = m.to_prometheus(&store.snapshot(), None, &JoinSnapshot::default(), 1);
        for gauge in [
            "routes_window_requests 0",
            "routes_window_errors 0",
            "routes_window_rps_milli 0",
            "routes_window_error_rate_milli 0",
            "routes_window_latency_p50_us 0",
            "routes_window_latency_p90_us 0",
            "routes_window_latency_p99_us 0",
        ] {
            assert!(text.contains(gauge), "missing `{gauge}` in:\n{text}");
        }
        assert!(text.contains(&format!(
            "routes_window_seconds {}",
            crate::window::DEFAULT_WINDOW_SECONDS
        )));
    }

    #[test]
    fn prometheus_buckets_carry_the_exemplar_annotation() {
        use crate::session::SessionStore;

        let m = Metrics::new();
        m.record_response(200, Duration::from_micros(70), Some("abc123"));
        let store = SessionStore::with_shards(1, 1);
        let text = m.to_prometheus(&store.snapshot(), None, &JoinSnapshot::default(), 1);
        assert!(
            text.contains(
                "routes_request_latency_us_bucket{le=\"100\"} 1 # {trace_id=\"abc123\"} 70"
            ),
            "exemplar annotation missing in:\n{text}"
        );
    }

    #[test]
    fn store_snapshot_renders_totals_shards_and_lock_wait_histograms() {
        use crate::session::SessionStore;
        use routes_chase::ChaseOptions;
        use routes_cli::{load_scenario_str, prepare_scenario};
        use routes_pool::Pool;

        let text = "source schema:\n  S(a)\ntarget schema:\n  T(a)\n\
                    dependencies:\n  m: S(x) -> T(x)\nsource data:\n  S(1)\n";
        let scenario =
            || prepare_scenario(load_scenario_str(text).unwrap(), ChaseOptions::fresh()).unwrap();
        let store = SessionStore::with_shards(4, 2);
        let workers = Pool::sequential();
        let (a, _) = store.insert(scenario(), &workers);
        let (b, _) = store.insert(scenario(), &workers);
        for _ in 0..3 {
            assert!(store.get(a).is_found());
        }
        assert!(store.get(b).is_found());
        assert!(!store.get(999).is_found());

        let snap = store.snapshot();
        let m = Metrics::new();
        let json = m.to_json_with_store(&snap, None, &JoinSnapshot::default(), 1);
        assert!(
            json.get("persistence").is_none(),
            "no persistence block without a data dir"
        );
        assert_eq!(json.get("live_sessions").unwrap().as_u64(), Some(2));
        let sj = json.get("session_store").unwrap();
        assert_eq!(sj.get("shard_count").unwrap().as_u64(), Some(2));
        assert_eq!(sj.get("capacity").unwrap().as_u64(), Some(4));
        assert_eq!(sj.get("hits").unwrap().as_u64(), Some(4));
        assert_eq!(sj.get("misses").unwrap().as_u64(), Some(1));
        let shards = sj.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 2);
        let bucket_total = |hist: &Json| -> u64 {
            hist.as_array()
                .unwrap()
                .iter()
                .map(|b| b.get("count").unwrap().as_u64().unwrap())
                .sum()
        };
        // Every lock acquisition lands in exactly one wait bucket: reads
        // are the five lookups, writes match the write_locks counter.
        let read_waits: u64 = shards
            .iter()
            .map(|s| bucket_total(s.get("lock_wait_read_us").unwrap()))
            .sum();
        let write_waits: u64 = shards
            .iter()
            .map(|s| bucket_total(s.get("lock_wait_write_us").unwrap()))
            .sum();
        assert_eq!(read_waits, 5);
        assert_eq!(write_waits, snap.write_locks());
        assert!(snap.write_locks() >= 2, "two inserts write-locked");
    }

    #[test]
    fn persistence_block_renders_counters_and_fsync_histogram() {
        use crate::session::SessionStore;

        let p = PersistSnapshot {
            wal_gen: 2,
            wal_appends: 7,
            fsync_latency_us: {
                let mut h = vec![0; FSYNC_BUCKETS_US.len() + 1];
                h[0] = 3;
                h
            },
            ..PersistSnapshot::default()
        };
        let m = Metrics::new();
        let store = SessionStore::with_shards(1, 1);
        let json = m.to_json_with_store(&store.snapshot(), Some(&p), &JoinSnapshot::default(), 1);
        let pj = json.get("persistence").unwrap();
        assert_eq!(pj.get("wal_gen").unwrap().as_u64(), Some(2));
        assert_eq!(pj.get("wal_appends").unwrap().as_u64(), Some(7));
        let hist = pj.get("fsync_latency_us").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), FSYNC_BUCKETS_US.len() + 1);
        assert_eq!(hist[0].get("count").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn join_block_renders_the_batch_executor_counters() {
        use crate::session::SessionStore;

        let j = JoinSnapshot {
            batches: 5,
            rows_probed: 40,
            index_probes: 12,
            hash_builds: 3,
            hash_build_rows: 30,
        };
        let m = Metrics::new();
        let store = SessionStore::with_shards(1, 1);
        let json = m.to_json_with_store(&store.snapshot(), None, &j, 1);
        let jj = json.get("join").unwrap();
        assert_eq!(jj.get("batches").unwrap().as_u64(), Some(5));
        assert_eq!(jj.get("rows_probed").unwrap().as_u64(), Some(40));
        assert_eq!(jj.get("index_probes").unwrap().as_u64(), Some(12));
        assert_eq!(jj.get("hash_builds").unwrap().as_u64(), Some(3));
        assert_eq!(jj.get("hash_build_rows").unwrap().as_u64(), Some(30));
        let text = m.to_prometheus(&store.snapshot(), None, &j, 1);
        assert!(text.contains("routes_join_batches_total 5"));
        assert!(text.contains("routes_join_rows_probed_total 40"));
        assert!(text.contains("routes_join_hash_build_rows_total 30"));
    }

    #[test]
    fn phase_samples_accumulate_count_total_and_histogram() {
        let m = Metrics::new();
        m.record_phase(Phase::Chase, Duration::from_micros(90));
        m.record_phase(Phase::Chase, Duration::from_micros(400));
        m.record_phase(Phase::Forest, Duration::from_millis(2));
        assert_eq!(m.phase(Phase::Chase).count.load(Relaxed), 2);
        assert_eq!(m.phase(Phase::Chase).total_us.load(Relaxed), 490);
        assert_eq!(m.phase(Phase::Route).count.load(Relaxed), 0);
        let snapshot = m.to_json(0, 1);
        let phases = snapshot.get("phases").unwrap();
        for p in Phase::ALL {
            let entry = phases.get(p.name()).unwrap();
            let hist_total: u64 = entry
                .get("latency_us")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|b| b.get("count").unwrap().as_u64().unwrap())
                .sum();
            assert_eq!(Some(hist_total), entry.get("count").unwrap().as_u64());
        }
        assert_eq!(
            phases.get("forest").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }
}
