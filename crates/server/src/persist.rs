//! Durability coordination: the bridge between the live [`SessionStore`]
//! and the `routes-store` crate's WAL, snapshots, and recovery.
//!
//! Enabled by `--data-dir` (or `ROUTES_DATA_DIR`); without it the service
//! is purely in-memory and this module is never constructed.
//!
//! ## Write path
//!
//! Handlers mutate the store **first** and append the matching WAL record
//! **second**. That order, combined with the checkpoint holding the WAL
//! rotation lock while it images the store, yields the invariant recovery
//! depends on: every mutation lands either in the snapshot or in the
//! generation replayed on top of it. (A record can land in *both* — a
//! mutation imaged by the checkpoint whose append then goes to the new
//! generation — which is why every replay operation is idempotent.)
//!
//! Durability classes follow the answer they protect: creates, deletes,
//! and evictions are [`Durability::Synced`] (the 201/404/410 the client
//! saw must survive a crash), touches and forest memos are
//! [`Durability::Buffered`] (losing a crash-tail of recency stamps costs
//! at most a different future eviction, never an answer).
//!
//! ## Recovery
//!
//! [`Persistence::open`] replays snapshot-then-log into the store through
//! the live session code paths (`restore_state` + `replay_records`), then
//! immediately checkpoints: the replayed log — including any damaged tail
//! the frame reader stopped at — is compacted away, so a crash loop
//! cannot re-read corrupt bytes twice.

use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use routes_chase::ChaseOptions;
use routes_cli::{
    is_pipeline_scenario, load_pipeline_str, load_scenario_str, prepare_pipeline,
    prepare_scenario_with,
};
use routes_pool::Pool;
use routes_store::{ChaseMode, Durability, PersistMetrics, Record, StoreDir, Wal};

use crate::session::{PreparedSession, SessionStore};

/// Environment variable naming the data directory (`--data-dir` wins).
pub const DATA_DIR_ENV: &str = "ROUTES_DATA_DIR";

/// Environment variable overriding the checkpoint threshold: a
/// maintenance tick checkpoints once this many records accumulate in the
/// live WAL generation.
pub const CHECKPOINT_RECORDS_ENV: &str = "ROUTES_WAL_CHECKPOINT_RECORDS";

/// Default checkpoint threshold. High enough that short-lived test
/// servers stay on the pure WAL-replay path (the interesting one), low
/// enough that a busy day of debugging compacts.
pub const DEFAULT_CHECKPOINT_RECORDS: u64 = 4096;

/// What boot recovery restored; `spiderd` prints this one-liner.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Sessions live in the store after snapshot restore + WAL replay.
    pub restored_sessions: usize,
    /// WAL records accepted and re-applied.
    pub replayed_records: usize,
    /// The `routes-store` recovery summary (snapshot / generation / stop).
    pub summary: String,
}

/// The live persistence state: the data directory and the current WAL
/// generation, plus the shared counters `/metrics` renders.
pub struct Persistence {
    dir: StoreDir,
    /// Read lock to append (the [`Wal`] is internally synchronized),
    /// write lock to rotate generations at a checkpoint.
    wal: RwLock<Wal>,
    pub metrics: Arc<PersistMetrics>,
    checkpoint_records: u64,
}

/// Re-prepare a persisted `(text, chase-mode)` pair: the deterministic
/// chase reproduces the solution `J` exactly, so nothing else was stored.
/// Pipeline scenarios re-chase the full stage chain (core mode rides in
/// the text's `pipeline:` section, so no extra codec state is needed).
/// `None` (text no longer loads/chases — impossible without version skew)
/// drops the session rather than failing recovery.
fn reprepare(text: &str, chase: ChaseMode, pool: &Pool) -> Option<PreparedSession> {
    let options = match chase {
        ChaseMode::Fresh => ChaseOptions::fresh(),
        ChaseMode::Skolem => ChaseOptions::skolem(),
    };
    if is_pipeline_scenario(text) {
        let loaded = load_pipeline_str(text).ok()?;
        let (scenario, pipeline) = prepare_pipeline(loaded, options, pool).ok()?;
        return Some((scenario, Some(Arc::new(pipeline))));
    }
    let loaded = load_scenario_str(text).ok()?;
    let scenario = prepare_scenario_with(loaded, options, pool).ok()?;
    Some((scenario, None))
}

impl Persistence {
    /// Open (creating if needed) the data directory, recover its contents
    /// into `store`, and checkpoint. Returns the live persistence handle
    /// and a report of what recovery found.
    pub fn open(
        dir: impl Into<PathBuf>,
        store: &SessionStore,
        pool: &Pool,
    ) -> std::io::Result<(Persistence, RecoveryReport)> {
        let started = Instant::now();
        let metrics = Arc::new(PersistMetrics::new());
        let dir = StoreDir::open(dir)?;
        let recovery = dir.recover()?;
        let prep = |text: &str, chase: ChaseMode| reprepare(text, chase, pool);
        store.restore_state(&recovery.state, pool, &prep);
        store.replay_records(&recovery.records, pool, &prep);
        let report = RecoveryReport {
            restored_sessions: store.len(),
            replayed_records: recovery.records.len(),
            summary: recovery.summary(),
        };
        // Compact immediately: the new snapshot supersedes the replayed
        // log, truncating any damaged tail out of existence.
        let state = store.persist_state(pool);
        let wal = dir.checkpoint(&state, recovery.wal_gen + 1, Arc::clone(&metrics))?;
        metrics
            .replayed_records
            .store(report.replayed_records as u64, Relaxed);
        metrics
            .restored_sessions
            .store(report.restored_sessions as u64, Relaxed);
        metrics.recovery_us.store(
            started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            Relaxed,
        );
        Ok((
            Persistence {
                dir,
                wal: RwLock::new(wal),
                metrics,
                checkpoint_records: checkpoint_records_from_env(),
            },
            report,
        ))
    }

    /// Append one record at the given durability class.
    pub fn append(&self, record: &Record, durability: Durability) -> std::io::Result<()> {
        self.read_wal().append(record, durability).map(|_| ())
    }

    /// Durably flush everything buffered. Graceful shutdown calls this
    /// (and only this — no checkpoint, so the next boot exercises replay).
    pub fn flush(&self) -> std::io::Result<()> {
        self.read_wal().flush()
    }

    /// One maintenance tick: flush buffered records, then checkpoint if
    /// the live generation has grown past the threshold.
    pub fn maintain(&self, store: &SessionStore, pool: &Pool) -> std::io::Result<()> {
        self.flush()?;
        if self.metrics.wal_records_since_checkpoint.load(Relaxed) >= self.checkpoint_records {
            self.checkpoint(store, pool)?;
        }
        Ok(())
    }

    /// Snapshot the store and rotate to a fresh WAL generation. The write
    /// lock is held across both: no append can slip between the image and
    /// the rotation, so the "snapshot or new generation" invariant holds.
    pub fn checkpoint(&self, store: &SessionStore, pool: &Pool) -> std::io::Result<()> {
        let mut wal = self.wal.write().unwrap_or_else(|e| e.into_inner());
        let state = store.persist_state(pool);
        let new_gen = self.metrics.wal_gen.load(Relaxed) + 1;
        *wal = self
            .dir
            .checkpoint(&state, new_gen, Arc::clone(&self.metrics))?;
        Ok(())
    }

    /// The data directory (tests poke its files directly).
    pub fn dir(&self) -> &StoreDir {
        &self.dir
    }

    fn read_wal(&self) -> std::sync::RwLockReadGuard<'_, Wal> {
        self.wal.read().unwrap_or_else(|e| e.into_inner())
    }
}

fn checkpoint_records_from_env() -> u64 {
    std::env::var(CHECKPOINT_RECORDS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CHECKPOINT_RECORDS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_store::testutil::TempDir;

    fn pool() -> Pool {
        Pool::sequential()
    }

    const SCENARIO: &str = "source schema:\n  S(a)\ntarget schema:\n  T(a)\n\
                            dependencies:\n  m: S(x) -> T(x)\nsource data:\n  S(1)\n  S(2)\n";

    #[test]
    fn mutations_survive_a_restart_through_wal_replay() {
        let tmp = TempDir::new("persist-roundtrip");
        let workers = pool();
        // First life: create two sessions, touch one, delete the other.
        {
            let store = SessionStore::with_shards(8, 2);
            let (persist, report) = Persistence::open(tmp.path(), &store, &workers).expect("open");
            assert_eq!(report.restored_sessions, 0);
            let (prepared, _) = reprepare(SCENARIO, ChaseMode::Fresh, &workers).expect("prepare");
            let origin = crate::session::SessionOrigin {
                chase: ChaseMode::Fresh,
                text: Arc::from(SCENARIO),
            };
            let (a, _) = store.insert_with_origin(prepared.clone(), origin.clone(), &workers);
            let (b, _) = store.insert_with_origin(prepared, origin, &workers);
            for (id, chase) in [(a, ChaseMode::Fresh), (b, ChaseMode::Fresh)] {
                persist
                    .append(
                        &Record::Create {
                            id,
                            chase,
                            scenario: SCENARIO.to_owned(),
                        },
                        Durability::Synced,
                    )
                    .expect("append create");
            }
            assert!(store.get(a).is_found());
            persist
                .append(&Record::Touch { id: a }, Durability::Buffered)
                .expect("append touch");
            store.remove(b);
            persist
                .append(&Record::Delete { id: b }, Durability::Synced)
                .expect("append delete");
            persist.flush().expect("flush");
        }
        // Second life: recovery replays create/touch/delete in order.
        let store = SessionStore::with_shards(8, 2);
        let (_persist, report) = Persistence::open(tmp.path(), &store, &workers).expect("reopen");
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.restored_sessions, 1);
        assert!(store.get(1).is_found(), "created+touched session survives");
        assert!(
            matches!(store.get(2), crate::session::SessionLookup::Missing),
            "deleted session stays deleted"
        );
    }

    #[test]
    fn checkpoint_compacts_and_restores_byte_identical_shards() {
        let tmp = TempDir::new("persist-checkpoint");
        let workers = pool();
        let snapshot_before;
        {
            let store = SessionStore::with_shards(8, 4);
            let (persist, _) = Persistence::open(tmp.path(), &store, &workers).expect("open");
            let (prepared, _) = reprepare(SCENARIO, ChaseMode::Skolem, &workers).expect("prepare");
            let origin = crate::session::SessionOrigin {
                chase: ChaseMode::Skolem,
                text: Arc::from(SCENARIO),
            };
            for _ in 0..5 {
                let (id, _) = store.insert_with_origin(prepared.clone(), origin.clone(), &workers);
                persist
                    .append(
                        &Record::Create {
                            id,
                            chase: ChaseMode::Skolem,
                            scenario: SCENARIO.to_owned(),
                        },
                        Durability::Synced,
                    )
                    .expect("append");
            }
            assert!(store.get(3).is_found());
            persist.checkpoint(&store, &workers).expect("checkpoint");
            snapshot_before = store.persist_state(&workers);
            assert_eq!(persist.metrics.snapshot().snapshots_written, 2);
        }
        let store = SessionStore::with_shards(8, 4);
        let (_persist, report) = Persistence::open(tmp.path(), &store, &workers).expect("reopen");
        assert_eq!(
            report.replayed_records, 0,
            "the checkpoint compacted the log"
        );
        assert_eq!(report.restored_sessions, 5);
        let snapshot_after = store.persist_state(&workers);
        assert_eq!(
            snapshot_before, snapshot_after,
            "same shard count restores byte-identically"
        );
    }
}
