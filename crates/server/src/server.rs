//! The TCP front: a dedicated acceptor feeding a bounded connection
//! queue drained by a fixed pool of worker threads, with explicit load
//! shedding, per-request wall-clock deadlines, and graceful drain.
//!
//! ## Admission control
//!
//! One acceptor thread owns `accept(2)`. Every accepted connection is
//! offered to a bounded queue ([`ServerConfig::max_queue`]); when the
//! queue is full the acceptor sheds the connection *explicitly* — a
//! `429 Too Many Requests` with a `Retry-After` header, written under a
//! short timeout — instead of letting the kernel backlog grow silently.
//! Workers pop connections, record how long each waited (the
//! `admission.queue_wait_us` histogram, plus a `queue_wait` span when the
//! wait was long enough to matter), and serve the keep-alive loop.
//!
//! ## Deadlines
//!
//! Each *request* (not each read) gets a wall-clock deadline
//! ([`ServerConfig::request_deadline`]) armed when its first byte
//! arrives, enforced by [`TimedStream`] across every header and body
//! read: a peer trickling one byte per 29 s can no longer reset a 30 s
//! per-read timeout forever. An expired deadline is answered with
//! `408 Request Timeout` and the connection is closed (the `admission`
//! metrics count it as timed out and reaped). The response write runs
//! under what remains of the same deadline, with a short grace floor so
//! a request that legitimately spent its budget computing still gets
//! its bytes flushed. Queue wait and keep-alive idle time never eat
//! into a request's deadline.
//!
//! ## Shutdown
//!
//! `POST /shutdown` flips the shared flag; the worker that served it
//! dials the listener once so the acceptor wakes, stops accepting, and
//! closes the queue. Workers then drain the queue — already-admitted
//! clients are served, not dropped — finish in-flight requests (their
//! responses carry `connection: close`), and idle keep-alive
//! connections close cleanly at a request boundary within
//! [`IDLE_POLL`]. `run` joins everything; once it returns the listener
//! is gone, so post-drain connects are refused.

use std::collections::VecDeque;
use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{parse_request, ParseError, Response, TimedStream};
use crate::persist::Persistence;
use crate::router::App;
use crate::session::SessionStore;

/// Environment override for [`ServerConfig::max_queue`].
pub const MAX_QUEUE_ENV: &str = "ROUTES_MAX_QUEUE";
/// Environment override (milliseconds) for
/// [`ServerConfig::request_deadline`].
pub const REQUEST_DEADLINE_ENV: &str = "ROUTES_REQUEST_DEADLINE_MS";
/// Environment override (seconds) for [`ServerConfig::retry_after`].
pub const RETRY_AFTER_ENV: &str = "ROUTES_RETRY_AFTER_SECS";

/// Default bound of the acceptor's connection queue.
pub const DEFAULT_MAX_QUEUE: usize = 64;
/// Default wall-clock deadline for one request (parse → handle → write).
pub const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(10);
/// Default `Retry-After` hint on shed (429) responses.
pub const DEFAULT_RETRY_AFTER: Duration = Duration::from_secs(1);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// Session-store bound (LRU beyond this).
    pub max_sessions: usize,
    /// Session-store shard count; 0 means "auto" (`ROUTES_SESSION_SHARDS`
    /// or the machine's available parallelism).
    pub session_shards: usize,
    /// Per-read socket timeout; a silent peer cannot pin a worker past it.
    pub read_timeout: Duration,
    /// Bound of the acceptor's connection queue; beyond it connections
    /// are shed with 429. 0 means "auto" (`ROUTES_MAX_QUEUE` or
    /// [`DEFAULT_MAX_QUEUE`]).
    pub max_queue: usize,
    /// Wall-clock deadline for one request, armed at its first byte and
    /// spanning parse, handling, and the response write; a trickling
    /// peer cannot reset it. `None` means "auto"
    /// (`ROUTES_REQUEST_DEADLINE_MS` or [`DEFAULT_REQUEST_DEADLINE`]).
    pub request_deadline: Option<Duration>,
    /// `Retry-After` hint carried on shed (429) responses. `None` means
    /// "auto" (`ROUTES_RETRY_AFTER_SECS` or [`DEFAULT_RETRY_AFTER`]).
    pub retry_after: Option<Duration>,
    /// Data directory for durable snapshot + WAL persistence; `None`
    /// (default) keeps the service purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// Whether to record spans (`false` still mints trace IDs). The
    /// default honors `ROUTES_TRACE`.
    pub tracing: bool,
    /// Span ring capacity; 0 means "from `ROUTES_TRACE_SPANS`" (default
    /// 1024).
    pub trace_capacity: usize,
    /// Slow-request warning threshold; `None` means "from
    /// `ROUTES_SLOW_MS`" (default 500 ms).
    pub slow_request: Option<Duration>,
    /// Self-profiler sampling frequency in Hz; `None` means "from
    /// `ROUTES_PROFILE_HZ`" (default 0 = off — off means zero clock
    /// reads and zero frame pushes on the request path).
    pub profile_hz: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_sessions: 32,
            session_shards: 0,
            read_timeout: Duration::from_secs(30),
            max_queue: 0,
            request_deadline: None,
            retry_after: None,
            data_dir: None,
            tracing: true,
            trace_capacity: 0,
            slow_request: None,
            profile_hz: None,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.parse().ok()
}

impl ServerConfig {
    /// [`ServerConfig::max_queue`] with the 0 = env-or-default rule
    /// applied (never 0: a queue the acceptor cannot park one connection
    /// in would shed everything).
    pub fn resolved_max_queue(&self) -> usize {
        if self.max_queue > 0 {
            return self.max_queue;
        }
        env_parse::<usize>(MAX_QUEUE_ENV)
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_MAX_QUEUE)
    }

    /// [`ServerConfig::request_deadline`] with the `None` =
    /// env-or-default rule applied.
    pub fn resolved_request_deadline(&self) -> Duration {
        self.request_deadline.unwrap_or_else(|| {
            env_parse::<u64>(REQUEST_DEADLINE_ENV)
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis)
                .unwrap_or(DEFAULT_REQUEST_DEADLINE)
        })
    }

    /// [`ServerConfig::retry_after`] with the `None` = env-or-default
    /// rule applied.
    pub fn resolved_retry_after(&self) -> Duration {
        self.retry_after.unwrap_or_else(|| {
            env_parse::<u64>(RETRY_AFTER_ENV)
                .map(Duration::from_secs)
                .unwrap_or(DEFAULT_RETRY_AFTER)
        })
    }

    /// [`ServerConfig::profile_hz`] with the `None` = env-or-default rule
    /// applied (clamped to [`routes_obs::MAX_PROFILE_HZ`]).
    pub fn resolved_profile_hz(&self) -> u32 {
        self.profile_hz
            .map_or_else(routes_obs::profile_hz_from_env, |hz| {
                hz.min(routes_obs::MAX_PROFILE_HZ)
            })
    }
}

/// The resolved per-connection limits, copied into every worker.
#[derive(Clone, Copy)]
struct Limits {
    read_timeout: Duration,
    request_deadline: Duration,
    retry_after: Duration,
}

/// An accepted connection parked in the admission queue.
struct Pending {
    stream: TcpStream,
    enqueued: Instant,
}

/// The bounded hand-off between the acceptor and the workers. Plain
/// `Mutex<VecDeque>` + `Condvar`: the queue is small by design (its
/// whole point is to be a measured bound, not a buffer), so lock
/// contention is not a concern.
struct Admission {
    state: Mutex<AdmissionState>,
    ready: Condvar,
    capacity: usize,
}

struct AdmissionState {
    queue: VecDeque<Pending>,
    closed: bool,
}

impl Admission {
    fn new(capacity: usize) -> Self {
        Admission {
            state: Mutex::new(AdmissionState {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Try to enqueue; gives the connection back at capacity (or after
    /// close) so the acceptor can shed it.
    fn offer(&self, pending: Pending) -> Result<(), Pending> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.closed || state.queue.len() >= self.capacity {
            return Err(pending);
        }
        state.queue.push_back(pending);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a connection is available; `None` only after `close`
    /// once the queue has fully drained — already-admitted clients are
    /// served, not dropped.
    fn pop(&self) -> Option<Pending> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(pending) = state.queue.pop_front() {
                return Some(pending);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop admitting; wake every parked worker so the drain can finish.
    fn close(&self) {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// A bound, not-yet-running service.
pub struct Server {
    listener: TcpListener,
    app: Arc<App>,
    config: ServerConfig,
}

impl Server {
    /// Bind the listener (use port 0 for an ephemeral port). With a data
    /// directory configured, this is also where crash recovery runs:
    /// snapshot-then-log replay restores the session store before the
    /// first connection is accepted.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let store = if config.session_shards == 0 {
            SessionStore::new(config.max_sessions)
        } else {
            SessionStore::with_shards(config.max_sessions, config.session_shards)
        };
        let pool = routes_pool::Pool::from_env();
        let persist = match &config.data_dir {
            Some(dir) => {
                let (persist, report) = Persistence::open(dir, &store, &pool)?;
                routes_obs::log(
                    routes_obs::Level::Info,
                    "recovery",
                    &[
                        (
                            "restored_sessions",
                            routes_obs::Value::from(report.restored_sessions),
                        ),
                        (
                            "replayed_records",
                            routes_obs::Value::from(report.replayed_records),
                        ),
                        ("summary", routes_obs::Value::from(report.summary.as_str())),
                    ],
                );
                Some(persist)
            }
            None => None,
        };
        let mut tracer = routes_obs::Tracer::from_env(
            (config.trace_capacity > 0).then_some(config.trace_capacity),
        );
        if !config.tracing {
            tracer = routes_obs::Tracer::disabled();
        }
        let slow = config
            .slow_request
            .unwrap_or_else(routes_obs::slow_threshold_from_env);
        Ok(Server {
            listener,
            app: Arc::new(App::with_observability(
                store,
                pool,
                persist,
                Arc::new(tracer),
                slow,
            )),
            config,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared application state (tests inspect metrics through this).
    pub fn app(&self) -> Arc<App> {
        Arc::clone(&self.app)
    }

    /// Serve until graceful shutdown; blocks, joining the acceptor and
    /// every worker. With persistence enabled, a maintenance thread
    /// flushes buffered WAL records and checkpoints past the threshold
    /// every [`MAINTENANCE_TICK`]; shutdown ends with a durable flush
    /// (but no checkpoint, so the next boot exercises WAL replay).
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        let Server {
            listener,
            app,
            config,
        } = self;
        let threads = config.threads.max(1);
        let limits = Limits {
            read_timeout: config.read_timeout,
            request_deadline: config.resolved_request_deadline(),
            retry_after: config.resolved_retry_after(),
        };
        let capacity = config.resolved_max_queue();
        app.metrics
            .admission_queue_capacity
            .store(capacity as u64, Relaxed);
        let admission = Arc::new(Admission::new(capacity));
        // Start the self-profiler's ticker before the workers exist so
        // every worker thread registers its frames under a live sampler;
        // 0 Hz means no ticker and the frame hooks stay disabled.
        let sampler = routes_obs::start_sampler(config.resolved_profile_hz());

        let mut workers = Vec::with_capacity(threads);
        for k in 0..threads {
            let admission = Arc::clone(&admission);
            let app = Arc::clone(&app);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spiderd-worker-{k}"))
                    .spawn(move || worker_loop(&admission, &app, &limits, addr))?,
            );
        }
        // The acceptor owns the listener: when it exits (and `run`
        // returns) the socket is gone, so post-drain connects are
        // refused rather than silently queued in a dead backlog.
        let acceptor = {
            let admission = Arc::clone(&admission);
            let app = Arc::clone(&app);
            std::thread::Builder::new()
                .name("spiderd-acceptor".to_owned())
                .spawn(move || acceptor_loop(listener, &app, &admission, &limits))?
        };
        let maintenance = if app.persistence().is_some() {
            let app = Arc::clone(&app);
            Some(
                std::thread::Builder::new()
                    .name("spiderd-maintenance".to_owned())
                    .spawn(move || maintenance_loop(&app))?,
            )
        } else {
            None
        };
        let _ = acceptor.join();
        for w in workers {
            let _ = w.join();
        }
        if let Some(m) = maintenance {
            let _ = m.join();
        }
        if let Some(sampler) = sampler {
            sampler.stop();
        }
        if let Some(p) = app.persistence() {
            p.flush()?;
        }
        Ok(())
    }

    /// Start serving on a background thread; returns the bound address and
    /// the join handle. Convenience for tests and examples.
    pub fn spawn(self) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
        let addr = self.local_addr()?;
        let handle = std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok((addr, handle))
    }
}

/// Accept until shutdown, offering every connection to the bounded queue
/// and shedding (429 + `Retry-After`) whatever does not fit.
fn acceptor_loop(listener: TcpListener, app: &Arc<App>, admission: &Admission, limits: &Limits) {
    loop {
        if app.is_shutting_down() {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if app.is_shutting_down() {
            // A wake-up dial, not a client.
            break;
        }
        app.metrics.connections_accepted.fetch_add(1, Relaxed);
        let pending = Pending {
            stream,
            enqueued: Instant::now(),
        };
        match admission.offer(pending) {
            Ok(()) => {
                app.metrics.admission_admitted.fetch_add(1, Relaxed);
                app.metrics.admission_queue_depth.fetch_add(1, Relaxed);
            }
            Err(pending) => shed(pending, app, limits),
        }
    }
    admission.close();
}

/// Answer an over-capacity connection with `429 Too Many Requests` +
/// `Retry-After`, under a short write timeout so an unreading peer
/// cannot pin the acceptor, then close it. Cheap by construction: no
/// parsing, no dispatch — the cost of being over capacity is one small
/// write at the door.
fn shed(pending: Pending, app: &Arc<App>, limits: &Limits) {
    app.metrics.admission_shed.fetch_add(1, Relaxed);
    let mut stream = pending.stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_GRACE));
    let ctx = app.tracer().begin(None);
    let _scope = routes_obs::scoped(Some(ctx.clone()));
    let mut response = Response::error(429, "connection queue full; retry shortly");
    let retry_secs = limits.retry_after.as_secs().max(1);
    response.set_header("retry-after", retry_secs.to_string());
    response.set_header("x-trace-id", ctx.id().as_str().to_owned());
    app.metrics.record_response(429, Duration::ZERO, None);
    ctx.record(
        "admission_shed",
        pending.enqueued,
        pending.enqueued.elapsed(),
    );
    routes_obs::log(
        routes_obs::Level::Debug,
        "admission_shed",
        &[
            ("retry_after_secs", routes_obs::Value::from(retry_secs)),
            (
                "queue_capacity",
                routes_obs::Value::from(app.metrics.admission_queue_capacity.load(Relaxed)),
            ),
        ],
    );
    let _ = response.write_to(&mut stream, false);
    // Lingering close: a shed client has usually already written its
    // request by the time we answer. Dropping the socket with those
    // bytes unread makes the kernel send RST instead of FIN — and RST
    // processing discards the 429 still sitting in the client's receive
    // queue. Send our FIN, then drain whatever has already arrived
    // (non-blocking, bounded, so a flooder can never stall the
    // acceptor) before closing.
    let _ = stream.shutdown(Shutdown::Write);
    if stream.set_nonblocking(true).is_ok() {
        let mut scratch = [0u8; 4096];
        for _ in 0..16 {
            match stream.read(&mut scratch) {
                Ok(n) if n > 0 => continue,
                _ => break,
            }
        }
    }
}

/// Queue waits below this threshold are recorded only in the
/// `queue_wait_us` histogram; longer ones also get a `queue_wait` span.
/// An uncontended hand-off is microseconds — tracing every one would
/// drown the span ring in noise no one asked for.
const QUEUE_WAIT_SPAN_THRESHOLD: Duration = Duration::from_millis(10);

/// Pop admitted connections and serve them until the queue closes and
/// drains. The worker that observes shutdown dials the listener so the
/// acceptor (possibly parked in `accept`) wakes and closes the queue.
fn worker_loop(admission: &Admission, app: &Arc<App>, limits: &Limits, addr: SocketAddr) {
    while let Some(pending) = admission.pop() {
        app.metrics.admission_queue_depth.fetch_sub(1, Relaxed);
        let wait = pending.enqueued.elapsed();
        app.metrics.record_queue_wait(wait);
        if wait >= QUEUE_WAIT_SPAN_THRESHOLD {
            let ctx = app.tracer().begin(None);
            ctx.record("queue_wait", pending.enqueued, wait);
        }
        serve_connection(pending.stream, app, limits);
        if app.is_shutting_down() {
            // This worker served the /shutdown request (or raced it):
            // wake the acceptor so it stops accepting and closes the
            // queue, letting every worker drain out.
            let _ = TcpStream::connect(addr);
        }
    }
}

/// How often the maintenance thread flushes buffered WAL records and
/// checks the checkpoint threshold. Short enough that a buffered touch is
/// durable well before a human could restart the service, long enough to
/// batch a burst of them into one fsync.
pub const MAINTENANCE_TICK: Duration = Duration::from_millis(250);

/// Flush-and-maybe-checkpoint until shutdown. Errors are already sticky
/// in the WAL (poisoning), so the loop keeps ticking — the next synced
/// append reports the failure to a client.
fn maintenance_loop(app: &Arc<App>) {
    let Some(persist) = app.persistence() else {
        return;
    };
    while !app.is_shutting_down() {
        std::thread::sleep(MAINTENANCE_TICK);
        // A minted per-tick context so background flush/checkpoint spans
        // (`wal_fsync`, `checkpoint`) land in the ring under their own
        // trace ID instead of vanishing.
        let ctx = app.tracer().begin(None);
        let _scope = routes_obs::scoped(Some(ctx));
        let _ = persist.maintain(&app.store, &app.pool);
    }
    let _ = persist.flush();
}

/// How often an idle keep-alive connection re-checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Floor on the write-side budget: a request that legitimately spent its
/// whole deadline computing still gets this long to flush its response,
/// and shed/reap notices get this long to reach the peer.
const WRITE_GRACE: Duration = Duration::from_secs(1);

/// Serve one connection's keep-alive request loop under the admission
/// limits.
fn serve_connection(stream: TcpStream, app: &Arc<App>, limits: &Limits) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // One persistent BufReader wraps the deadline-aware stream: its
    // buffer (and any pipelined request bytes in it) survives across
    // requests, keeping framing byte-exact; `get_mut` re-arms the limits
    // between phases without touching the buffer.
    let mut reader = BufReader::new(TimedStream::new(stream, limits.read_timeout));
    loop {
        // Idle wait at the request boundary: a short poll with no
        // deadline, so the worker notices graceful shutdown instead of
        // pinning an idle connection. Nothing is consumed here, so
        // retrying after a poll timeout cannot corrupt request framing.
        reader.get_mut().arm(IDLE_POLL, None);
        loop {
            if app.is_shutting_down() {
                return;
            }
            use std::io::BufRead as _;
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF
                Ok(_) => break,   // a request head is waiting
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                Err(_) => return,
            }
        }
        // First request byte seen: the wall-clock deadline starts here.
        // Queue wait and keep-alive idle never eat into it; header and
        // body trickling cannot extend it.
        let armed = Instant::now();
        let deadline = armed + limits.request_deadline;
        reader.get_mut().arm(limits.read_timeout, Some(deadline));
        let request = match parse_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::Eof) => return,
            Err(ParseError::Timeout) => {
                // The peer stalled mid-request (or trickled past the
                // deadline): answer 408 and reap the connection.
                app.metrics.admission_timeouts.fetch_add(1, Relaxed);
                app.metrics.admission_reaped.fetch_add(1, Relaxed);
                let ctx = app.tracer().begin(None);
                let _scope = routes_obs::scoped(Some(ctx.clone()));
                let mut response = Response::error(408, "request deadline exceeded");
                response.set_header("x-trace-id", ctx.id().as_str().to_owned());
                app.metrics.record_response(408, armed.elapsed(), None);
                ctx.record("request_timeout", armed, armed.elapsed());
                routes_obs::log(
                    routes_obs::Level::Warn,
                    "request_reaped",
                    &[
                        (
                            "elapsed_us",
                            routes_obs::Value::from(
                                armed.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                            ),
                        ),
                        (
                            "deadline_ms",
                            routes_obs::Value::from(
                                limits
                                    .request_deadline
                                    .as_millis()
                                    .min(u128::from(u64::MAX))
                                    as u64,
                            ),
                        ),
                    ],
                );
                let _ = writer.set_write_timeout(Some(WRITE_GRACE));
                let _ = response.write_to(&mut writer, false);
                return;
            }
            Err(ParseError::Io(_)) => return,
            Err(e) => {
                // Syntax and limit violations get a response, then the
                // connection closes (framing is unreliable after them). No
                // headers were parsed, so the trace ID is always minted.
                app.metrics.bad_requests.fetch_add(1, Relaxed);
                let ctx = app.tracer().begin(None);
                let _scope = routes_obs::scoped(Some(ctx.clone()));
                let mut response = match e {
                    ParseError::TooLarge("body too large") => {
                        Response::error(413, "body too large")
                    }
                    ParseError::TooLarge(what) => Response::error(431, what),
                    ParseError::Malformed(what) => Response::error(400, what),
                    ParseError::Eof | ParseError::Timeout | ParseError::Io(_) => unreachable!(),
                };
                response.set_header("x-trace-id", ctx.id().as_str().to_owned());
                app.metrics
                    .record_response(response.status, Duration::ZERO, None);
                let _ = writer.set_write_timeout(Some(WRITE_GRACE));
                let _ = response.write_to(&mut writer, false);
                return;
            }
        };
        let response = app.handle_traced(&request);
        let keep_alive = request.keep_alive && !app.is_shutting_down();
        // The same deadline spans the response write, floored at
        // WRITE_GRACE. A peer that stops reading is reaped, not waited
        // on for the full default socket patience.
        let budget = deadline
            .saturating_duration_since(Instant::now())
            .max(WRITE_GRACE);
        let _ = writer.set_write_timeout(Some(budget));
        match response.write_to(&mut writer, keep_alive) {
            Ok(()) if keep_alive => {}
            Ok(()) => return,
            Err(e) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    app.metrics.admission_reaped.fetch_add(1, Relaxed);
                }
                return;
            }
        }
    }
}
