//! The TCP front: a fixed pool of worker threads accepting from one
//! shared listener, with graceful shutdown.
//!
//! Linux allows concurrent `accept(2)` on one listening socket, so each
//! worker blocks in `accept` directly — no acceptor thread, no queue. A
//! connection is served to completion (keep-alive loop) by the worker that
//! accepted it; with N workers, at most N connections are in flight, which
//! is the intended admission control for a debugging service.
//!
//! Shutdown: `POST /shutdown` flips the shared flag; the worker that
//! served it then dials the listener once per worker so siblings parked in
//! `accept` wake, observe the flag, and exit. `run` joins every worker.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;

use crate::http::{parse_request, ParseError, Response};
use crate::persist::Persistence;
use crate::router::App;
use crate::session::SessionStore;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// Session-store bound (LRU beyond this).
    pub max_sessions: usize,
    /// Session-store shard count; 0 means "auto" (`ROUTES_SESSION_SHARDS`
    /// or the machine's available parallelism).
    pub session_shards: usize,
    /// Per-read socket timeout; a stalled peer cannot pin a worker forever.
    pub read_timeout: Duration,
    /// Data directory for durable snapshot + WAL persistence; `None`
    /// (default) keeps the service purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// Whether to record spans (`false` still mints trace IDs). The
    /// default honors `ROUTES_TRACE`.
    pub tracing: bool,
    /// Span ring capacity; 0 means "from `ROUTES_TRACE_SPANS`" (default
    /// 1024).
    pub trace_capacity: usize,
    /// Slow-request warning threshold; `None` means "from
    /// `ROUTES_SLOW_MS`" (default 500 ms).
    pub slow_request: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_sessions: 32,
            session_shards: 0,
            read_timeout: Duration::from_secs(30),
            data_dir: None,
            tracing: true,
            trace_capacity: 0,
            slow_request: None,
        }
    }
}

/// A bound, not-yet-running service.
pub struct Server {
    listener: TcpListener,
    app: Arc<App>,
    config: ServerConfig,
}

impl Server {
    /// Bind the listener (use port 0 for an ephemeral port). With a data
    /// directory configured, this is also where crash recovery runs:
    /// snapshot-then-log replay restores the session store before the
    /// first connection is accepted.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let store = if config.session_shards == 0 {
            SessionStore::new(config.max_sessions)
        } else {
            SessionStore::with_shards(config.max_sessions, config.session_shards)
        };
        let pool = routes_pool::Pool::from_env();
        let persist = match &config.data_dir {
            Some(dir) => {
                let (persist, report) = Persistence::open(dir, &store, &pool)?;
                routes_obs::log(
                    routes_obs::Level::Info,
                    "recovery",
                    &[
                        (
                            "restored_sessions",
                            routes_obs::Value::from(report.restored_sessions),
                        ),
                        (
                            "replayed_records",
                            routes_obs::Value::from(report.replayed_records),
                        ),
                        ("summary", routes_obs::Value::from(report.summary.as_str())),
                    ],
                );
                Some(persist)
            }
            None => None,
        };
        let mut tracer = routes_obs::Tracer::from_env(
            (config.trace_capacity > 0).then_some(config.trace_capacity),
        );
        if !config.tracing {
            tracer = routes_obs::Tracer::disabled();
        }
        let slow = config
            .slow_request
            .unwrap_or_else(routes_obs::slow_threshold_from_env);
        Ok(Server {
            listener,
            app: Arc::new(App::with_observability(
                store,
                pool,
                persist,
                Arc::new(tracer),
                slow,
            )),
            config,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared application state (tests inspect metrics through this).
    pub fn app(&self) -> Arc<App> {
        Arc::clone(&self.app)
    }

    /// Serve until graceful shutdown; blocks, joining every worker. With
    /// persistence enabled, a maintenance thread flushes buffered WAL
    /// records and checkpoints past the threshold every
    /// [`MAINTENANCE_TICK`]; shutdown ends with a durable flush (but no
    /// checkpoint, so the next boot exercises WAL replay).
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        let threads = self.config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for k in 0..threads {
            let listener = self.listener.try_clone()?;
            let app = Arc::clone(&self.app);
            let config = self.config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spiderd-worker-{k}"))
                    .spawn(move || worker_loop(&listener, &app, &config, addr, threads))?,
            );
        }
        let maintenance = if self.app.persistence().is_some() {
            let app = Arc::clone(&self.app);
            Some(
                std::thread::Builder::new()
                    .name("spiderd-maintenance".to_owned())
                    .spawn(move || maintenance_loop(&app))?,
            )
        } else {
            None
        };
        for w in workers {
            let _ = w.join();
        }
        if let Some(m) = maintenance {
            let _ = m.join();
        }
        if let Some(p) = self.app.persistence() {
            p.flush()?;
        }
        Ok(())
    }

    /// Start serving on a background thread; returns the bound address and
    /// the join handle. Convenience for tests and examples.
    pub fn spawn(self) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
        let addr = self.local_addr()?;
        let handle = std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok((addr, handle))
    }
}

fn worker_loop(
    listener: &TcpListener,
    app: &Arc<App>,
    config: &ServerConfig,
    addr: SocketAddr,
    threads: usize,
) {
    loop {
        if app.is_shutting_down() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if app.is_shutting_down() {
            // A wake-up dial, not a client.
            return;
        }
        app.metrics.connections_accepted.fetch_add(1, Relaxed);
        serve_connection(stream, app, config);
        if app.is_shutting_down() {
            // This worker served the /shutdown request (or raced it):
            // wake the siblings parked in accept, then exit.
            for _ in 0..threads {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

/// How often the maintenance thread flushes buffered WAL records and
/// checks the checkpoint threshold. Short enough that a buffered touch is
/// durable well before a human could restart the service, long enough to
/// batch a burst of them into one fsync.
pub const MAINTENANCE_TICK: Duration = Duration::from_millis(250);

/// Flush-and-maybe-checkpoint until shutdown. Errors are already sticky
/// in the WAL (poisoning), so the loop keeps ticking — the next synced
/// append reports the failure to a client.
fn maintenance_loop(app: &Arc<App>) {
    let Some(persist) = app.persistence() else {
        return;
    };
    while !app.is_shutting_down() {
        std::thread::sleep(MAINTENANCE_TICK);
        // A minted per-tick context so background flush/checkpoint spans
        // (`wal_fsync`, `checkpoint`) land in the ring under their own
        // trace ID instead of vanishing.
        let ctx = app.tracer().begin(None);
        let _scope = routes_obs::scoped(Some(ctx));
        let _ = persist.maintain(&app.store, &app.pool);
    }
    let _ = persist.flush();
}

/// How often an idle keep-alive connection re-checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Serve one connection's keep-alive request loop.
fn serve_connection(stream: TcpStream, app: &Arc<App>, config: &ServerConfig) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Idle wait at the request boundary: a short read timeout so this
        // worker notices graceful shutdown instead of pinning an idle
        // connection for the full read timeout. Nothing is consumed here,
        // so retrying after a timeout cannot corrupt request framing.
        let _ = writer.set_read_timeout(Some(IDLE_POLL));
        loop {
            if app.is_shutting_down() {
                return;
            }
            use std::io::BufRead as _;
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF
                Ok(_) => break,   // a request head is waiting
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                Err(_) => return,
            }
        }
        // A request is in flight: give the peer the full timeout.
        let _ = writer.set_read_timeout(Some(config.read_timeout));
        let request = match parse_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::Eof) => return,
            Err(ParseError::Io(_)) => return,
            Err(e) => {
                // Syntax and limit violations get a response, then the
                // connection closes (framing is unreliable after them). No
                // headers were parsed, so the trace ID is always minted.
                app.metrics.bad_requests.fetch_add(1, Relaxed);
                let ctx = app.tracer().begin(None);
                let _scope = routes_obs::scoped(Some(ctx.clone()));
                let mut response = match e {
                    ParseError::TooLarge("body too large") => {
                        Response::error(413, "body too large")
                    }
                    ParseError::TooLarge(what) => Response::error(431, what),
                    ParseError::Malformed(what) => Response::error(400, what),
                    ParseError::Eof | ParseError::Io(_) => unreachable!(),
                };
                response.set_header("x-trace-id", ctx.id().as_str().to_owned());
                app.metrics.record_response(response.status, Duration::ZERO);
                let _ = response.write_to(&mut writer, false);
                return;
            }
        };
        let response = app.handle_traced(&request);
        let keep_alive = request.keep_alive && !app.is_shutting_down();
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}
