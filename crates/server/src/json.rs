//! A minimal JSON value, parser, and encoder.
//!
//! The workspace builds offline with no external crates, so the service
//! carries its own JSON layer. Objects preserve insertion order (encoded
//! output is deterministic, which the integration tests rely on); numbers
//! are `f64` with integers encoded without a fractional part; parsing
//! accepts the full RFC 8259 grammar except `\u` surrogate pairs are
//! combined leniently (unpaired surrogates become U+FFFD).

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    /// Key–value pairs in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Build an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Encode as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed, with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // [
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // {
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected a string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Try to combine a surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((hi - 0xD800) << 10) + lo.wrapping_sub(0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always a valid boundary walk).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is a &str, so a lead byte plus its continuation bytes is a valid UTF-8 slice"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number characters are ASCII, so the scanned slice is valid UTF-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"nested": true}, "s": "x\"y\n", "n": null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("n"), Some(&Json::Null));
        // Encode → parse is identity.
        let reparsed = parse(&v.encode()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(2.5).encode(), "2.5");
        assert_eq!(Json::from(7u64).as_u64(), Some(7));
        assert_eq!(Json::Num(2.5).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "nulll",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse("\"\\u0041\"").unwrap(),
            Json::Str("A".into()),
            "basic BMP escape"
        );
        // Escaped surrogate pair for U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
        // Raw multi-byte UTF-8 passes through untouched.
        assert_eq!(parse(r#""héllo😀""#).unwrap(), Json::Str("héllo😀".into()));
        // Unpaired surrogate degrades to the replacement character.
        assert_eq!(parse(r#""\ud83d""#).unwrap(), Json::Str("\u{FFFD}".into()));
    }
}
