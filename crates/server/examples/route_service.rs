//! Drive `spiderd` end to end in one process: start the service on an
//! ephemeral port, load the paper's flavor of scenario over HTTP, probe a
//! route, list all routes, read the metrics, and shut down gracefully.
//!
//! ```text
//! cargo run --example route_service -p routes-server
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use routes_server::{Json, Server, ServerConfig};

const SCENARIO: &str = "\
source schema:
  Patient(pid, name, healthplan, date)
target schema:
  Person(pid, name)
  History(pid, plan, date)
dependencies:
  m1: Patient(p, n, h, d) -> Person(p, n)
  m2: Patient(p, n, h, d) -> History(p, h, d)
source data:
  Patient(123, 'Joe', 'Plus', 'Jan')
  Patient(124, 'Ann', 'Basic', 'Feb')
";

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: example\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (
        status,
        routes_server::json::parse(&body).expect("JSON body"),
    )
}

fn main() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let (addr, handle) = server.spawn().expect("spawn");
    println!("spiderd on http://{addr}\n");

    let create = Json::obj([("scenario", Json::from(SCENARIO))]).encode();
    let (status, reply) = request(addr, "POST", "/sessions", &create);
    let id = reply.get("session").unwrap().as_u64().unwrap();
    println!(
        "POST /sessions -> {status}: session {id}, chase {}",
        reply.get("chase").unwrap().encode()
    );

    let probe = r#"{"tuples": [{"relation": "History", "row": 0}]}"#;
    let (status, reply) = request(addr, "POST", &format!("/sessions/{id}/one-route"), probe);
    println!("\nPOST /sessions/{id}/one-route -> {status}");
    for step in reply.get("steps").unwrap().as_array().unwrap() {
        let rhs: Vec<&str> = step
            .get("rhs")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|t| t.get("text").unwrap().as_str().unwrap())
            .collect();
        println!(
            "  step {} witnesses {}",
            step.get("tgd").unwrap().as_str().unwrap(),
            rhs.join(", ")
        );
    }

    let all =
        r#"{"tuples": [{"relation": "Person", "row": 0}, {"relation": "History", "row": 0}]}"#;
    let (_, first) = request(addr, "POST", &format!("/sessions/{id}/all-routes"), all);
    let (_, second) = request(addr, "POST", &format!("/sessions/{id}/all-routes"), all);
    println!(
        "\nPOST /sessions/{id}/all-routes: {} nodes, {} branches, cached={} then cached={}",
        first.get("num_nodes").unwrap().encode(),
        first.get("num_branches").unwrap().encode(),
        first.get("cached").unwrap().encode(),
        second.get("cached").unwrap().encode(),
    );

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    println!(
        "\nGET /metrics: requests_total={}, forest_cache_hits={}",
        metrics.get("requests_total").unwrap().encode(),
        metrics.get("forest_cache_hits").unwrap().encode(),
    );

    let (status, _) = request(addr, "POST", "/shutdown", "");
    println!("\nPOST /shutdown -> {status}");
    handle.join().expect("clean exit");
    println!("server exited gracefully");
}
