//! End-to-end service tests over real sockets: concurrent clients, route
//! validation against an independently prepared `(I, J)`, forest-cache
//! behavior, metrics consistency, LRU eviction, graceful shutdown, and
//! keep-alive framing under admission deadlines (byte-exact response
//! boundaries around 408/429).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use routes_chase::ChaseOptions;
use routes_cli::{load_scenario_str, prepare_scenario};
use routes_core::{Route, RouteEnv, SatisfactionStep};
use routes_model::Value;
use routes_server::json::{parse, Json};
use routes_server::{Server, ServerConfig};

/// A keep-alive HTTP client speaking just enough of the protocol.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    /// Send one request on the persistent connection; parse the JSON reply.
    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).unwrap();
        self.writer.write_all(body.as_bytes()).unwrap();
        self.writer.flush().unwrap();

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        let text = String::from_utf8(body).unwrap();
        (
            status,
            parse(&text).unwrap_or_else(|e| panic!("bad JSON {text:?}: {e}")),
        )
    }
}

/// A scenario whose chase produces only constants, so the test can rebuild
/// the server's route from its JSON (integer homs) and replay it locally.
fn scenario_text(tag: i64) -> String {
    format!(
        "source schema:\n  S(a, b)\n\
         target schema:\n  T(a, b)\n  U(a)\n\
         dependencies:\n  m1: S(x, y) -> T(x, y)\n  m2: T(x, y) -> U(x)\n\
         source data:\n  S({tag}, {t1})\n  S({t2}, {t3})\n",
        t1 = tag + 1,
        t2 = tag + 10,
        t3 = tag + 11,
    )
}

fn json_escape(text: &str) -> String {
    Json::from(text).encode()
}

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    server.spawn().expect("spawn")
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut c = Client::connect(addr);
    let (status, body) = c.request("POST", "/shutdown", None);
    assert_eq!(status, 200);
    assert_eq!(body.get("shutting_down").unwrap().as_bool(), Some(true));
    handle.join().expect("server thread exits cleanly");
}

/// Rebuild the served route from its JSON steps against a locally prepared
/// copy of the same scenario, and replay it with `Route::validate`.
fn validate_served_route(tag: i64, steps: &[Json], selected_relation: &str, selected_row: u32) {
    let prepared = prepare_scenario(
        load_scenario_str(&scenario_text(tag)).unwrap(),
        ChaseOptions::fresh(),
    )
    .unwrap();
    let env = RouteEnv::new(&prepared.mapping, &prepared.source, &prepared.target);
    let route = Route::new(
        steps
            .iter()
            .map(|step| {
                let name = step.get("tgd").unwrap().as_str().unwrap();
                let tgd = prepared.mapping.tgd_by_name(name).expect("tgd exists");
                let tgd_ref = prepared.mapping.tgd(tgd);
                let hom_obj = step.get("hom").unwrap();
                let hom: Vec<Value> = (0..tgd_ref.var_count() as u32)
                    .map(|v| {
                        let rendered = hom_obj
                            .get(tgd_ref.var_name(routes_model::Var(v)))
                            .unwrap()
                            .as_str()
                            .unwrap();
                        Value::Int(rendered.parse().expect("integer-only scenario"))
                    })
                    .collect();
                SatisfactionStep::new(tgd, hom)
            })
            .collect(),
    );
    let rel = prepared.mapping.target().rel_id(selected_relation).unwrap();
    let selected = [routes_model::TupleId {
        rel,
        row: selected_row,
    }];
    route
        .validate(&env, &selected)
        .expect("served route replays against the local (I, J)");
}

/// One parsed raw response, for byte-exact framing assertions.
struct RawResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl RawResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Split one complete HTTP/1.1 response off the front of `bytes`;
/// `None` while the head or the `content-length` body is still partial.
/// Returns the response and the exact number of bytes it occupied.
fn try_split_response(bytes: &[u8]) -> Option<(RawResponse, usize)> {
    let head_end = bytes.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&bytes[..head_end]).expect("UTF-8 response head");
    let mut lines = head.trim_end().split("\r\n");
    let status_line = lines.next().unwrap();
    assert!(
        status_line.starts_with("HTTP/1.1 "),
        "bad status line {status_line:?}"
    );
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut headers = Vec::new();
    for line in lines {
        let (k, v) = line.split_once(':').unwrap_or_else(|| {
            panic!("header line without colon: {line:?}");
        });
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .expect("content-length always present");
    let total = head_end + len;
    if bytes.len() < total {
        return None;
    }
    Some((
        RawResponse {
            status,
            headers,
            body: bytes[head_end..total].to_vec(),
        },
        total,
    ))
}

/// Read from `stream` until one complete response is buffered; returns it
/// (EOF or a read error before that is a test failure).
fn read_one_response(stream: &mut TcpStream) -> RawResponse {
    let mut buf = Vec::new();
    loop {
        if let Some((response, consumed)) = try_split_response(&buf) {
            assert_eq!(consumed, buf.len(), "no bytes beyond the response yet");
            return response;
        }
        let mut chunk = [0u8; 1024];
        let n = stream
            .read(&mut chunk)
            .expect("read while awaiting response");
        assert!(n > 0, "EOF before a complete response (got {buf:?})");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn pipelined_keep_alive_responses_are_byte_exact() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Four requests in one write: three keep-alive, the last closing.
    let mut burst = String::new();
    for _ in 0..3 {
        burst.push_str("GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    }
    burst.push_str("GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n");
    stream.write_all(burst.as_bytes()).unwrap();

    let mut all = Vec::new();
    stream.read_to_end(&mut all).unwrap();
    let mut rest: &[u8] = &all;
    for i in 0..4 {
        let (response, consumed) =
            try_split_response(rest).unwrap_or_else(|| panic!("response {i} incomplete"));
        assert_eq!(response.status, 200, "response {i}");
        assert_eq!(
            response.header("connection"),
            Some(if i < 3 { "keep-alive" } else { "close" }),
            "response {i}"
        );
        parse(std::str::from_utf8(&response.body).unwrap())
            .unwrap_or_else(|e| panic!("response {i} body is not JSON: {e:?}"));
        rest = &rest[consumed..];
    }
    assert!(
        rest.is_empty(),
        "exactly four responses, no trailing bytes: {rest:?}"
    );
    shutdown(addr, handle);
}

#[test]
fn deadline_mid_body_yields_exactly_one_408_then_eof() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        request_deadline: Some(Duration::from_millis(500)),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // The first request stalls mid-body: 3 of 10 promised bytes, then
    // silence. The wall-clock deadline (not the 30 s per-read timeout)
    // must answer 408.
    stream
        .write_all(b"POST /sessions HTTP/1.1\r\nhost: t\r\ncontent-length: 10\r\n\r\nabc")
        .unwrap();
    let response = read_one_response(&mut stream);
    assert_eq!(response.status, 408);
    assert_eq!(response.header("connection"), Some("close"));
    let body = parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("deadline"));

    // A back-to-back second request after the 408 must not be consumed
    // as the missing body or produce a second response — framing is
    // unreliable after a timeout, so the connection just closes.
    let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    let mut extra = [0u8; 256];
    match stream.read(&mut extra) {
        Ok(0) => {}  // clean EOF at the response boundary
        Err(_) => {} // reset after our late write — still no bytes
        Ok(n) => panic!("unexpected bytes after the 408: {:?}", &extra[..n]),
    }
    shutdown(addr, handle);
}

#[test]
fn shed_connection_answers_pipelined_requests_with_exactly_one_429() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        max_queue: 1,
        request_deadline: Some(Duration::from_secs(3)),
        ..ServerConfig::default()
    });
    // Pin the single worker with a request stalled mid-headers...
    let mut pin = TcpStream::connect(addr).expect("connect");
    pin.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    pin.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // ...and fill the one-slot queue with a parked complete request.
    let mut parked = TcpStream::connect(addr).expect("connect");
    parked
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    parked
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // A shed connection gets its 429 at accept time, before sending a
    // single byte. It must be byte-exact, and two complete back-to-back
    // requests sent afterwards must not smear a second response (or
    // partial bytes) onto the wire.
    let mut shed = TcpStream::connect(addr).expect("connect");
    shed.set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let response = read_one_response(&mut shed);
    assert_eq!(response.status, 429);
    assert_eq!(response.header("connection"), Some("close"));
    response
        .header("retry-after")
        .expect("Retry-After on shed responses")
        .parse::<u64>()
        .expect("integer Retry-After");
    let _ = shed.write_all(
        b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\nGET /healthz HTTP/1.1\r\nhost: t\r\n\r\n",
    );
    let mut extra = [0u8; 256];
    match shed.read(&mut extra) {
        Ok(0) => {}  // clean EOF at the response boundary
        Err(_) => {} // reset after our late write — still no bytes
        Ok(n) => panic!("unexpected bytes after the 429: {:?}", &extra[..n]),
    }

    // Unpin: the stalled client is reaped with one byte-exact 408, and
    // the parked client is then served normally — the deadline on one
    // connection never corrupts its neighbors.
    let mut all = Vec::new();
    pin.read_to_end(&mut all).unwrap();
    let (response, consumed) = try_split_response(&all).expect("complete 408");
    assert_eq!(response.status, 408);
    assert_eq!(consumed, all.len(), "exactly one 408 then EOF");
    let mut all = Vec::new();
    parked.read_to_end(&mut all).unwrap();
    let (response, consumed) = try_split_response(&all).expect("complete 200");
    assert_eq!(response.status, 200);
    assert_eq!(consumed, all.len(), "exactly one 200 then EOF");

    shutdown(addr, handle);
}

#[test]
fn concurrent_clients_probe_validate_and_clean_up() {
    let (addr, handle) = start(ServerConfig {
        threads: 4,
        max_sessions: 16,
        session_shards: 4,
        read_timeout: Duration::from_secs(30),
        data_dir: None,
        ..ServerConfig::default()
    });

    let clients: Vec<_> = (0..4)
        .map(|k| {
            std::thread::spawn(move || {
                let tag = 100 * (k as i64 + 1);
                let mut c = Client::connect(addr);

                let create = format!("{{\"scenario\": {}}}", json_escape(&scenario_text(tag)));
                let (status, body) = c.request("POST", "/sessions", Some(&create));
                assert_eq!(status, 201, "{body:?}");
                let id = body.get("session").unwrap().as_u64().unwrap();
                assert_eq!(body.get("target_tuples").unwrap().as_u64(), Some(4));
                assert_eq!(body.get("weakly_acyclic").unwrap().as_bool(), Some(true));
                let chase = body.get("chase").unwrap();
                assert_eq!(chase.get("target_tuples").unwrap().as_u64(), Some(4));

                // One route for U's first tuple: m1 then m2.
                let probe = r#"{"tuples": [{"relation": "U", "row": 0}]}"#;
                let (status, body) =
                    c.request("POST", &format!("/sessions/{id}/one-route"), Some(probe));
                assert_eq!(status, 200, "{body:?}");
                assert_eq!(body.get("found").unwrap().as_bool(), Some(true));
                assert_eq!(body.get("validated").unwrap().as_bool(), Some(true));
                let steps = body.get("steps").unwrap().as_array().unwrap();
                assert_eq!(steps.len(), 2, "m1 then m2");
                validate_served_route(tag, steps, "U", 0);

                // All routes, twice: the repeat must hit the forest cache.
                let select_both =
                    r#"{"tuples": [{"relation": "U", "row": 0}, {"relation": "T", "row": 0}]}"#;
                let (status, first) = c.request(
                    "POST",
                    &format!("/sessions/{id}/all-routes"),
                    Some(select_both),
                );
                assert_eq!(status, 200);
                assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
                assert_eq!(
                    first.get("all_roots_provable").unwrap().as_bool(),
                    Some(true)
                );
                // Same set, permuted order.
                let permuted =
                    r#"{"tuples": [{"relation": "T", "row": 0}, {"relation": "U", "row": 0}]}"#;
                let (status, second) = c.request(
                    "POST",
                    &format!("/sessions/{id}/all-routes"),
                    Some(permuted),
                );
                assert_eq!(status, 200);
                assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
                assert_eq!(
                    second.get("num_branches").unwrap().as_u64(),
                    first.get("num_branches").unwrap().as_u64(),
                );

                let (status, body) = c.request("GET", &format!("/sessions/{id}"), None);
                assert_eq!(status, 200);
                assert_eq!(body.get("cached_forests").unwrap().as_u64(), Some(1));
                assert_eq!(
                    body.get("target").unwrap().get("T").unwrap().as_u64(),
                    Some(2)
                );

                let (status, body) = c.request("DELETE", &format!("/sessions/{id}"), None);
                assert_eq!(status, 200);
                assert_eq!(body.get("deleted").unwrap().as_bool(), Some(true));
                let (status, _) = c.request("GET", &format!("/sessions/{id}"), None);
                assert_eq!(status, 404, "deleted sessions are gone");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // Metrics reflect the four clients' traffic exactly.
    let mut c = Client::connect(addr);
    let (status, m) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let count = |key: &str| m.get(key).unwrap().as_u64().unwrap();
    assert_eq!(count("sessions_created"), 4);
    assert_eq!(count("sessions_deleted"), 4);
    assert_eq!(count("sessions_evicted"), 0);
    assert_eq!(count("live_sessions"), 0);
    assert_eq!(count("one_routes_computed"), 4);
    assert_eq!(count("all_routes_computed"), 8);
    assert_eq!(count("forest_cache_hits"), 4);
    assert_eq!(count("forest_cache_misses"), 4);
    // 7 requests per client (create, one-route, 2× all-routes, get,
    // delete, get-after-delete); the in-flight /metrics request itself is
    // recorded only after its snapshot is rendered.
    assert_eq!(count("requests_total"), 4 * 7);
    assert_eq!(count("responses_2xx"), 4 * 6);
    assert_eq!(count("responses_4xx"), 4, "one 404 per client");
    assert_eq!(count("responses_5xx"), 0);
    let hist = m.get("latency_us").unwrap().as_array().unwrap();
    let hist_total: u64 = hist
        .iter()
        .map(|b| b.get("count").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(hist_total, count("requests_total"));

    // Per-phase wall-time accounting reconciles against the same traffic:
    // every create chased (no supplied target), every forest-cache miss built
    // a forest, every one-route enumerated, and every routed response
    // (one-route + both all-routes replies) was printed.
    assert!(count("threads") >= 1, "pool width is reported");
    let phases = m.get("phases").unwrap();
    let phase = |name: &str, field: &str| {
        phases
            .get(name)
            .unwrap()
            .get(field)
            .unwrap()
            .as_u64()
            .unwrap()
    };
    assert_eq!(phase("chase", "count"), count("sessions_created"));
    assert_eq!(phase("forest", "count"), count("forest_cache_misses"));
    assert_eq!(phase("route", "count"), count("one_routes_computed"));
    assert_eq!(
        phase("print", "count"),
        count("one_routes_computed") + count("all_routes_computed"),
    );
    for name in ["chase", "forest", "route", "print"] {
        let entry = phases.get(name).unwrap();
        let phase_hist: u64 = entry
            .get("latency_us")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b.get("count").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(
            Some(phase_hist),
            entry.get("count").unwrap().as_u64(),
            "{name} histogram reconciles with its sample count"
        );
        assert!(
            entry.get("total_us").unwrap().as_u64().is_some(),
            "{name} reports total wall time"
        );
    }

    shutdown(addr, handle);
}

#[test]
fn bad_inputs_get_four_xx_not_hangs() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        max_sessions: 4,
        session_shards: 2,
        read_timeout: Duration::from_secs(30),
        data_dir: None,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    let (status, _) = c.request("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = c.request("PATCH", "/sessions/1", None);
    assert_eq!(status, 405);
    let (status, _) = c.request("POST", "/sessions", Some("not json"));
    assert_eq!(status, 400);
    let (status, _) = c.request("POST", "/sessions", Some("{}"));
    assert_eq!(status, 422);
    let (status, body) = c.request(
        "POST",
        "/sessions",
        Some(r#"{"scenario": "source schema:\n  S(a\n"}"#),
    );
    assert_eq!(status, 422, "loader errors surface as unprocessable");
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("load"));
    let (status, _) = c.request("GET", "/sessions/99", None);
    assert_eq!(status, 404);
    let (status, _) = c.request("GET", "/sessions/banana", None);
    assert_eq!(status, 400);

    // Selection errors on a real session.
    let create = format!("{{\"scenario\": {}}}", json_escape(&scenario_text(1)));
    let (status, body) = c.request("POST", "/sessions", Some(&create));
    assert_eq!(status, 201);
    let id = body.get("session").unwrap().as_u64().unwrap();
    for (what, bad) in [
        ("no tuples field", "{}"),
        ("empty selection", r#"{"tuples": []}"#),
        (
            "unknown relation",
            r#"{"tuples": [{"relation": "Z", "row": 0}]}"#,
        ),
        (
            "row out of range",
            r#"{"tuples": [{"relation": "U", "row": 99}]}"#,
        ),
    ] {
        let (status, _) = c.request("POST", &format!("/sessions/{id}/one-route"), Some(bad));
        assert_eq!(status, 422, "{what}");
    }

    shutdown(addr, handle);
}

#[test]
fn lru_eviction_over_http() {
    // One shard so the LRU victim is the classic least-recently-used
    // session regardless of id→shard placement.
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        max_sessions: 2,
        session_shards: 1,
        read_timeout: Duration::from_secs(30),
        data_dir: None,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    let create = |c: &mut Client, tag: i64| {
        let body = format!("{{\"scenario\": {}}}", json_escape(&scenario_text(tag)));
        let (status, reply) = c.request("POST", "/sessions", Some(&body));
        assert_eq!(status, 201);
        reply.get("session").unwrap().as_u64().unwrap()
    };
    let a = create(&mut c, 1);
    let b = create(&mut c, 2);
    // Touch a; b becomes the LRU victim of the third insert.
    let (status, _) = c.request("GET", &format!("/sessions/{a}"), None);
    assert_eq!(status, 200);
    let body = format!("{{\"scenario\": {}}}", json_escape(&scenario_text(3)));
    let (status, reply) = c.request("POST", "/sessions", Some(&body));
    assert_eq!(status, 201);
    let evicted = reply.get("evicted").unwrap().as_array().unwrap();
    assert_eq!(evicted.len(), 1);
    assert_eq!(evicted[0].as_u64(), Some(b));
    let (status, _) = c.request("GET", &format!("/sessions/{b}"), None);
    assert_eq!(status, 410, "evicted sessions answer Gone, not Not Found");
    let (status, _) = c.request("DELETE", &format!("/sessions/{b}"), None);
    assert_eq!(status, 410, "deleting an evicted session is Gone too");
    let (status, _) = c.request("GET", &format!("/sessions/{a}"), None);
    assert_eq!(status, 200, "recently used session survives");

    let (status, m) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    assert_eq!(m.get("sessions_evicted").unwrap().as_u64(), Some(1));
    assert_eq!(m.get("live_sessions").unwrap().as_u64(), Some(2));
    let store = m.get("session_store").unwrap();
    assert_eq!(store.get("shard_count").unwrap().as_u64(), Some(1));
    assert_eq!(store.get("evictions").unwrap().as_u64(), Some(1));

    shutdown(addr, handle);
}

/// Four concurrent clients churn 3× the store's capacity over HTTP; the
/// per-shard `/metrics` counters must reconcile exactly with the ids the
/// clients saw evicted, and every one of those ids must answer 410 Gone.
#[test]
fn over_capacity_churn_reconciles_per_shard_eviction_metrics() {
    const CLIENTS: usize = 4;
    const CREATES_PER_CLIENT: usize = 6;
    const SHARDS: u64 = 4;
    const CAPACITY: u64 = 8;
    let (addr, handle) = start(ServerConfig {
        threads: 4,
        max_sessions: CAPACITY as usize,
        session_shards: SHARDS as usize,
        read_timeout: Duration::from_secs(30),
        data_dir: None,
        ..ServerConfig::default()
    });

    let evicted: Vec<u64> = {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|k| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    let mut seen = Vec::new();
                    for j in 0..CREATES_PER_CLIENT {
                        let tag = 1000 * (k as i64 + 1) + j as i64;
                        let body =
                            format!("{{\"scenario\": {}}}", json_escape(&scenario_text(tag)));
                        let (status, reply) = c.request("POST", "/sessions", Some(&body));
                        assert_eq!(status, 201, "{reply:?}");
                        for id in reply.get("evicted").unwrap().as_array().unwrap() {
                            seen.push(id.as_u64().unwrap());
                        }
                    }
                    seen
                })
            })
            .collect();
        let mut all = Vec::new();
        for w in workers {
            all.extend(w.join().expect("client thread"));
        }
        all
    };

    // Every eviction happens inside some create's scan and is reported in
    // that create's response, so the union of the clients' `evicted`
    // arrays is the complete eviction history — and ids are never
    // reported twice.
    let mut unique = evicted.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), evicted.len(), "no id evicted twice");
    let total_creates = (CLIENTS * CREATES_PER_CLIENT) as u64;
    assert_eq!(
        evicted.len() as u64,
        total_creates - CAPACITY,
        "every shard saturates, so evictions = inserts - capacity"
    );

    let mut c = Client::connect(addr);
    let (status, m1) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    assert_eq!(
        m1.get("sessions_created").unwrap().as_u64(),
        Some(total_creates)
    );
    assert_eq!(
        m1.get("sessions_evicted").unwrap().as_u64(),
        Some(evicted.len() as u64)
    );
    assert_eq!(m1.get("live_sessions").unwrap().as_u64(), Some(CAPACITY));
    let store = m1.get("session_store").unwrap();
    assert_eq!(store.get("shard_count").unwrap().as_u64(), Some(SHARDS));
    assert_eq!(
        store.get("evictions").unwrap().as_u64(),
        Some(evicted.len() as u64),
        "store totals agree with the service counter"
    );
    // Ids are dense (1..=24) and shard_of = id % 4, so each shard saw
    // exactly 6 inserts into 2 slots: per-shard counters are fully
    // determined even though the traffic was concurrent.
    let shards = store.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), SHARDS as usize);
    for (k, shard) in shards.iter().enumerate() {
        let field = |name: &str| shard.get(name).unwrap().as_u64().unwrap();
        assert_eq!(field("sessions"), CAPACITY / SHARDS, "shard {k} saturated");
        assert_eq!(field("capacity"), CAPACITY / SHARDS);
        assert_eq!(field("inserts"), total_creates / SHARDS);
        assert_eq!(
            field("evictions"),
            total_creates / SHARDS - CAPACITY / SHARDS,
            "shard {k} evicted its overflow exactly"
        );
    }

    // Every id the clients saw evicted answers 410 Gone — never 404, and
    // never a resurrected 200.
    for id in &evicted {
        let (status, _) = c.request("GET", &format!("/sessions/{id}"), None);
        assert_eq!(status, 410, "evicted session {id}");
    }
    let (status, m2) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let store2 = m2.get("session_store").unwrap();
    let delta = |name: &str| {
        store2.get(name).unwrap().as_u64().unwrap() - store.get(name).unwrap().as_u64().unwrap()
    };
    assert_eq!(delta("misses"), evicted.len() as u64, "each 410 was a miss");
    assert_eq!(delta("hits"), 0, "no evicted id was served");
    assert_eq!(delta("evictions"), 0, "probing evicts nothing");

    shutdown(addr, handle);
}

/// A two-hop pipeline scenario. The second hop has a redundant
/// existential tgd, so with `core: on` the chase's `U(x, Z)` null rows are
/// subsumed by the `U(x, y)` constant rows and the core strictly shrinks.
fn pipeline_text(core: bool) -> String {
    let options = if core {
        "\npipeline:\n  core: on\n"
    } else {
        ""
    };
    format!(
        "stage clean:\n\
        \x20 source schema:\n    S(a, b)\n\
        \x20 target schema:\n    T(a, b)\n\
        \x20 dependencies:\n    m1: S(x, y) -> T(x, y)\n\
        stage publish:\n\
        \x20 source schema:\n    T(a, b)\n\
        \x20 target schema:\n    U(a, b)\n\
        \x20 dependencies:\n\
        \x20   m2: T(x, y) -> exists Z: U(x, Z)\n\
        \x20   m3: T(x, y) -> U(x, y)\n\
        source data:\n  S(1, 2)\n  S(3, 4)\n{options}"
    )
}

#[test]
fn pipeline_sessions_stitch_routes_and_reject_edits() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        max_sessions: 4,
        session_shards: 2,
        read_timeout: Duration::from_secs(30),
        data_dir: None,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    // Core mode on: the chase makes 4 U-rows per the two tgds, the core
    // keeps only the 2 constant rows.
    let create = format!("{{\"scenario\": {}}}", json_escape(&pipeline_text(true)));
    let (status, reply) = c.request("POST", "/sessions", Some(&create));
    assert_eq!(status, 201, "{reply:?}");
    let id = reply.get("session").unwrap().as_u64().unwrap();
    let pipe = reply
        .get("pipeline")
        .expect("pipeline block in create reply");
    assert_eq!(pipe.get("hops").unwrap().as_u64(), Some(2));
    assert_eq!(pipe.get("core").unwrap().as_bool(), Some(true));
    let stages = pipe.get("stages").unwrap().as_array().unwrap();
    assert_eq!(stages.len(), 2);
    assert_eq!(stages[0].as_str(), Some("clean"));
    assert_eq!(stages[1].as_str(), Some("publish"));
    let before = pipe.get("core_tuples_before").unwrap().as_u64().unwrap();
    let after = pipe.get("core_tuples_after").unwrap().as_u64().unwrap();
    assert!(after < before, "core must shrink: {before} -> {after}");
    assert_eq!(
        reply.get("target_tuples").unwrap().as_u64(),
        Some(2),
        "the final hop serves the minimized instance"
    );

    // The flat view (final hop) answers the single-mapping surface.
    let (status, summary) = c.request("GET", &format!("/sessions/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(
        summary.get("target").unwrap().get("U").unwrap().as_u64(),
        Some(2)
    );
    let (status, one) = c.request(
        "POST",
        &format!("/sessions/{id}/one-route"),
        Some(r#"{"tuples": [{"relation": "U", "row": 0}]}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(one.get("found").unwrap().as_bool(), Some(true));

    // A stitched route crosses both hops and is replay-validated.
    let (status, stitched) = c.request(
        "POST",
        &format!("/sessions/{id}/stitched-route"),
        Some(r#"{"tuples": [{"relation": "U", "row": 0}, {"relation": "U", "row": 1}]}"#),
    );
    assert_eq!(status, 200, "{stitched:?}");
    assert_eq!(stitched.get("found").unwrap().as_bool(), Some(true));
    assert_eq!(stitched.get("validated").unwrap().as_bool(), Some(true));
    assert_eq!(stitched.get("hops").unwrap().as_u64(), Some(2));
    let hops = stitched.get("stages").unwrap().as_array().unwrap();
    assert_eq!(hops.len(), 2);
    assert_eq!(hops[0].get("name").unwrap().as_str(), Some("clean"));
    assert_eq!(hops[1].get("name").unwrap().as_str(), Some("publish"));
    for hop in hops {
        assert!(
            !hop.get("steps").unwrap().as_array().unwrap().is_empty(),
            "every hop contributes satisfaction steps"
        );
    }
    let total = stitched.get("total_steps").unwrap().as_u64().unwrap();
    assert!(total >= 2, "at least one step per hop, got {total}");

    // Pipeline sessions are immutable: edits answer 409.
    let (status, _) = c.request(
        "POST",
        &format!("/sessions/{id}/edit"),
        Some(r#"{"ops": [{"op": "insert_tuple", "line": "S(9, 9)"}]}"#),
    );
    assert_eq!(status, 409, "pipeline sessions reject edits");

    // Stitched-route on a flat session answers 409 the other way around.
    let flat = format!("{{\"scenario\": {}}}", json_escape(&scenario_text(1)));
    let (status, reply) = c.request("POST", "/sessions", Some(&flat));
    assert_eq!(status, 201);
    assert!(
        reply.get("pipeline").is_none(),
        "flat creates carry no pipeline block"
    );
    let flat_id = reply.get("session").unwrap().as_u64().unwrap();
    let (status, _) = c.request(
        "POST",
        &format!("/sessions/{flat_id}/stitched-route"),
        Some(r#"{"tuples": [{"relation": "U", "row": 0}]}"#),
    );
    assert_eq!(status, 409, "flat sessions have no stages to stitch");

    let (status, m) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let pm = m.get("pipeline").unwrap();
    assert_eq!(pm.get("sessions_created").unwrap().as_u64(), Some(1));
    assert_eq!(pm.get("stage_chases").unwrap().as_u64(), Some(2));
    assert_eq!(pm.get("core_runs").unwrap().as_u64(), Some(2));
    assert_eq!(
        pm.get("core_tuples_removed").unwrap().as_u64(),
        Some(before - after)
    );
    assert_eq!(pm.get("stitched_routes").unwrap().as_u64(), Some(1));
    assert_eq!(pm.get("stitched_hops").unwrap().as_u64(), Some(2));

    shutdown(addr, handle);
}

/// Pipeline sessions persist as `(text, chase-mode)` like flat ones; a
/// restart re-chases the whole chain (core mode included) and the stitched
/// answer is byte-identical to the pre-restart one.
#[test]
fn pipeline_sessions_survive_a_restart() {
    let tmp = routes_store::testutil::TempDir::new("svc-pipeline-restart");
    let config = || ServerConfig {
        threads: 2,
        max_sessions: 4,
        session_shards: 2,
        read_timeout: Duration::from_secs(30),
        data_dir: Some(tmp.path().to_path_buf()),
        ..ServerConfig::default()
    };
    let probe = r#"{"tuples": [{"relation": "U", "row": 1}]}"#;
    let (id, first) = {
        let (addr, handle) = start(config());
        let mut c = Client::connect(addr);
        let create = format!("{{\"scenario\": {}}}", json_escape(&pipeline_text(true)));
        let (status, reply) = c.request("POST", "/sessions", Some(&create));
        assert_eq!(status, 201);
        let id = reply.get("session").unwrap().as_u64().unwrap();
        let (status, stitched) = c.request(
            "POST",
            &format!("/sessions/{id}/stitched-route"),
            Some(probe),
        );
        assert_eq!(status, 200);
        shutdown(addr, handle);
        (id, stitched)
    };
    let (addr, handle) = start(config());
    let mut c = Client::connect(addr);
    let (status, again) = c.request(
        "POST",
        &format!("/sessions/{id}/stitched-route"),
        Some(probe),
    );
    assert_eq!(status, 200, "recovered pipeline session answers probes");
    assert_eq!(
        again.encode(),
        first.encode(),
        "re-chasing the chain after recovery reproduces the stitched route"
    );
    let (status, _) = c.request(
        "POST",
        &format!("/sessions/{id}/edit"),
        Some(r#"{"ops": [{"op": "insert_tuple", "line": "S(9, 9)"}]}"#),
    );
    assert_eq!(status, 409, "recovery restores the edit rejection too");
    shutdown(addr, handle);
}
