//! Prometheus exposition tests.
//!
//! 1. **Golden file** — a fully deterministic `Metrics` + store +
//!    persistence snapshot rendered through `to_prometheus` must match
//!    `tests/golden/metrics.prom` byte for byte: family ordering, `# HELP`
//!    / `# TYPE` lines, label rendering, and cumulative histogram buckets
//!    are all pinned.
//! 2. **Reconciliation** — drive a live server over real sockets, then
//!    render the *same* frozen snapshots as JSON and as Prometheus text
//!    and walk every JSON field (scalars, per-shard counters, every
//!    histogram bucket) asserting the text agrees exactly. Unknown JSON
//!    keys fail the walk, so a counter added to one rendering but not the
//!    other cannot slip through.
//! 3. **Negotiation** — `?format=prometheus` and `Accept: text/plain`
//!    serve the text form with its content type; `?format=json` keeps
//!    JSON; an unknown format is a 400.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use routes_model::JoinSnapshot;
use routes_server::json::{parse, Json};
use routes_server::metrics::{Metrics, Phase, LATENCY_BUCKETS_US};
use routes_server::session::LOCK_WAIT_BUCKETS_US;
use routes_server::{Server, ServerConfig, ShardSnapshot, StoreSnapshot};
use routes_store::testutil::TempDir;
use routes_store::{PersistSnapshot, FSYNC_BUCKETS_US};

/// A deterministic store snapshot with two distinguishable shards.
fn fixed_store() -> StoreSnapshot {
    let shard = |base: u64| {
        let mut read = vec![0u64; LOCK_WAIT_BUCKETS_US.len() + 1];
        let mut write = vec![0u64; LOCK_WAIT_BUCKETS_US.len() + 1];
        read[0] = base;
        read[LOCK_WAIT_BUCKETS_US.len()] = 1;
        write[1] = base + 1;
        ShardSnapshot {
            sessions: base as usize,
            capacity: 8,
            hits: 10 + base,
            misses: base,
            inserts: 3 + base,
            removes: base,
            evictions: 1,
            demotions: 2,
            evict_scan_steps: 5 + base,
            write_locks: 7 + base,
            lock_wait_read_us: read,
            lock_wait_write_us: write,
        }
    };
    StoreSnapshot {
        capacity: 16,
        shards: vec![shard(1), shard(2)],
    }
}

fn fixed_persist() -> PersistSnapshot {
    let mut fsync = vec![0u64; FSYNC_BUCKETS_US.len() + 1];
    fsync[0] = 4;
    fsync[2] = 2;
    fsync[FSYNC_BUCKETS_US.len()] = 1;
    PersistSnapshot {
        wal_gen: 3,
        wal_appends: 41,
        wal_bytes: 8_192,
        wal_records_since_checkpoint: 9,
        fsync_batches: 7,
        fsync_records: 40,
        fsync_latency_us: fsync,
        snapshots_written: 2,
        replayed_records: 12,
        restored_sessions: 5,
        recovery_us: 1_234,
    }
}

fn fixed_join() -> JoinSnapshot {
    JoinSnapshot {
        batches: 11,
        rows_probed: 230,
        index_probes: 57,
        hash_builds: 6,
        hash_build_rows: 92,
    }
}

#[test]
fn exposition_matches_the_golden_file() {
    let m = Metrics::new();
    m.record_response(200, Duration::from_micros(80), Some("gold01"));
    m.record_response(201, Duration::from_micros(600), None);
    m.record_response(404, Duration::from_millis(2), None);
    m.record_response(500, Duration::from_secs(2), None);
    m.record_phase(Phase::Chase, Duration::from_micros(90));
    m.record_phase(Phase::Chase, Duration::from_micros(450));
    m.record_phase(Phase::Forest, Duration::from_millis(3));
    m.record_phase(Phase::Route, Duration::from_micros(40));
    m.record_phase(Phase::Print, Duration::from_micros(20));
    m.record_phase(Phase::Edit, Duration::from_micros(700));
    use std::sync::atomic::Ordering::Relaxed;
    m.bad_requests.store(2, Relaxed);
    m.connections_accepted.store(6, Relaxed);
    m.admission_queue_capacity.store(64, Relaxed);
    m.admission_queue_depth.store(1, Relaxed);
    m.admission_admitted.store(5, Relaxed);
    m.admission_shed.store(2, Relaxed);
    m.admission_timeouts.store(1, Relaxed);
    m.admission_reaped.store(1, Relaxed);
    m.record_queue_wait(Duration::from_micros(40));
    m.record_queue_wait(Duration::from_millis(8));
    m.sessions_created.store(5, Relaxed);
    m.sessions_deleted.store(1, Relaxed);
    m.sessions_evicted.store(2, Relaxed);
    m.one_routes_computed.store(3, Relaxed);
    m.all_routes_computed.store(4, Relaxed);
    m.forest_cache_hits.store(2, Relaxed);
    m.forest_cache_misses.store(2, Relaxed);
    m.edits_applied.store(3, Relaxed);
    m.edits_rejected.store(1, Relaxed);
    m.edit_ops_applied.store(9, Relaxed);
    m.edit_forests_kept.store(4, Relaxed);
    m.edit_forests_invalidated.store(2, Relaxed);
    m.pipeline_sessions_created.store(2, Relaxed);
    m.pipeline_stage_chases.store(5, Relaxed);
    m.pipeline_core_runs.store(3, Relaxed);
    m.pipeline_core_tuples_removed.store(7, Relaxed);
    m.pipeline_stitched_routes.store(4, Relaxed);
    m.pipeline_stitched_hops.store(10, Relaxed);

    let text = m.to_prometheus(&fixed_store(), Some(&fixed_persist()), &fixed_join(), 4);
    // Uptime is the only wall-clock-dependent sample; normalize it so the
    // golden stays byte-stable.
    let normalized: String = text
        .lines()
        .map(|line| {
            if line.starts_with("routes_uptime_seconds ") {
                "routes_uptime_seconds 0".to_owned()
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &normalized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file exists");
    assert_eq!(
        normalized, golden,
        "to_prometheus drifted from tests/golden/metrics.prom \
         (set UPDATE_GOLDEN=1 to regenerate, then review the diff)"
    );
}

/// Parse an exposition into `series-with-labels -> value` plus
/// `series -> (exemplar trace_id, exemplar value)` for bucket lines
/// carrying an OpenMetrics-style ` # {trace_id="…"} N` annotation,
/// checking `# HELP` precedes `# TYPE` and every sample's base name was
/// announced.
fn parse_prom(text: &str) -> (HashMap<String, u64>, HashMap<String, (String, u64)>) {
    let mut series = HashMap::new();
    let mut exemplars = HashMap::new();
    let mut announced: Vec<String> = Vec::new();
    let mut pending_help: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap().to_owned();
            pending_help = Some(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap().to_owned();
            let kind = it.next().unwrap();
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown family kind in {line:?}"
            );
            assert_eq!(
                pending_help.take().as_deref(),
                Some(name.as_str()),
                "# TYPE for {name} not directly preceded by its # HELP"
            );
            announced.push(name);
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        // Split off an exemplar annotation before the value parse.
        let (sample, exemplar) = match line.split_once(" # ") {
            Some((sample, rest)) => (sample, Some(rest)),
            None => (line, None),
        };
        let (key, value) = sample.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let base = key.split('{').next().unwrap();
        let family = announced.iter().any(|name| {
            base == name
                || base == format!("{name}_bucket")
                || base == format!("{name}_count")
                || base == format!("{name}_sum")
        });
        assert!(family, "sample {base} has no announced family");
        if let Some(rest) = exemplar {
            let (labels, ex_value) = rest.rsplit_once(' ').unwrap();
            let trace = labels
                .strip_prefix("{trace_id=\"")
                .and_then(|l| l.strip_suffix("\"}"))
                .unwrap_or_else(|| panic!("malformed exemplar labels in {line:?}"));
            exemplars.insert(
                key.to_owned(),
                (trace.to_owned(), ex_value.parse::<u64>().unwrap()),
            );
        }
        let prior = series.insert(key.to_owned(), value.parse::<u64>().unwrap());
        assert!(prior.is_none(), "duplicate series {key}");
    }
    (series, exemplars)
}

struct PromCheck {
    series: HashMap<String, u64>,
    exemplars: HashMap<String, (String, u64)>,
}

impl PromCheck {
    /// Assert a series exists with `value`, consuming it.
    fn eat(&mut self, key: &str, value: u64) {
        match self.series.remove(key) {
            Some(v) => assert_eq!(v, value, "series {key} disagrees with JSON"),
            None => panic!("series {key} missing from exposition"),
        }
    }

    /// Assert a JSON per-bucket histogram matches the cumulative prom
    /// form: every `_bucket` including `+Inf`, and `_count`.
    fn eat_histogram(&mut self, name: &str, labels: &str, hist: &Json, bounds: &[u64]) {
        let buckets = hist.as_array().expect("histogram is an array");
        assert_eq!(buckets.len(), bounds.len() + 1);
        let mut cumulative = 0u64;
        for (i, bucket) in buckets.iter().enumerate() {
            let le = bucket.get("le_us").unwrap().as_str().unwrap();
            let expected_le = bounds
                .get(i)
                .map_or_else(|| "inf".to_owned(), |b| b.to_string());
            assert_eq!(le, expected_le, "JSON bucket bound order drifted");
            cumulative += bucket.get("count").unwrap().as_u64().unwrap();
            let prom_le = bounds
                .get(i)
                .map_or_else(|| "+Inf".to_owned(), |b| b.to_string());
            let key = if labels.is_empty() {
                format!("{name}_bucket{{le=\"{prom_le}\"}}")
            } else {
                format!("{name}_bucket{{{labels},le=\"{prom_le}\"}}")
            };
            self.eat(&key, cumulative);
        }
        let count_key = if labels.is_empty() {
            format!("{name}_count")
        } else {
            format!("{name}_count{{{labels}}}")
        };
        self.eat(&count_key, cumulative);
    }
}

fn obj_fields(json: &Json) -> &[(String, Json)] {
    match json {
        Json::Object(fields) => fields,
        other => panic!("expected object, got {other:?}"),
    }
}

fn as_u64(v: &Json) -> u64 {
    v.as_u64().expect("numeric JSON field")
}

/// Walk every field of the JSON snapshot, consuming the matching prom
/// series. Unknown keys panic, so the two renderings cannot drift apart
/// silently.
fn reconcile(json: &Json, check: &mut PromCheck) {
    for (key, value) in obj_fields(json) {
        match key.as_str() {
            "version" => check.eat(
                &format!(
                    "routes_build_info{{version=\"{}\"}}",
                    value.as_str().unwrap()
                ),
                1,
            ),
            "uptime_seconds" => check.eat("routes_uptime_seconds", as_u64(value)),
            "threads" => check.eat("routes_threads", as_u64(value)),
            "requests_total" => check.eat("routes_requests_total", as_u64(value)),
            "responses_2xx" => check.eat("routes_responses_total{class=\"2xx\"}", as_u64(value)),
            "responses_4xx" => check.eat("routes_responses_total{class=\"4xx\"}", as_u64(value)),
            "responses_5xx" => check.eat("routes_responses_total{class=\"5xx\"}", as_u64(value)),
            "bad_requests" => check.eat("routes_bad_requests_total", as_u64(value)),
            "connections_accepted" => {
                check.eat("routes_connections_accepted_total", as_u64(value));
            }
            "admission" => {
                for (adm_key, v) in obj_fields(value) {
                    match adm_key.as_str() {
                        "queue_capacity" => {
                            check.eat("routes_admission_queue_capacity", as_u64(v));
                        }
                        "queue_depth" => check.eat("routes_admission_queue_depth", as_u64(v)),
                        "admitted" => check.eat("routes_admission_admitted_total", as_u64(v)),
                        "shed" => check.eat("routes_admission_shed_total", as_u64(v)),
                        "timeouts" => check.eat("routes_admission_timeouts_total", as_u64(v)),
                        "reaped" => check.eat("routes_admission_reaped_total", as_u64(v)),
                        "queue_wait_us" => check.eat_histogram(
                            "routes_admission_queue_wait_us",
                            "",
                            v,
                            &LATENCY_BUCKETS_US,
                        ),
                        other => panic!("unknown admission field `{other}`"),
                    }
                }
            }
            "live_sessions" => check.eat("routes_live_sessions", as_u64(value)),
            "sessions_created" => check.eat("routes_sessions_created_total", as_u64(value)),
            "sessions_deleted" => check.eat("routes_sessions_deleted_total", as_u64(value)),
            "sessions_evicted" => check.eat("routes_sessions_evicted_total", as_u64(value)),
            "one_routes_computed" => {
                check.eat("routes_one_routes_computed_total", as_u64(value));
            }
            "all_routes_computed" => {
                check.eat("routes_all_routes_computed_total", as_u64(value));
            }
            "forest_cache_hits" => check.eat("routes_forest_cache_hits_total", as_u64(value)),
            "forest_cache_misses" => {
                check.eat("routes_forest_cache_misses_total", as_u64(value));
            }
            "edits" => {
                for (edit_key, v) in obj_fields(value) {
                    match edit_key.as_str() {
                        "applied" => check.eat("routes_edits_applied_total", as_u64(v)),
                        "rejected" => check.eat("routes_edits_rejected_total", as_u64(v)),
                        "ops_applied" => check.eat("routes_edit_ops_applied_total", as_u64(v)),
                        "forests_kept" => {
                            check.eat("routes_edit_forests_kept_total", as_u64(v));
                        }
                        "forests_invalidated" => {
                            check.eat("routes_edit_forests_invalidated_total", as_u64(v));
                        }
                        other => panic!("unknown edits field `{other}`"),
                    }
                }
            }
            "pipeline" => {
                for (pipe_key, v) in obj_fields(value) {
                    match pipe_key.as_str() {
                        "sessions_created" => {
                            check.eat("routes_pipeline_sessions_created_total", as_u64(v));
                        }
                        "stage_chases" => {
                            check.eat("routes_pipeline_stage_chases_total", as_u64(v));
                        }
                        "core_runs" => check.eat("routes_pipeline_core_runs_total", as_u64(v)),
                        "core_tuples_removed" => {
                            check.eat("routes_pipeline_core_tuples_removed_total", as_u64(v));
                        }
                        "stitched_routes" => {
                            check.eat("routes_pipeline_stitched_routes_total", as_u64(v));
                        }
                        "stitched_hops" => {
                            check.eat("routes_pipeline_stitched_hops_total", as_u64(v));
                        }
                        other => panic!("unknown pipeline field `{other}`"),
                    }
                }
            }
            "latency_us" => {
                check.eat_histogram("routes_request_latency_us", "", value, &LATENCY_BUCKETS_US)
            }
            "window" => {
                for (win_key, v) in obj_fields(value) {
                    match win_key.as_str() {
                        "seconds" => check.eat("routes_window_seconds", as_u64(v)),
                        "requests" => check.eat("routes_window_requests", as_u64(v)),
                        "errors" => check.eat("routes_window_errors", as_u64(v)),
                        "rps_milli" => check.eat("routes_window_rps_milli", as_u64(v)),
                        "error_rate_milli" => {
                            check.eat("routes_window_error_rate_milli", as_u64(v));
                        }
                        "p50_us" => check.eat("routes_window_latency_p50_us", as_u64(v)),
                        "p90_us" => check.eat("routes_window_latency_p90_us", as_u64(v)),
                        "p99_us" => check.eat("routes_window_latency_p99_us", as_u64(v)),
                        other => panic!("unknown window field `{other}`"),
                    }
                }
            }
            "exemplars" => {
                // Each JSON exemplar must match the text annotation on the
                // same latency bucket: trace id and duration agree.
                for entry in value.as_array().expect("exemplars is an array") {
                    let le = entry.get("le_us").unwrap().as_str().unwrap();
                    let trace = entry.get("trace_id").unwrap().as_str().unwrap();
                    let dur = as_u64(entry.get("dur_us").unwrap());
                    let prom_le = if le == "inf" { "+Inf" } else { le };
                    let key = format!("routes_request_latency_us_bucket{{le=\"{prom_le}\"}}");
                    match check.exemplars.remove(&key) {
                        Some((text_trace, text_dur)) => {
                            assert_eq!(text_trace, trace, "exemplar trace drifted on {key}");
                            assert_eq!(text_dur, dur, "exemplar duration drifted on {key}");
                        }
                        None => panic!("JSON exemplar on {key} missing from the text form"),
                    }
                }
            }
            "phases" => {
                for (phase, stats) in obj_fields(value) {
                    let labels = format!("phase=\"{phase}\"");
                    for (stat_key, stat) in obj_fields(stats) {
                        match stat_key.as_str() {
                            "count" => { /* == the histogram's _count, checked below */ }
                            "total_us" => check.eat(
                                &format!("routes_phase_latency_us_sum{{{labels}}}"),
                                as_u64(stat),
                            ),
                            "latency_us" => check.eat_histogram(
                                "routes_phase_latency_us",
                                &labels,
                                stat,
                                &LATENCY_BUCKETS_US,
                            ),
                            other => panic!("unknown phase stat `{other}`"),
                        }
                    }
                }
            }
            "join" => {
                for (join_key, v) in obj_fields(value) {
                    match join_key.as_str() {
                        "batches" => check.eat("routes_join_batches_total", as_u64(v)),
                        "rows_probed" => check.eat("routes_join_rows_probed_total", as_u64(v)),
                        "index_probes" => {
                            check.eat("routes_join_index_probes_total", as_u64(v));
                        }
                        "hash_builds" => check.eat("routes_join_hash_builds_total", as_u64(v)),
                        "hash_build_rows" => {
                            check.eat("routes_join_hash_build_rows_total", as_u64(v));
                        }
                        other => panic!("unknown join field `{other}`"),
                    }
                }
            }
            "session_store" => reconcile_store(value, check),
            "persistence" => reconcile_persist(value, check),
            other => panic!("unknown /metrics JSON field `{other}` — extend the walker"),
        }
    }
}

fn reconcile_store(json: &Json, check: &mut PromCheck) {
    for (key, value) in obj_fields(json) {
        match key.as_str() {
            "capacity" => check.eat("routes_session_store_capacity", as_u64(value)),
            "shard_count" => check.eat("routes_session_store_shards", as_u64(value)),
            "live_sessions" => { /* duplicate of the top-level gauge */ }
            "hits" => check.eat("routes_session_store_hits_total", as_u64(value)),
            "misses" => check.eat("routes_session_store_misses_total", as_u64(value)),
            "inserts" => check.eat("routes_session_store_inserts_total", as_u64(value)),
            "removes" => check.eat("routes_session_store_removes_total", as_u64(value)),
            "evictions" => check.eat("routes_session_store_evictions_total", as_u64(value)),
            "evict_scan_steps" => {
                check.eat("routes_session_store_evict_scan_steps_total", as_u64(value));
            }
            "write_locks" => check.eat("routes_session_store_write_locks_total", as_u64(value)),
            "shards" => {
                for (i, shard) in value.as_array().unwrap().iter().enumerate() {
                    let labels = format!("shard=\"{i}\"");
                    for (shard_key, v) in obj_fields(shard) {
                        let gauge =
                            |suffix: &str| format!("routes_session_shard_{suffix}{{{labels}}}");
                        let counter = |suffix: &str| {
                            format!("routes_session_shard_{suffix}_total{{{labels}}}")
                        };
                        match shard_key.as_str() {
                            "sessions" => check.eat(&gauge("sessions"), as_u64(v)),
                            "capacity" => check.eat(&gauge("capacity"), as_u64(v)),
                            "hits" => check.eat(&counter("hits"), as_u64(v)),
                            "misses" => check.eat(&counter("misses"), as_u64(v)),
                            "inserts" => check.eat(&counter("inserts"), as_u64(v)),
                            "removes" => check.eat(&counter("removes"), as_u64(v)),
                            "evictions" => check.eat(&counter("evictions"), as_u64(v)),
                            "demotions" => check.eat(&counter("demotions"), as_u64(v)),
                            "evict_scan_steps" => {
                                check.eat(&counter("evict_scan_steps"), as_u64(v));
                            }
                            "write_locks" => check.eat(&counter("write_locks"), as_u64(v)),
                            "lock_wait_read_us" => check.eat_histogram(
                                "routes_session_shard_lock_wait_us",
                                &format!("{labels},mode=\"read\""),
                                v,
                                &LOCK_WAIT_BUCKETS_US,
                            ),
                            "lock_wait_write_us" => check.eat_histogram(
                                "routes_session_shard_lock_wait_us",
                                &format!("{labels},mode=\"write\""),
                                v,
                                &LOCK_WAIT_BUCKETS_US,
                            ),
                            other => panic!("unknown shard field `{other}`"),
                        }
                    }
                }
            }
            other => panic!("unknown session_store field `{other}`"),
        }
    }
}

fn reconcile_persist(json: &Json, check: &mut PromCheck) {
    for (key, value) in obj_fields(json) {
        match key.as_str() {
            "wal_gen" => check.eat("routes_wal_generation", as_u64(value)),
            "wal_appends" => check.eat("routes_wal_appends_total", as_u64(value)),
            "wal_bytes" => check.eat("routes_wal_bytes_total", as_u64(value)),
            "wal_records_since_checkpoint" => {
                check.eat("routes_wal_records_since_checkpoint", as_u64(value));
            }
            "fsync_batches" => check.eat("routes_fsync_batches_total", as_u64(value)),
            "fsync_records" => check.eat("routes_fsync_records_total", as_u64(value)),
            "fsync_latency_us" => {
                check.eat_histogram("routes_fsync_latency_us", "", value, &FSYNC_BUCKETS_US)
            }
            "snapshots_written" => check.eat("routes_snapshots_written_total", as_u64(value)),
            "replayed_records" => check.eat("routes_wal_replayed_records", as_u64(value)),
            "restored_sessions" => check.eat("routes_wal_restored_sessions", as_u64(value)),
            "recovery_us" => check.eat("routes_recovery_us", as_u64(value)),
            other => panic!("unknown persistence field `{other}`"),
        }
    }
}

fn scenario_json(tag: i64) -> String {
    let text = format!(
        "source schema:\n  S(a, b)\ntarget schema:\n  T(a, b)\n\
         dependencies:\n  m: S(x, y) -> T(x, y)\nsource data:\n  S({tag}, {})\n",
        tag + 1
    );
    format!("{{\"scenario\": {}}}", Json::from(text).encode())
}

/// One raw HTTP exchange returning status, headers, and body.
fn raw_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes()).unwrap();
    writer.write_all(body.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut response_headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').unwrap();
        response_headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (status, response_headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn text_and_json_expositions_reconcile_exactly_under_live_traffic() {
    let tmp = TempDir::new("prom-reconcile");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 3,
            max_sessions: 4,
            session_shards: 2,
            data_dir: Some(tmp.path().to_path_buf()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let app = server.app();
    let (addr, handle) = server.spawn().expect("spawn");

    // Live traffic across every counter family: creates past capacity
    // (evictions), gets, a delete, both forest paths, one-route, errors.
    let mut ids = Vec::new();
    for tag in 0..6 {
        let (status, _, body) =
            raw_request(addr, "POST", "/sessions", &[], Some(&scenario_json(tag)));
        assert_eq!(status, 201, "create failed: {body}");
        ids.push(as_u64(parse(&body).unwrap().get("session").unwrap()));
    }
    let select = r#"{"tuples": [{"relation": "T", "row": 0}]}"#;
    let live = *ids.last().unwrap();
    for _ in 0..2 {
        let (status, _, _) = raw_request(
            addr,
            "POST",
            &format!("/sessions/{live}/all-routes"),
            &[],
            Some(select),
        );
        assert_eq!(status, 200);
    }
    let (status, _, _) = raw_request(
        addr,
        "POST",
        &format!("/sessions/{live}/one-route"),
        &[],
        Some(select),
    );
    assert_eq!(status, 200);
    // An edit far from T(…, row 0): the cached forest survives, and the
    // post-edit all-routes is still a cache hit.
    let edit = r#"{"ops": [{"op": "insert_tuple", "line": "S(100, 101)"}]}"#;
    let (status, _, body) = raw_request(
        addr,
        "POST",
        &format!("/sessions/{live}/edit"),
        &[],
        Some(edit),
    );
    assert_eq!(status, 200, "edit failed: {body}");
    let edit_json = parse(&body).unwrap();
    assert_eq!(as_u64(edit_json.get("edit_seq").unwrap()), 1);
    assert_eq!(as_u64(edit_json.get("forests_kept").unwrap()), 1);
    let (status, _, body) = raw_request(
        addr,
        "POST",
        &format!("/sessions/{live}/all-routes"),
        &[],
        Some(select),
    );
    assert_eq!(status, 200);
    assert_eq!(
        parse(&body).unwrap().get("cached").unwrap().as_bool(),
        Some(true),
        "surviving forest keeps serving cached answers"
    );
    // A malformed edit feeds edits_rejected.
    let (status, _, _) = raw_request(
        addr,
        "POST",
        &format!("/sessions/{live}/edit"),
        &[],
        Some(r#"{"ops": [{"op": "delete_tuple", "relation": "S", "row": 99}]}"#),
    );
    assert_eq!(status, 422);
    raw_request(addr, "GET", &format!("/sessions/{live}"), &[], None);
    raw_request(addr, "DELETE", &format!("/sessions/{live}"), &[], None);
    raw_request(addr, "GET", "/sessions/999999", &[], None); // 404
    let (status, headers, _) = raw_request(addr, "PATCH", "/metrics", &[], None);
    assert_eq!(status, 405, "known route, unsupported method");
    assert_eq!(header(&headers, "allow"), Some("GET"));

    // Quiesce, then reconcile from one frozen snapshot pair. Uptime is
    // read per rendering; retry if the second boundary lands between.
    let store = app.store.snapshot();
    let persist = app.persistence().map(|p| p.metrics.snapshot());
    let join = routes_model::joinstats::snapshot();
    let threads = app.pool.threads();
    let (json, text) = loop {
        let json = app
            .metrics
            .to_json_with_store(&store, persist.as_ref(), &join, threads);
        let text = app
            .metrics
            .to_prometheus(&store, persist.as_ref(), &join, threads);
        let json_uptime = as_u64(json.get("uptime_seconds").unwrap());
        let text_uptime = text
            .lines()
            .find_map(|l| l.strip_prefix("routes_uptime_seconds "))
            .unwrap()
            .parse::<u64>()
            .unwrap();
        if json_uptime == text_uptime {
            break (json, text);
        }
    };
    let (series, exemplars) = parse_prom(&text);
    let mut check = PromCheck { series, exemplars };
    reconcile(&json, &mut check);
    assert!(
        check.series.is_empty(),
        "exposition has series the JSON never produced: {:?}",
        check.series.keys().collect::<Vec<_>>()
    );
    assert!(
        check.exemplars.is_empty(),
        "text exemplars the JSON never produced: {:?}",
        check.exemplars.keys().collect::<Vec<_>>()
    );

    // Sanity: the traffic actually exercised the interesting families.
    assert!(
        as_u64(json.get("sessions_evicted").unwrap()) >= 1,
        "wanted evictions"
    );
    // hits: second pre-edit all-routes + the post-edit surviving-forest hit.
    assert_eq!(as_u64(json.get("forest_cache_hits").unwrap()), 2);
    assert_eq!(as_u64(json.get("forest_cache_misses").unwrap()), 1);
    let join_block = json.get("join").unwrap();
    assert!(
        as_u64(join_block.get("batches").unwrap()) >= 1,
        "the session chases must have run the batch executor"
    );
    assert!(
        as_u64(join_block.get("hash_builds").unwrap()) >= 1,
        "chasing indexes the source relations"
    );
    let edits = json.get("edits").unwrap();
    assert_eq!(as_u64(edits.get("applied").unwrap()), 1);
    assert_eq!(as_u64(edits.get("rejected").unwrap()), 1);
    assert_eq!(as_u64(edits.get("forests_kept").unwrap()), 1);
    assert!(
        as_u64(
            json.get("persistence")
                .unwrap()
                .get("fsync_batches")
                .unwrap()
        ) >= 1,
        "synced creates must have fsynced"
    );

    // Negotiation over the live socket.
    let (status, headers, body) = raw_request(addr, "GET", "/metrics?format=prometheus", &[], None);
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    assert!(body.contains("# TYPE routes_requests_total counter"));
    assert!(body.contains(
        "routes_session_shard_lock_wait_us_bucket{shard=\"1\",mode=\"write\",le=\"+Inf\"}"
    ));

    let (status, headers, _) = raw_request(
        addr,
        "GET",
        "/metrics",
        &[("accept", "text/plain; version=0.0.4")],
        None,
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );

    let (status, headers, body) = raw_request(addr, "GET", "/metrics?format=json", &[], None);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    assert!(parse(&body).is_ok());

    let (status, _, body) = raw_request(addr, "GET", "/metrics?format=xml", &[], None);
    assert_eq!(status, 400);
    assert!(body.contains("unknown metrics format"));

    // Exemplar → trace round-trip: every latency exemplar's trace id is
    // accepted by the trace endpoint (spans, when still in the ring, all
    // belong to it), and `?limit=` caps and validates the dump.
    let exemplar_entries = json.get("exemplars").unwrap().as_array().unwrap();
    assert!(
        !exemplar_entries.is_empty(),
        "live traffic must leave latency exemplars"
    );
    for entry in exemplar_entries {
        let trace = entry.get("trace_id").unwrap().as_str().unwrap();
        let (status, _, body) =
            raw_request(addr, "GET", &format!("/trace?trace_id={trace}"), &[], None);
        assert_eq!(status, 200);
        for span in parse(&body)
            .unwrap()
            .get("spans")
            .unwrap()
            .as_array()
            .unwrap()
        {
            assert_eq!(span.get("trace_id").unwrap().as_str().unwrap(), trace);
        }
    }
    let (status, _, body) = raw_request(addr, "GET", "/trace?limit=2", &[], None);
    assert_eq!(status, 200);
    assert!(
        parse(&body)
            .unwrap()
            .get("spans")
            .unwrap()
            .as_array()
            .unwrap()
            .len()
            <= 2,
        "limit caps the span dump"
    );
    let (status, _, body) = raw_request(addr, "GET", "/trace?limit=nope", &[], None);
    assert_eq!(status, 400);
    assert!(body.contains("malformed limit"));

    let (status, _, _) = raw_request(addr, "POST", "/shutdown", &[], None);
    assert_eq!(status, 200);
    handle.join().expect("server exits");
}

/// An in-process app for the `/profile` endpoint (the profiler's state is
/// process-global; no sockets needed).
fn bare_app() -> routes_server::App {
    routes_server::App::with_observability(
        routes_server::SessionStore::with_shards(4, 1),
        routes_pool::Pool::sequential(),
        None,
        std::sync::Arc::new(routes_obs::Tracer::disabled()),
        Duration::from_millis(500),
    )
}

fn get(path: &str, query: &str, accept: Option<&str>) -> routes_server::http::Request {
    routes_server::http::Request {
        method: "GET".to_owned(),
        path: path.to_owned(),
        query: query.to_owned(),
        headers: accept
            .map(|a| ("accept".to_owned(), a.to_owned()))
            .into_iter()
            .collect(),
        body: Vec::new(),
        keep_alive: false,
    }
}

#[test]
fn profile_endpoint_negotiates_content_types() {
    let app = bare_app();

    // Default (no Accept) and */* serve JSON.
    let resp = app.handle_traced(&get("/profile", "", None));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, "application/json");
    let json = parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert!(json.get("enabled").is_some());
    let resp = app.handle_traced(&get("/profile", "", Some("*/*")));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, "application/json");

    // text/plain negotiates the flamegraph-collapsed form; `?format=`
    // overrides negotiation in both directions.
    let resp = app.handle_traced(&get("/profile", "", Some("text/plain")));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, "text/plain; charset=utf-8");
    let resp = app.handle_traced(&get(
        "/profile",
        "format=collapsed",
        Some("application/json"),
    ));
    assert_eq!(resp.content_type, "text/plain; charset=utf-8");
    let resp = app.handle_traced(&get("/profile", "format=json", Some("text/plain")));
    assert_eq!(resp.content_type, "application/json");

    // An Accept the endpoint cannot satisfy is 406; a bogus format or
    // delta value is the caller's error.
    let resp = app.handle_traced(&get("/profile", "", Some("application/xml")));
    assert_eq!(resp.status, 406);
    let resp = app.handle_traced(&get("/profile", "format=svg", None));
    assert_eq!(resp.status, 400);
    let resp = app.handle_traced(&get("/profile", "delta=maybe", None));
    assert_eq!(resp.status, 400);

    // Only GET is served.
    let mut post = get("/profile", "", None);
    post.method = "POST".to_owned();
    let resp = app.handle_traced(&post);
    assert_eq!(resp.status, 405);
}

#[test]
fn profile_samples_render_as_phases_and_a_weighted_tree() {
    let app = bare_app();

    // Deterministic samples: open a request→chase frame stack by hand and
    // tick the sampler five times (no ticker thread involved).
    let _on = routes_obs::manual_profile();
    {
        let _request = routes_obs::profile_frame("profreq");
        let _chase = routes_obs::profile_frame("profchase");
        for _ in 0..5 {
            routes_obs::sample_once();
        }
    }

    let resp = app.handle_traced(&get("/profile", "", None));
    assert_eq!(resp.status, 200);
    let json = parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    // Inclusive per-phase totals: the parent frame covers its child.
    let phases = json.get("phases").unwrap();
    assert!(as_u64(phases.get("profreq").unwrap()) >= 5);
    assert!(as_u64(phases.get("profchase").unwrap()) >= 5);
    // The tree nests profchase under profreq with the same weight.
    let tree = json.get("tree").unwrap().as_array().unwrap();
    let node = tree
        .iter()
        .find(|n| n.get("name").unwrap().as_str() == Some("profreq"))
        .expect("profreq root in tree");
    let child = node
        .get("children")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|n| n.get("name").unwrap().as_str() == Some("profchase"))
        .expect("profchase nested under profreq");
    assert!(as_u64(child.get("samples").unwrap()) >= 5);

    // The collapsed form carries the same stack as `a;b N` lines.
    let resp = app.handle_traced(&get("/profile", "format=collapsed", None));
    let text = String::from_utf8(resp.body).unwrap();
    assert!(
        text.lines().any(|l| l.starts_with("profreq;profchase ")),
        "collapsed output missing the sampled stack: {text:?}"
    );
}
