//! Nested relational model for hierarchical (XML-style) schema mappings.
//!
//! The paper's implementation handles relational/XML-to-relational/XML
//! mappings by working in a nested relational model (§3.3). This crate
//! provides that model and its **relational encoding**, which is how the
//! route algorithms (defined over flat instances) run on hierarchical data:
//!
//! * [`NestedSchema`] — a tree of record types, each with atomic attributes
//!   and set-valued children.
//! * [`NestedInstance`] — a node arena holding concrete trees.
//! * [`encode`] — lower a nested schema/instance to a flat [`routes_model::Schema`] /
//!   [`routes_model::Instance`]: each record type becomes a relation whose first two
//!   columns are the node's `self` id and its `parent` id (roots use the
//!   virtual parent id `0`). Node identity ↔ tuple identity maps are
//!   returned so target-side selections can be phrased as "the element at
//!   depth *d*" (paper Figure 11).
//! * [`copy_tree_tgd`] — generate the parser text of a tgd that copies a
//!   root-to-leaf path between two encodings (the deep-hierarchy scenario's
//!   single s-t tgd, and the flat-hierarchy copying tgds).
//! * [`to_xmlish`] — indented XML-style rendering for examples.
//!
//! Why the encoding preserves the paper's Figure 11 behaviour: probing a
//! deeply nested element pre-binds the variables of every level at and below
//! it in the copying tgd's anchor atom, plus the parent chain resolves by
//! indexed `self`-column lookups, so the residual `findHom` queries shrink
//! with depth — the same mechanism the paper attributes to "more variables
//! will be instantiated in the selection queries".

pub mod encode;
pub mod instance;
pub mod schema;
pub mod xmlish;

pub use encode::{
    copy_tree_tgd, decode_instance, encode_instance, encode_schema, self_id, Encoded,
    EncodedSchema, VIRTUAL_ROOT,
};
pub use instance::{NestedInstance, Node, NodeId};
pub use schema::{NestedSchema, NodeType, NodeTypeId};
pub use xmlish::to_xmlish;
