//! Nested schemas: trees of record types.

use std::collections::HashMap;

/// Index of a record type within a [`NestedSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeTypeId(pub u32);

/// A record type: a name, atomic attributes, and set-valued child types.
#[derive(Debug, Clone)]
pub struct NodeType {
    name: String,
    attrs: Vec<String>,
    parent: Option<NodeTypeId>,
    children: Vec<NodeTypeId>,
}

impl NodeType {
    /// The type name (also the relation name in the encoding).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Atomic attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The parent type, if this is not a root type.
    pub fn parent(&self) -> Option<NodeTypeId> {
        self.parent
    }

    /// Child types.
    pub fn children(&self) -> &[NodeTypeId] {
        &self.children
    }
}

/// A nested schema: a forest of record types.
#[derive(Debug, Clone, Default)]
pub struct NestedSchema {
    types: Vec<NodeType>,
    roots: Vec<NodeTypeId>,
    by_name: HashMap<String, NodeTypeId>,
}

impl NestedSchema {
    /// An empty nested schema.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(&mut self, name: &str, attrs: &[&str], parent: Option<NodeTypeId>) -> NodeTypeId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate record type `{name}`"
        );
        let id = NodeTypeId(self.types.len() as u32);
        self.types.push(NodeType {
            name: name.to_owned(),
            attrs: attrs.iter().map(|a| (*a).to_owned()).collect(),
            parent,
            children: Vec::new(),
        });
        self.by_name.insert(name.to_owned(), id);
        if let Some(p) = parent {
            self.types[p.0 as usize].children.push(id);
        } else {
            self.roots.push(id);
        }
        id
    }

    /// Add a root record type (a top-level set).
    pub fn add_root(&mut self, name: &str, attrs: &[&str]) -> NodeTypeId {
        self.add(name, attrs, None)
    }

    /// Add a child record type nested under `parent`.
    pub fn add_child(&mut self, parent: NodeTypeId, name: &str, attrs: &[&str]) -> NodeTypeId {
        self.add(name, attrs, Some(parent))
    }

    /// The type for an id.
    pub fn node_type(&self, id: NodeTypeId) -> &NodeType {
        &self.types[id.0 as usize]
    }

    /// Look up a type by name.
    pub fn type_by_name(&self, name: &str) -> Option<NodeTypeId> {
        self.by_name.get(name).copied()
    }

    /// Root types.
    pub fn roots(&self) -> &[NodeTypeId] {
        &self.roots
    }

    /// Number of record types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Iterate over all types with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (NodeTypeId, &NodeType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (NodeTypeId(i as u32), t))
    }

    /// Nesting depth of a type: 1 for roots, parent depth + 1 otherwise.
    pub fn depth_of(&self, id: NodeTypeId) -> usize {
        let mut depth = 1;
        let mut cur = id;
        while let Some(p) = self.node_type(cur).parent() {
            depth += 1;
            cur = p;
        }
        depth
    }

    /// Maximum nesting depth (Table 1's "Nest. depth").
    pub fn max_depth(&self) -> usize {
        self.iter()
            .map(|(id, _)| self.depth_of(id))
            .max()
            .unwrap_or(0)
    }

    /// Number of atomic elements (Table 1's "Atomic elems"): the attribute
    /// count across all record types.
    pub fn atomic_elements(&self) -> usize {
        self.types.iter().map(|t| t.attrs.len()).sum()
    }

    /// Total elements (Table 1's "Total elems"): atomic elements plus one
    /// element per record type (the set/record nodes themselves).
    pub fn total_elements(&self) -> usize {
        self.atomic_elements() + self.num_types()
    }

    /// The root-to-`id` chain of types, root first.
    pub fn path_to(&self, id: NodeTypeId) -> Vec<NodeTypeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.node_type(cur).parent() {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region_chain() -> (NestedSchema, Vec<NodeTypeId>) {
        let mut s = NestedSchema::new();
        let region = s.add_root("Region", &["name"]);
        let nation = s.add_child(region, "Nation", &["name"]);
        let customer = s.add_child(nation, "Customer", &["name", "acctbal"]);
        let orders = s.add_child(customer, "Orders", &["totalprice"]);
        let lineitem = s.add_child(orders, "Lineitem", &["quantity", "price"]);
        (s, vec![region, nation, customer, orders, lineitem])
    }

    #[test]
    fn depths_and_paths() {
        let (s, ids) = region_chain();
        assert_eq!(s.depth_of(ids[0]), 1);
        assert_eq!(s.depth_of(ids[4]), 5);
        assert_eq!(s.max_depth(), 5);
        assert_eq!(s.path_to(ids[4]), ids);
        assert_eq!(s.roots(), &[ids[0]]);
    }

    #[test]
    fn element_counts() {
        let (s, _) = region_chain();
        assert_eq!(s.num_types(), 5);
        assert_eq!(s.atomic_elements(), 1 + 1 + 2 + 1 + 2);
        assert_eq!(s.total_elements(), 7 + 5);
    }

    #[test]
    fn lookup_by_name() {
        let (s, ids) = region_chain();
        assert_eq!(s.type_by_name("Customer"), Some(ids[2]));
        assert_eq!(s.type_by_name("Nope"), None);
        assert_eq!(s.node_type(ids[1]).parent(), Some(ids[0]));
        assert_eq!(s.node_type(ids[1]).children(), &[ids[2]]);
    }

    #[test]
    #[should_panic(expected = "duplicate record type")]
    fn duplicate_names_panic() {
        let mut s = NestedSchema::new();
        s.add_root("A", &[]);
        s.add_root("A", &[]);
    }
}
