//! Nested instances: concrete trees over a [`crate::NestedSchema`].

use routes_model::Value;

use crate::schema::{NestedSchema, NodeTypeId};

/// Index of a node within a [`NestedInstance`].
///
/// Node id 0 is reserved for the virtual root (so encoded `self` ids, which
/// are `node_id + 1`... see [`crate::encode`]); real nodes start at 0 here
/// and the encoding shifts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One record node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's record type.
    pub ty: NodeTypeId,
    /// Parent node, or `None` for roots.
    pub parent: Option<NodeId>,
    /// Atomic attribute values (matching the type's attrs).
    pub values: Vec<Value>,
    /// Child nodes, in insertion order.
    pub children: Vec<NodeId>,
}

/// A forest of record nodes.
#[derive(Debug, Clone, Default)]
pub struct NestedInstance {
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
}

impl NestedInstance {
    /// An empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if let Some(p) = node.parent {
            self.nodes[p.0 as usize].children.push(id);
        } else {
            self.roots.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Add a root node.
    ///
    /// # Panics
    /// Panics if the value count does not match the type's attribute count.
    pub fn add_root(&mut self, schema: &NestedSchema, ty: NodeTypeId, values: &[Value]) -> NodeId {
        assert_eq!(values.len(), schema.node_type(ty).attrs().len());
        assert!(
            schema.node_type(ty).parent().is_none(),
            "type is not a root"
        );
        self.push(Node {
            ty,
            parent: None,
            values: values.to_vec(),
            children: Vec::new(),
        })
    }

    /// Add a child node under `parent`.
    ///
    /// # Panics
    /// Panics on arity mismatch or if the type's parent does not match the
    /// parent node's type.
    pub fn add_child(
        &mut self,
        schema: &NestedSchema,
        parent: NodeId,
        ty: NodeTypeId,
        values: &[Value],
    ) -> NodeId {
        assert_eq!(values.len(), schema.node_type(ty).attrs().len());
        assert_eq!(
            schema.node_type(ty).parent(),
            Some(self.node(parent).ty),
            "child type must be declared under the parent's type"
        );
        self.push(Node {
            ty,
            parent: Some(parent),
            values: values.to_vec(),
            children: Vec::new(),
        })
    }

    /// Insert a node without schema checks (used by the decoder, which must
    /// tolerate solutions whose parent links point at labeled nulls).
    pub(crate) fn push_unchecked(&mut self, node: Node) -> NodeId {
        self.push(node)
    }

    /// The node for an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Root nodes.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the instance has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate over all node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes of a given type.
    pub fn nodes_of_type(&self, ty: NodeTypeId) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(move |&id| self.node(id).ty == ty)
    }

    /// Depth of a node (roots have depth 1).
    pub fn depth_of(&self, id: NodeId) -> usize {
        let mut depth = 1;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            depth += 1;
            cur = p;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (NestedSchema, NestedInstance, NodeId, NodeId) {
        let mut s = NestedSchema::new();
        let region = s.add_root("Region", &["name"]);
        let nation = s.add_child(region, "Nation", &["name"]);
        let mut inst = NestedInstance::new();
        let r = inst.add_root(&s, region, &[Value::Int(1)]);
        let n = inst.add_child(&s, r, nation, &[Value::Int(2)]);
        (s, inst, r, n)
    }

    #[test]
    fn tree_structure() {
        let (_, inst, r, n) = build();
        assert_eq!(inst.roots(), &[r]);
        assert_eq!(inst.node(r).children, vec![n]);
        assert_eq!(inst.node(n).parent, Some(r));
        assert_eq!(inst.depth_of(r), 1);
        assert_eq!(inst.depth_of(n), 2);
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
    }

    #[test]
    fn nodes_of_type() {
        let (s, inst, _, n) = build();
        let nation = s.type_by_name("Nation").unwrap();
        let nodes: Vec<_> = inst.nodes_of_type(nation).collect();
        assert_eq!(nodes, vec![n]);
    }

    #[test]
    #[should_panic(expected = "child type must be declared under")]
    fn wrong_parent_type_panics() {
        let mut s = NestedSchema::new();
        let a = s.add_root("A", &[]);
        let b = s.add_root("B", &[]);
        let c = s.add_child(a, "C", &[]);
        let mut inst = NestedInstance::new();
        let broot = inst.add_root(&s, b, &[]);
        inst.add_child(&s, broot, c, &[]); // C's parent type is A, not B
    }
}
