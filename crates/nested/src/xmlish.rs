//! Indented XML-style rendering of nested instances (for examples and the
//! debugger's data views).

use routes_model::ValuePool;

use crate::instance::{NestedInstance, NodeId};
use crate::schema::NestedSchema;

/// Render the whole instance as indented XML-ish text.
pub fn to_xmlish(schema: &NestedSchema, inst: &NestedInstance, pool: &ValuePool) -> String {
    let mut out = String::new();
    for &root in inst.roots() {
        render(schema, inst, pool, root, 0, &mut out);
    }
    out
}

fn render(
    schema: &NestedSchema,
    inst: &NestedInstance,
    pool: &ValuePool,
    id: NodeId,
    indent: usize,
    out: &mut String,
) {
    let node = inst.node(id);
    let ty = schema.node_type(node.ty);
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push('<');
    out.push_str(ty.name());
    for (attr, &value) in ty.attrs().iter().zip(&node.values) {
        out.push(' ');
        out.push_str(attr);
        out.push_str("=\"");
        out.push_str(&pool.value_to_string(value));
        out.push('"');
    }
    if node.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push_str(">\n");
    for &child in &node.children {
        render(schema, inst, pool, child, indent + 1, out);
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(ty.name());
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::Value;

    #[test]
    fn renders_nested_tree() {
        let mut s = NestedSchema::new();
        let region = s.add_root("Region", &["name"]);
        let nation = s.add_child(region, "Nation", &["name"]);
        let mut pool = ValuePool::new();
        let mut inst = NestedInstance::new();
        let asia = pool.str("ASIA");
        let japan = pool.str("JAPAN");
        let r = inst.add_root(&s, region, &[asia]);
        inst.add_child(&s, r, nation, &[japan]);
        let xml = to_xmlish(&s, &inst, &pool);
        assert_eq!(
            xml,
            "<Region name=\"ASIA\">\n  <Nation name=\"JAPAN\"/>\n</Region>\n"
        );
    }

    #[test]
    fn empty_instance_renders_empty() {
        let s = NestedSchema::new();
        let inst = NestedInstance::new();
        let pool = ValuePool::new();
        assert_eq!(to_xmlish(&s, &inst, &pool), "");
    }

    #[test]
    fn nulls_render_with_labels() {
        let mut s = NestedSchema::new();
        let t = s.add_root("T", &["v"]);
        let mut pool = ValuePool::new();
        let n = pool.named_null("N1");
        let mut inst = NestedInstance::new();
        inst.add_root(&s, t, &[n]);
        inst.add_root(&s, t, &[Value::Int(3)]);
        let xml = to_xmlish(&s, &inst, &pool);
        assert!(xml.contains("v=\"N1\""));
        assert!(xml.contains("v=\"3\""));
    }
}
