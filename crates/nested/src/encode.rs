//! Relational encoding of nested schemas and instances.
//!
//! Each record type becomes a relation `Type(self, parent, attrs...)`:
//! * `self` — the node's identity (`Int(node_id + 1)` for encoded source
//!   data; labeled nulls or copied ids for chase-produced targets),
//! * `parent` — the parent node's `self`, or the virtual root id `Int(0)`
//!   for root records.
//!
//! The route algorithms run unchanged on the encoding; the id columns are
//! exactly what makes deep selections cheap (paper Figure 11): an anchored
//! deep element determines its whole ancestor chain through indexed `self`
//! lookups.

use std::collections::HashMap;

use routes_model::{Instance, RelId, Schema, TupleId, Value};

use crate::instance::{NestedInstance, Node, NodeId};
use crate::schema::{NestedSchema, NodeTypeId};

/// The virtual parent id used for root records.
pub const VIRTUAL_ROOT: Value = Value::Int(0);

/// A nested schema lowered to a flat schema.
#[derive(Debug, Clone)]
pub struct EncodedSchema {
    /// The flat schema (one relation per record type).
    pub schema: Schema,
    /// Relation id per record type (indexed by `NodeTypeId`).
    pub rel_of_type: Vec<RelId>,
}

/// Encode a nested schema: relation `T(self, parent, attrs...)` per type.
pub fn encode_schema(nested: &NestedSchema) -> EncodedSchema {
    let mut schema = Schema::new();
    let mut rel_of_type = Vec::with_capacity(nested.num_types());
    for (_, ty) in nested.iter() {
        let mut attrs: Vec<&str> = vec!["self", "parent"];
        attrs.extend(ty.attrs().iter().map(String::as_str));
        rel_of_type.push(schema.rel(ty.name(), &attrs));
    }
    EncodedSchema {
        schema,
        rel_of_type,
    }
}

/// A nested instance lowered to a flat instance, with identity maps.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The flat instance.
    pub instance: Instance,
    /// Tuple id per node (indexed by `NodeId`).
    pub node_to_tuple: Vec<TupleId>,
    /// Node per tuple id.
    pub tuple_to_node: HashMap<TupleId, NodeId>,
}

/// The encoded `self` id of a node.
pub fn self_id(node: NodeId) -> Value {
    Value::Int(i64::from(node.0) + 1)
}

/// Encode a nested instance against its encoded schema.
pub fn encode_instance(
    nested_schema: &NestedSchema,
    encoded: &EncodedSchema,
    inst: &NestedInstance,
) -> Encoded {
    let _ = nested_schema;
    let mut out = Instance::new(&encoded.schema);
    let mut node_to_tuple = Vec::with_capacity(inst.len());
    let mut tuple_to_node = HashMap::with_capacity(inst.len());
    let mut buf: Vec<Value> = Vec::new();
    for id in inst.iter() {
        let node = inst.node(id);
        buf.clear();
        buf.push(self_id(id));
        buf.push(node.parent.map_or(VIRTUAL_ROOT, self_id));
        buf.extend_from_slice(&node.values);
        let rel = encoded.rel_of_type[node.ty.0 as usize];
        let (tid, fresh) = out.insert(rel, &buf).expect("arity matches encoding");
        debug_assert!(fresh, "node ids make encoded tuples unique");
        node_to_tuple.push(tid);
        tuple_to_node.insert(tid, id);
    }
    Encoded {
        instance: out,
        node_to_tuple,
        tuple_to_node,
    }
}

/// Decode a flat instance (over an encoded schema) back into a nested
/// instance — used to render chase-produced targets as trees.
///
/// Tolerant by construction: nodes whose `parent` id cannot be resolved
/// (e.g. a labeled null with no matching `self`) become roots.
pub fn decode_instance(
    nested_schema: &NestedSchema,
    encoded: &EncodedSchema,
    inst: &Instance,
) -> NestedInstance {
    // First pass: create all nodes, remembering their encoded self ids.
    let mut out = NestedInstance::new();
    let mut by_self: HashMap<Value, NodeId> = HashMap::new();
    let mut decoded: Vec<(NodeId, Value)> = Vec::new(); // (node, parent self id)
    for (ty_id, _) in nested_schema.iter() {
        let rel = encoded.rel_of_type[ty_id.0 as usize];
        for (_, values) in inst.rel_tuples(rel) {
            let node = out.push_unchecked(Node {
                ty: ty_id,
                parent: None,
                values: values[2..].to_vec(),
                children: Vec::new(),
            });
            by_self.insert(values[0], node);
            decoded.push((node, values[1]));
        }
    }
    // Second pass: rebuild parent/child links, materializing parents before
    // their children (children lists are built on insertion).
    let mut relinked = NestedInstance::new();
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
    let mut remaining = decoded;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut deferred: Vec<(NodeId, Value)> = Vec::new();
        for (node, parent_self) in remaining {
            // Some(parent) = ready to insert; None = parent not yet placed.
            let resolution: Option<Option<NodeId>> = if parent_self == VIRTUAL_ROOT {
                Some(None)
            } else {
                match by_self.get(&parent_self) {
                    Some(p) => mapping.get(p).map(|&mapped| Some(mapped)),
                    None => Some(None), // unresolvable parent: orphan → root
                }
            };
            match resolution {
                Some(parent) => {
                    let src = out.node(node);
                    let new = relinked.push_unchecked(Node {
                        ty: src.ty,
                        parent,
                        values: src.values.clone(),
                        children: Vec::new(),
                    });
                    mapping.insert(node, new);
                }
                None => deferred.push((node, parent_self)),
            }
        }
        if deferred.len() == before {
            // Only parent cycles remain; promote them all to roots.
            for (node, _) in deferred.drain(..) {
                let src = out.node(node);
                let new = relinked.push_unchecked(Node {
                    ty: src.ty,
                    parent: None,
                    values: src.values.clone(),
                    children: Vec::new(),
                });
                mapping.insert(node, new);
            }
        }
        remaining = deferred;
    }
    relinked
}

/// Generate the parser text of a tgd that copies one root-to-leaf path from
/// a source encoding to a target encoding with *identity* node ids (the
/// target reuses the source node ids as values).
///
/// `src_path` is the chain of source types (root first); `dst_names` the
/// corresponding target relation names. Attribute lists must match level by
/// level.
pub fn copy_tree_tgd(
    name: &str,
    src: &NestedSchema,
    src_path: &[NodeTypeId],
    dst_names: &[&str],
) -> String {
    assert_eq!(src_path.len(), dst_names.len());
    assert!(!src_path.is_empty());
    let mut lhs: Vec<String> = Vec::new();
    let mut rhs: Vec<String> = Vec::new();
    for (level, (&ty, dst)) in src_path.iter().zip(dst_names).enumerate() {
        let t = src.node_type(ty);
        let self_var = format!("n{level}_self");
        let parent_var = if level == 0 {
            "rp".to_owned()
        } else {
            format!("n{}_self", level - 1)
        };
        let attr_vars: Vec<String> = t
            .attrs()
            .iter()
            .enumerate()
            .map(|(k, _)| format!("n{level}_a{k}"))
            .collect();
        let args = |vars: &[String]| -> String {
            let mut all = vec![self_var.clone(), parent_var.clone()];
            all.extend(vars.iter().cloned());
            all.join(", ")
        };
        lhs.push(format!("{}({})", t.name(), args(&attr_vars)));
        rhs.push(format!("{}({})", dst, args(&attr_vars)));
    }
    format!("{name}: {} -> {}", lhs.join(" & "), rhs.join(" & "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::ValuePool;

    fn two_level() -> (NestedSchema, NestedInstance) {
        let mut s = NestedSchema::new();
        let region = s.add_root("Region0", &["name"]);
        let nation = s.add_child(region, "Nation0", &["name"]);
        let mut inst = NestedInstance::new();
        let mut pool = ValuePool::new();
        let asia = pool.str("ASIA");
        let japan = pool.str("JAPAN");
        let china = pool.str("CHINA");
        let r = inst.add_root(&s, region, &[asia]);
        inst.add_child(&s, r, nation, &[japan]);
        inst.add_child(&s, r, nation, &[china]);
        (s, inst)
    }

    #[test]
    fn encode_produces_self_parent_columns() {
        let (s, inst) = two_level();
        let enc_schema = encode_schema(&s);
        assert_eq!(enc_schema.schema.len(), 2);
        let region_rel = enc_schema.schema.rel_id("Region0").unwrap();
        assert_eq!(
            enc_schema.schema.relation(region_rel).attrs(),
            &["self", "parent", "name"]
        );
        let enc = encode_instance(&s, &enc_schema, &inst);
        assert_eq!(enc.instance.total_tuples(), 3);
        // Root region has parent = VIRTUAL_ROOT; nations point at it.
        let region_tuple = enc.instance.tuple(enc.node_to_tuple[0]);
        assert_eq!(region_tuple[1], VIRTUAL_ROOT);
        let nation_tuple = enc.instance.tuple(enc.node_to_tuple[1]);
        assert_eq!(nation_tuple[1], region_tuple[0]);
        // Identity maps are inverses.
        for id in inst.iter() {
            let tid = enc.node_to_tuple[id.0 as usize];
            assert_eq!(enc.tuple_to_node[&tid], id);
        }
    }

    #[test]
    fn decode_roundtrips() {
        let (s, inst) = two_level();
        let enc_schema = encode_schema(&s);
        let enc = encode_instance(&s, &enc_schema, &inst);
        let back = decode_instance(&s, &enc_schema, &enc.instance);
        assert_eq!(back.len(), inst.len());
        assert_eq!(back.roots().len(), 1);
        let root = back.roots()[0];
        assert_eq!(back.node(root).children.len(), 2);
        // Depths preserved.
        for id in back.iter() {
            assert!(back.depth_of(id) <= 2);
        }
    }

    #[test]
    fn decode_tolerates_orphans() {
        let (s, _) = two_level();
        let enc_schema = encode_schema(&s);
        let mut inst = Instance::new(&enc_schema.schema);
        let nation = enc_schema.schema.rel_id("Nation0").unwrap();
        // A nation whose parent id (77) resolves to nothing.
        inst.insert_ok(nation, &[Value::Int(5), Value::Int(77), Value::Int(1)]);
        let back = decode_instance(&s, &enc_schema, &inst);
        assert_eq!(back.len(), 1);
        assert_eq!(back.roots().len(), 1);
    }

    #[test]
    fn copy_tree_tgd_text_parses() {
        let (s, inst) = two_level();
        let enc_src = encode_schema(&s);
        // Target: same shapes, different names.
        let mut d = NestedSchema::new();
        let r1 = d.add_root("Region1", &["name"]);
        d.add_child(r1, "Nation1", &["name"]);
        let enc_dst = encode_schema(&d);

        let path = s.path_to(s.type_by_name("Nation0").unwrap());
        let text = copy_tree_tgd("copy", &s, &path, &["Region1", "Nation1"]);
        let mut pool = ValuePool::new();
        let tgd = routes_mapping::parse_st_tgd(&enc_src.schema, &enc_dst.schema, &mut pool, &text)
            .unwrap();
        assert_eq!(tgd.lhs().len(), 2);
        assert_eq!(tgd.rhs().len(), 2);
        // Identity copy: no existential variables.
        assert_eq!(tgd.existential_vars().count(), 0);

        // End-to-end: chase the encoded instance and check the copy.
        let enc = encode_instance(&s, &enc_src, &inst);
        let mut mapping =
            routes_mapping::SchemaMapping::new(enc_src.schema.clone(), enc_dst.schema.clone());
        mapping.add_st_tgd(tgd).unwrap();
        let result = routes_chase::chase(
            &mapping,
            &enc.instance,
            &mut pool,
            routes_chase::ChaseOptions::skolem(),
        )
        .unwrap();
        assert_eq!(result.target.total_tuples(), 3);
        let back = decode_instance(&d, &enc_dst, &result.target);
        assert_eq!(back.len(), 3);
        assert_eq!(back.roots().len(), 1);
        assert_eq!(back.node(back.roots()[0]).children.len(), 2);
    }
}
