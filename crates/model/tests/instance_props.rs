//! Property tests for the instance store: set semantics, stable ids, index
//! consistency under interleaved inserts and probes, and `map_values`
//! correctness.
//!
//! Ported from `proptest` to seeded deterministic loops over the in-repo
//! PRNG ([`routes_gen::Rng`]) so the workspace builds offline; the original
//! case counts (256 per property) are preserved.

use routes_gen::Rng;
use routes_model::{Instance, Schema, TupleId, Value};
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Probe { col: usize, value: i64 },
}

/// The proptest strategy, reified: 3:1 insert-to-probe mix, values in 0..6.
fn random_op(rng: &mut Rng, arity: usize) -> Op {
    if rng.gen_range(0..4usize) < 3 {
        Op::Insert((0..arity).map(|_| rng.gen_range(0..6i64)).collect())
    } else {
        Op::Probe {
            col: rng.gen_range(0..arity),
            value: rng.gen_range(0..6i64),
        }
    }
}

#[test]
fn interleaved_inserts_and_probes_stay_consistent() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x1157 + case);
        let ops: Vec<Op> = (0..rng.gen_range(0..60usize))
            .map(|_| random_op(&mut rng, 2))
            .collect();

        let mut schema = Schema::new();
        let rel = schema.rel("R", &["a", "b"]);
        let mut inst = Instance::new(&schema);
        // Model: the set of tuples inserted so far.
        let mut model: Vec<Vec<i64>> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(row) => {
                    let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
                    let (id, fresh) = inst.insert(rel, &values).unwrap();
                    let existed = model.contains(&row);
                    assert_eq!(fresh, !existed, "case {case}: set semantics");
                    if !existed {
                        model.push(row.clone());
                    }
                    // Stable id: the id's row indexes the value in insertion
                    // order of distinct tuples.
                    assert_eq!(inst.tuple(id).to_vec(), values, "case {case}");
                }
                Op::Probe { col, value } => {
                    let mut rows = Vec::new();
                    inst.probe_into(rel, col as u32, Value::Int(value), &mut rows);
                    let expected: Vec<u32> = model
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t[col] == value)
                        .map(|(k, _)| k as u32)
                        .collect();
                    assert_eq!(&rows, &expected, "case {case}: index agrees with scan");
                    assert_eq!(
                        inst.probe_len(rel, col as u32, Value::Int(value)),
                        expected.len(),
                        "case {case}"
                    );
                }
            }
        }
        // Final state: lengths and membership agree with the model.
        assert_eq!(inst.rel_len(rel) as usize, model.len(), "case {case}");
        for (k, row) in model.iter().enumerate() {
            let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
            assert_eq!(
                inst.find(rel, &values),
                Some(TupleId { rel, row: k as u32 }),
                "case {case}"
            );
        }
    }
}

#[test]
fn map_values_is_a_set_image() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x3A9 + case);
        let rows: Vec<Vec<i64>> = (0..rng.gen_range(0..30usize))
            .map(|_| (0..2).map(|_| rng.gen_range(0..5i64)).collect())
            .collect();

        let mut schema = Schema::new();
        let rel = schema.rel("R", &["a", "b"]);
        let mut inst = Instance::new(&schema);
        for row in &rows {
            let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
            inst.insert(rel, &values).unwrap();
        }
        // Collapse all values mod 2: the image must be exactly the set image.
        let mapped = inst.map_values(&schema, |v| match v {
            Value::Int(n) => Value::Int(n % 2),
            other => other,
        });
        let expected: HashSet<Vec<i64>> = rows
            .iter()
            .map(|r| r.iter().map(|v| v % 2).collect())
            .collect();
        assert_eq!(mapped.rel_len(rel) as usize, expected.len(), "case {case}");
        for row in expected {
            let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
            assert!(mapped.contains(rel, &values), "case {case}");
        }
    }
}
