//! Property tests for the instance store: set semantics, stable ids, index
//! consistency under interleaved inserts and probes, and `map_values`
//! correctness.

use proptest::prelude::*;
use routes_model::{Instance, Schema, TupleId, Value};
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Probe { col: usize, value: i64 },
}

fn op_strategy(arity: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec(0i64..6, arity).prop_map(Op::Insert),
        1 => (0usize..arity, 0i64..6).prop_map(|(col, value)| Op::Probe { col, value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interleaved_inserts_and_probes_stay_consistent(
        ops in prop::collection::vec(op_strategy(2), 0..60)
    ) {
        let mut schema = Schema::new();
        let rel = schema.rel("R", &["a", "b"]);
        let mut inst = Instance::new(&schema);
        // Model: the set of tuples inserted so far.
        let mut model: Vec<Vec<i64>> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(row) => {
                    let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
                    let (id, fresh) = inst.insert(rel, &values).unwrap();
                    let existed = model.contains(&row);
                    prop_assert_eq!(fresh, !existed, "set semantics");
                    if !existed {
                        model.push(row.clone());
                    }
                    // Stable id: the id's row indexes the value in insertion
                    // order of distinct tuples.
                    prop_assert_eq!(
                        inst.tuple(id).to_vec(),
                        values
                    );
                }
                Op::Probe { col, value } => {
                    let mut rows = Vec::new();
                    inst.probe_into(rel, col as u32, Value::Int(value), &mut rows);
                    let expected: Vec<u32> = model
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t[col] == value)
                        .map(|(k, _)| k as u32)
                        .collect();
                    prop_assert_eq!(&rows, &expected, "index agrees with scan");
                    prop_assert_eq!(
                        inst.probe_len(rel, col as u32, Value::Int(value)),
                        expected.len()
                    );
                }
            }
        }
        // Final state: lengths and membership agree with the model.
        prop_assert_eq!(inst.rel_len(rel) as usize, model.len());
        for (k, row) in model.iter().enumerate() {
            let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
            prop_assert_eq!(
                inst.find(rel, &values),
                Some(TupleId { rel, row: k as u32 })
            );
        }
    }

    #[test]
    fn map_values_is_a_set_image(rows in prop::collection::vec(prop::collection::vec(0i64..5, 2), 0..30)) {
        let mut schema = Schema::new();
        let rel = schema.rel("R", &["a", "b"]);
        let mut inst = Instance::new(&schema);
        for row in &rows {
            let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
            inst.insert(rel, &values).unwrap();
        }
        // Collapse all values mod 2: the image must be exactly the set image.
        let mapped = inst.map_values(&schema, |v| match v {
            Value::Int(n) => Value::Int(n % 2),
            other => other,
        });
        let expected: HashSet<Vec<i64>> = rows
            .iter()
            .map(|r| r.iter().map(|v| v % 2).collect())
            .collect();
        prop_assert_eq!(mapped.rel_len(rel) as usize, expected.len());
        for row in expected {
            let values: Vec<Value> = row.iter().map(|&v| Value::Int(v)).collect();
            prop_assert!(mapped.contains(rel, &values));
        }
    }
}
