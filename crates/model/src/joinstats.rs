//! Process-wide join-execution counters.
//!
//! The vectorized batch executor in `routes-query` and the lazy hash-index
//! maintenance in [`crate::Instance`] both report here; the server's
//! `/metrics` endpoint exposes a snapshot as the `join` block. The counters
//! live in `routes-model` — the bottom of the dependency graph — because the
//! server does not depend on `routes-query`, while everything that evaluates
//! joins depends on this crate.
//!
//! All counters are monotonically increasing and relaxed: they are
//! diagnostics, not synchronization. Hot loops aggregate locally and report
//! once per batch, so the atomics stay off the per-row path.

use std::sync::atomic::{AtomicU64, Ordering};

static BATCHES: AtomicU64 = AtomicU64::new(0);
static ROWS_PROBED: AtomicU64 = AtomicU64::new(0);
static INDEX_PROBES: AtomicU64 = AtomicU64::new(0);
static HASH_BUILDS: AtomicU64 = AtomicU64::new(0);
static HASH_BUILD_ROWS: AtomicU64 = AtomicU64::new(0);

/// One batch of bindings pushed through an atom by the vectorized executor.
pub fn record_batch() {
    BATCHES.fetch_add(1, Ordering::Relaxed);
}

/// Candidate rows inspected (probed or scanned) while extending a batch.
pub fn record_rows_probed(n: u64) {
    ROWS_PROBED.fetch_add(n, Ordering::Relaxed);
}

/// Hash-index lookups issued while extending a batch.
pub fn record_index_probes(n: u64) {
    INDEX_PROBES.fetch_add(n, Ordering::Relaxed);
}

/// One lazy hash-index build or catch-up event covering `rows` rows.
/// Reported by [`crate::Instance`] itself, so row-at-a-time and batch
/// evaluation both show up.
pub fn record_hash_build(rows: u64) {
    HASH_BUILDS.fetch_add(1, Ordering::Relaxed);
    HASH_BUILD_ROWS.fetch_add(rows, Ordering::Relaxed);
}

/// Point-in-time copy of the join counters, for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinSnapshot {
    /// Binding batches pushed through an atom by the vectorized executor.
    pub batches: u64,
    /// Candidate rows inspected while extending batches.
    pub rows_probed: u64,
    /// Hash-index lookups issued while extending batches.
    pub index_probes: u64,
    /// Lazy hash-index build/catch-up events (single-column + composite).
    pub hash_builds: u64,
    /// Rows fed into those builds.
    pub hash_build_rows: u64,
}

/// Read all counters. Individually relaxed; the snapshot is not atomic as a
/// whole, which is fine for monotonic metrics.
pub fn snapshot() -> JoinSnapshot {
    JoinSnapshot {
        batches: BATCHES.load(Ordering::Relaxed),
        rows_probed: ROWS_PROBED.load(Ordering::Relaxed),
        index_probes: INDEX_PROBES.load(Ordering::Relaxed),
        hash_builds: HASH_BUILDS.load(Ordering::Relaxed),
        hash_build_rows: HASH_BUILD_ROWS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let before = snapshot();
        record_batch();
        record_rows_probed(10);
        record_index_probes(3);
        record_hash_build(100);
        let after = snapshot();
        // Other tests in the process may bump these concurrently, so assert
        // monotone growth by at least our contribution's floor.
        assert!(after.batches > before.batches);
        assert!(after.rows_probed >= before.rows_probed + 10);
        assert!(after.index_probes >= before.index_probes + 3);
        assert!(after.hash_builds > before.hash_builds);
        assert!(after.hash_build_rows >= before.hash_build_rows + 100);
    }
}
