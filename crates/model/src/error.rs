//! Error type for model-layer operations.

use std::fmt;

/// Errors raised by schema and instance operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A relation with this name was already declared in the schema.
    DuplicateRelation(String),
    /// A tuple was inserted with the wrong number of values.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A relation name or id was not found in the schema.
    UnknownRelation(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is already declared")
            }
            ModelError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, but {got} values were supplied"
            ),
            ModelError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("arity 2"));
        assert!(ModelError::UnknownRelation("X".into())
            .to_string()
            .contains("X"));
        assert!(ModelError::DuplicateRelation("Y".into())
            .to_string()
            .contains("Y"));
    }
}
