//! Instances: append-only, duplicate-eliminating tuple stores with lazily
//! built, incrementally maintained per-column hash indexes.
//!
//! Storage is **columnar**: each relation keeps one interned-value vector per
//! column. Row positions are stable (tuples are never moved or removed), so a
//! [`TupleId`] durably identifies a fact for the lifetime of the instance.
//! This is the identity that routes, route forests, and the debugger use —
//! and because the store is append-only, the columnar layout preserves it
//! exactly: appending a tuple pushes one value onto each column vector and
//! never disturbs earlier rows.
//!
//! The columnar layout is what the vectorized batch executor in
//! `routes-query` scans: [`Instance::col_slice`] exposes a whole column as a
//! contiguous slice, and [`Instance::value_at`] reads a single cell without
//! materializing the row.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::error::ModelError;
use crate::schema::{RelId, Schema};
use crate::value::Value;

/// Which instance of a data-exchange pair `(I, J)` a fact belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The source instance `I` (over the source schema `S`).
    Source,
    /// The target instance `J` (over the target schema `T`).
    Target,
}

/// Stable identity of a tuple within one instance: relation plus row index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// The relation the tuple belongs to.
    pub rel: RelId,
    /// Row position within the relation (insertion order).
    pub row: u32,
}

/// Globally unique identity of a fact across a data-exchange pair `(I, J)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// Which instance the fact lives in.
    pub side: Side,
    /// The tuple identity within that instance.
    pub id: TupleId,
}

impl Fact {
    /// A fact in the source instance.
    pub fn source(id: TupleId) -> Self {
        Fact {
            side: Side::Source,
            id,
        }
    }

    /// A fact in the target instance.
    pub fn target(id: TupleId) -> Self {
        Fact {
            side: Side::Target,
            id,
        }
    }
}

/// A single-column hash index, caught up lazily against the append-only
/// relation data.
#[derive(Debug, Default)]
struct ColIndex {
    map: HashMap<Value, Vec<u32>>,
    /// Number of rows already indexed; rows `upto..len` are indexed on the
    /// next probe.
    upto: u32,
}

/// A composite (multi-column) hash index over an ordered column set.
#[derive(Debug, Default)]
struct MultiIndex {
    map: HashMap<Box<[Value]>, Vec<u32>>,
    upto: u32,
}

/// A single-column index pinned for a stretch of probes.
///
/// [`Instance::with_col_probe`] catches the index up once and holds the read
/// guard for the closure's whole run, so every [`ColProbe::probe`] is a bare
/// hash lookup returning the posting list *by reference* — no per-probe lock
/// traffic and no copying. This is the batch executor's amortization lever:
/// the lazy per-binding executor must release the lock between `next_match`
/// calls and therefore pays lock + copy on every probe.
pub struct ColProbe<'i> {
    idx: &'i ColIndex,
}

impl<'i> ColProbe<'i> {
    /// Rows whose pinned column equals `value`, in ascending row order.
    #[inline]
    pub fn probe(&self, value: Value) -> &'i [u32] {
        self.idx.map.get(&value).map_or(&[][..], Vec::as_slice)
    }
}

/// A composite index pinned for a stretch of probes; the multi-column
/// analogue of [`ColProbe`] (see [`Instance::with_multi_probe`]).
pub struct MultiProbe<'i> {
    idx: &'i MultiIndex,
}

impl<'i> MultiProbe<'i> {
    /// Rows whose pinned column set equals `values` pointwise, ascending.
    #[inline]
    pub fn probe(&self, values: &[Value]) -> &'i [u32] {
        self.idx.map.get(values).map_or(&[][..], Vec::as_slice)
    }
}

#[derive(Debug)]
struct RelData {
    arity: usize,
    /// Number of stored rows. Tracked explicitly so nullary relations (zero
    /// columns) count their single possible empty tuple like any other row.
    len: u32,
    /// Columnar tuple storage: one value vector per column, each `len` long.
    cols: Vec<Vec<Value>>,
    /// Tuple-hash → candidate rows, for duplicate elimination.
    dedup: HashMap<u64, Vec<u32>>,
    /// Lazily built per-column indexes. Interior mutability lets read-only
    /// query evaluation build and extend indexes on a shared reference; an
    /// `RwLock` with a double-checked build so instances stay `Sync` and
    /// concurrent probes — the parallel chase and parallel `findHom` hammer
    /// one shared instance from every worker — take only the *shared* lock
    /// once an index is caught up. The exclusive lock is held only while an
    /// index is built or extended past newly appended rows, and the
    /// caught-up check is repeated under it, so racing builders do the
    /// catch-up work once.
    indexes: RwLock<HashMap<u32, ColIndex>>,
    /// Lazily built composite indexes, keyed by the ordered column set.
    multi_indexes: RwLock<HashMap<Box<[u32]>, MultiIndex>>,
    /// Rows fed into index builds/catch-ups over this relation's lifetime.
    /// Diagnostic for the clone-laziness regression tests.
    index_rows_built: AtomicU64,
}

impl Clone for RelData {
    /// Cloning copies the data columns and dedup table but **not** the lazy
    /// indexes: the clone starts with empty index maps and rebuilds them on
    /// first probe. Deep-copying posting lists here used to make every
    /// session snapshot / edit swap pay O(index) up front even when the
    /// clone was never probed; lazy rebuild makes clone O(data) and charges
    /// index work only to clones that actually evaluate queries.
    fn clone(&self) -> Self {
        RelData {
            arity: self.arity,
            len: self.len,
            cols: self.cols.clone(),
            dedup: self.dedup.clone(),
            indexes: RwLock::new(HashMap::new()),
            multi_indexes: RwLock::new(HashMap::new()),
            index_rows_built: AtomicU64::new(0),
        }
    }
}

impl RelData {
    fn new(arity: usize) -> Self {
        RelData {
            arity,
            len: 0,
            cols: (0..arity).map(|_| Vec::new()).collect(),
            dedup: HashMap::new(),
            indexes: RwLock::new(HashMap::new()),
            multi_indexes: RwLock::new(HashMap::new()),
            index_rows_built: AtomicU64::new(0),
        }
    }

    fn len(&self) -> u32 {
        self.len
    }

    /// One cell, without materializing the row.
    #[inline]
    fn value(&self, row: u32, col: usize) -> Value {
        self.cols[col][row as usize]
    }

    /// Whether the stored row equals `values` pointwise (`values` must have
    /// the relation's arity). Vacuously true for nullary relations.
    fn row_eq(&self, row: u32, values: &[Value]) -> bool {
        self.cols
            .iter()
            .zip(values)
            .all(|(col, v)| col[row as usize] == *v)
    }

    fn push_row(&mut self, values: &[Value]) -> u32 {
        let row = self.len;
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push(*v);
        }
        self.len += 1;
        row
    }

    /// Ensure the index for `col` exists and covers all current rows, then
    /// run `f` on the row list for `value` (empty slice if absent).
    ///
    /// Double-checked publication: the common case — the index exists and is
    /// caught up — takes only the shared lock, so concurrent probes from
    /// parallel chase and `findHom` workers do not serialize. Only a probe
    /// that finds the index missing or stale upgrades to the exclusive lock,
    /// re-checks, and extends it over the newly appended rows.
    fn with_index<R>(&self, col: u32, value: Value, f: impl FnOnce(&[u32]) -> R) -> R {
        let len = self.len();
        {
            let indexes = self.indexes.read().unwrap();
            if let Some(idx) = indexes.get(&col) {
                if idx.upto >= len {
                    return match idx.map.get(&value) {
                        Some(rows) => f(rows),
                        None => f(&[]),
                    };
                }
            }
        }
        let mut indexes = self.indexes.write().unwrap();
        let idx = indexes.entry(col).or_default();
        self.catch_up_col(idx, col, len);
        match idx.map.get(&value) {
            Some(rows) => f(rows),
            None => f(&[]),
        }
    }

    /// Extend the single-column index over rows `idx.upto..len` (no-op when
    /// caught up). Caller holds the exclusive lock.
    fn catch_up_col(&self, idx: &mut ColIndex, col: u32, len: u32) {
        if idx.upto >= len {
            return;
        }
        self.index_rows_built
            .fetch_add(u64::from(len - idx.upto), Ordering::Relaxed);
        crate::joinstats::record_hash_build(u64::from(len - idx.upto));
        let col_data = &self.cols[col as usize];
        // The catch-up walks the column slice directly: one contiguous
        // vector, no per-row stride arithmetic.
        for row in idx.upto..len {
            idx.map.entry(col_data[row as usize]).or_default().push(row);
        }
        idx.upto = len;
    }

    /// Pin the single-column index for `col`: catch it up once, then run `f`
    /// with a probe handle that borrows posting lists under a single read
    /// guard. The relation cannot grow while `f` runs (appends need
    /// `&mut Instance`), so the pinned view stays complete.
    fn with_col_probe<R>(&self, col: u32, f: impl FnOnce(ColProbe<'_>) -> R) -> R {
        let len = self.len();
        let stale = {
            let indexes = self.indexes.read().unwrap();
            indexes.get(&col).is_none_or(|idx| idx.upto < len)
        };
        if stale {
            let mut indexes = self.indexes.write().unwrap();
            let idx = indexes.entry(col).or_default();
            self.catch_up_col(idx, col, len);
        }
        let indexes = self.indexes.read().unwrap();
        let idx = indexes.get(&col).expect("index built above");
        f(ColProbe { idx })
    }

    /// Composite-index variant of [`RelData::with_index`]: `cols` must be
    /// sorted and `values` aligned with it. Same double-checked publication
    /// scheme as the single-column path.
    fn with_multi_index<R>(
        &self,
        cols: &[u32],
        values: &[Value],
        f: impl FnOnce(&[u32]) -> R,
    ) -> R {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(cols.len(), values.len());
        let len = self.len();
        {
            let indexes = self.multi_indexes.read().unwrap();
            if let Some(idx) = indexes.get(cols) {
                if idx.upto >= len {
                    return match idx.map.get(values) {
                        Some(rows) => f(rows),
                        None => f(&[]),
                    };
                }
            }
        }
        let mut indexes = self.multi_indexes.write().unwrap();
        let idx = indexes.entry(Box::from(cols)).or_default();
        self.catch_up_multi(idx, cols, len);
        match idx.map.get(values) {
            Some(rows) => f(rows),
            None => f(&[]),
        }
    }

    /// Composite-index analogue of [`RelData::catch_up_col`].
    fn catch_up_multi(&self, idx: &mut MultiIndex, cols: &[u32], len: u32) {
        if idx.upto >= len {
            return;
        }
        self.index_rows_built
            .fetch_add(u64::from(len - idx.upto), Ordering::Relaxed);
        crate::joinstats::record_hash_build(u64::from(len - idx.upto));
        let mut key: Vec<Value> = Vec::with_capacity(cols.len());
        for row in idx.upto..len {
            key.clear();
            key.extend(cols.iter().map(|&c| self.value(row, c as usize)));
            idx.map.entry(key.as_slice().into()).or_default().push(row);
        }
        idx.upto = len;
    }

    /// Composite-index analogue of [`RelData::with_col_probe`].
    fn with_multi_probe<R>(&self, cols: &[u32], f: impl FnOnce(MultiProbe<'_>) -> R) -> R {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let len = self.len();
        let stale = {
            let indexes = self.multi_indexes.read().unwrap();
            indexes.get(cols).is_none_or(|idx| idx.upto < len)
        };
        if stale {
            let mut indexes = self.multi_indexes.write().unwrap();
            let idx = indexes.entry(Box::from(cols)).or_default();
            self.catch_up_multi(idx, cols, len);
        }
        let indexes = self.multi_indexes.read().unwrap();
        let idx = indexes.get(cols).expect("index built above");
        f(MultiProbe { idx })
    }
}

fn hash_tuple(values: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    values.hash(&mut h);
    h.finish()
}

/// An instance over a fixed schema: one append-only relation store per
/// relation, with set semantics (duplicate inserts are detected and return
/// the existing row).
///
/// The instance captures the schema's arities at construction time; it does
/// not borrow the schema, so instances are freely movable and clonable.
#[derive(Debug, Clone)]
pub struct Instance {
    rels: Vec<RelData>,
}

impl Instance {
    /// Create an empty instance over the given schema.
    pub fn new(schema: &Schema) -> Self {
        Instance {
            rels: schema
                .iter()
                .map(|(_, r)| RelData::new(r.arity()))
                .collect(),
        }
    }

    fn rel(&self, rel: RelId) -> &RelData {
        &self.rels[rel.0 as usize]
    }

    /// Number of relations (as declared by the schema).
    pub fn num_relations(&self) -> usize {
        self.rels.len()
    }

    /// Declared arity of a relation.
    pub fn arity(&self, rel: RelId) -> usize {
        self.rel(rel).arity
    }

    /// Number of tuples currently stored in a relation.
    pub fn rel_len(&self, rel: RelId) -> u32 {
        self.rel(rel).len()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.iter().map(|r| r.len() as usize).sum()
    }

    /// Whether the instance contains no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.total_tuples() == 0
    }

    /// Insert a tuple. Returns its [`TupleId`] and whether it was newly
    /// inserted (`false` means an identical tuple already existed and its id
    /// is returned instead).
    ///
    /// # Errors
    /// Returns [`ModelError::ArityMismatch`] if the value count does not
    /// match the relation's declared arity.
    pub fn insert(&mut self, rel: RelId, values: &[Value]) -> Result<(TupleId, bool), ModelError> {
        let rd = &mut self.rels[rel.0 as usize];
        if values.len() != rd.arity {
            return Err(ModelError::ArityMismatch {
                relation: format!("#{}", rel.0),
                expected: rd.arity,
                got: values.len(),
            });
        }
        let h = hash_tuple(values);
        if let Some(rows) = rd.dedup.get(&h) {
            for &row in rows {
                if rd.row_eq(row, values) {
                    return Ok((TupleId { rel, row }, false));
                }
            }
        }
        let row = rd.push_row(values);
        rd.dedup.entry(h).or_default().push(row);
        Ok((TupleId { rel, row }, true))
    }

    /// Insert, panicking on arity mismatch. Convenient for tests and
    /// generators where the schema is statically known.
    pub fn insert_ok(&mut self, rel: RelId, values: &[Value]) -> TupleId {
        self.insert(rel, values).unwrap_or_else(|e| panic!("{e}")).0
    }

    /// Look up the id of an existing tuple with exactly these values.
    pub fn find(&self, rel: RelId, values: &[Value]) -> Option<TupleId> {
        let rd = self.rel(rel);
        if values.len() != rd.arity {
            return None;
        }
        let h = hash_tuple(values);
        let rows = rd.dedup.get(&h)?;
        rows.iter()
            .find(|&&row| rd.row_eq(row, values))
            .map(|&row| TupleId { rel, row })
    }

    /// Whether a tuple with exactly these values exists.
    pub fn contains(&self, rel: RelId, values: &[Value]) -> bool {
        self.find(rel, values).is_some()
    }

    /// The values of a tuple, gathered from the column vectors.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn tuple(&self, id: TupleId) -> Vec<Value> {
        let rd = self.rel(id.rel);
        rd.cols.iter().map(|col| col[id.row as usize]).collect()
    }

    /// Gather a tuple's values into a reusable buffer (cleared first).
    /// Allocation-free variant of [`Instance::tuple`] for hot loops.
    pub fn tuple_into(&self, id: TupleId, buf: &mut Vec<Value>) {
        let rd = self.rel(id.rel);
        buf.clear();
        buf.extend(rd.cols.iter().map(|col| col[id.row as usize]));
    }

    /// One cell of a tuple, without materializing the row.
    ///
    /// # Panics
    /// Panics if the id or column is out of range.
    #[inline]
    pub fn value_at(&self, id: TupleId, col: usize) -> Value {
        self.rel(id.rel).value(id.row, col)
    }

    /// A whole column as a contiguous slice (the columnar layout's raison
    /// d'être: the vectorized executor scans these directly).
    pub fn col_slice(&self, rel: RelId, col: u32) -> &[Value] {
        &self.rel(rel).cols[col as usize]
    }

    /// Total rows fed into lazy index builds/catch-ups since this instance
    /// (or clone — cloning resets the counter) was created. Single-column
    /// and composite builds both count. Regression hook: cloning must not
    /// eagerly re-pay index work.
    pub fn index_build_rows(&self) -> u64 {
        self.rels
            .iter()
            .map(|r| r.index_rows_built.load(Ordering::Relaxed))
            .sum()
    }

    /// Iterate over all tuple ids of a relation, in insertion order.
    pub fn rel_rows(&self, rel: RelId) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.rel_len(rel)).map(move |row| TupleId { rel, row })
    }

    /// Iterate over `(TupleId, values)` for a relation.
    pub fn rel_tuples(&self, rel: RelId) -> impl Iterator<Item = (TupleId, Vec<Value>)> + '_ {
        self.rel_rows(rel).map(move |id| (id, self.tuple(id)))
    }

    /// Iterate over every tuple id in the instance.
    pub fn all_rows(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.rels.len() as u32).flat_map(move |r| self.rel_rows(RelId(r)))
    }

    /// Probe the hash index on `(rel, col)` for rows whose `col` equals
    /// `value`, appending matching rows to `out`.
    ///
    /// The index is built on first use and caught up incrementally on later
    /// probes (the store is append-only, so no invalidation is needed).
    pub fn probe_into(&self, rel: RelId, col: u32, value: Value, out: &mut Vec<u32>) {
        self.rel(rel)
            .with_index(col, value, |rows| out.extend_from_slice(rows));
    }

    /// Number of rows that a probe on `(rel, col) = value` would return.
    /// Used by the query planner to pick the most selective bound column.
    pub fn probe_len(&self, rel: RelId, col: u32, value: Value) -> usize {
        self.rel(rel).with_index(col, value, <[u32]>::len)
    }

    /// Probe a composite index on the (sorted) column set `cols` for rows
    /// whose columns equal `values` pointwise, appending matches to `out`.
    ///
    /// Composite indexes are built lazily per column set and caught up
    /// incrementally, like single-column ones. They pay off when no single
    /// bound column is selective but the combination is (e.g. TPC-H
    /// `Partsupp(partkey, suppkey)`).
    ///
    /// # Panics
    /// Debug-asserts that `cols` is strictly sorted and aligned with
    /// `values`.
    pub fn probe_multi_into(&self, rel: RelId, cols: &[u32], values: &[Value], out: &mut Vec<u32>) {
        self.rel(rel)
            .with_multi_index(cols, values, |rows| out.extend_from_slice(rows));
    }

    /// Number of rows a composite probe would return.
    pub fn probe_multi_len(&self, rel: RelId, cols: &[u32], values: &[Value]) -> usize {
        self.rel(rel).with_multi_index(cols, values, <[u32]>::len)
    }

    /// Pin the hash index on `(rel, col)` and run `f` with a [`ColProbe`]
    /// whose probes return posting lists by reference.
    ///
    /// The index is caught up at most once (counted like any other lazy
    /// build) and the read guard is held for the closure's whole run, so a
    /// morsel of probes pays one lock acquisition total instead of one per
    /// probe, and no posting list is copied. The vectorized batch executor
    /// pins one index per (atom, morsel).
    pub fn with_col_probe<R>(&self, rel: RelId, col: u32, f: impl FnOnce(ColProbe<'_>) -> R) -> R {
        self.rel(rel).with_col_probe(col, f)
    }

    /// Pin the composite index on `(rel, cols)` and run `f` with a
    /// [`MultiProbe`]; the multi-column analogue of
    /// [`Instance::with_col_probe`]. `cols` must be strictly sorted.
    pub fn with_multi_probe<R>(
        &self,
        rel: RelId,
        cols: &[u32],
        f: impl FnOnce(MultiProbe<'_>) -> R,
    ) -> R {
        self.rel(rel).with_multi_probe(cols, f)
    }

    /// Build a new instance by applying `f` to every value of every tuple
    /// (re-deduplicating). Used by egd application, which replaces labeled
    /// nulls wholesale.
    ///
    /// Note: row ids are **not** preserved across this operation.
    pub fn map_values(&self, schema: &Schema, mut f: impl FnMut(Value) -> Value) -> Instance {
        let mut out = Instance::new(schema);
        let mut buf: Vec<Value> = Vec::new();
        for (rel_idx, rd) in self.rels.iter().enumerate() {
            let rel = RelId(rel_idx as u32);
            for row in 0..rd.len() {
                buf.clear();
                buf.extend((0..rd.arity).map(|c| f(rd.value(row, c))));
                out.insert(rel, &buf).expect("arity preserved by map");
            }
        }
        out
    }

    /// Approximate heap footprint of the stored tuples in bytes (column
    /// vectors plus dedup tables; lazily built indexes are *not* counted,
    /// since they are derived state). Used by the benchmark harness to
    /// report real sizes next to the paper's MB labels.
    pub fn approx_heap_bytes(&self) -> usize {
        self.rels
            .iter()
            .map(|r| {
                let data: usize = r
                    .cols
                    .iter()
                    .map(|col| col.capacity() * std::mem::size_of::<Value>())
                    .sum();
                let dedup: usize = r
                    .dedup
                    .values()
                    .map(|rows| {
                        std::mem::size_of::<u64>() + rows.capacity() * std::mem::size_of::<u32>()
                    })
                    .sum();
                data + dedup
            })
            .sum()
    }

    /// Whether `other` contains every tuple of `self` (set containment,
    /// relation by relation).
    pub fn contained_in(&self, other: &Instance) -> bool {
        let mut buf: Vec<Value> = Vec::new();
        self.rels.iter().enumerate().all(|(rel_idx, rd)| {
            let rel = RelId(rel_idx as u32);
            (0..rd.len()).all(|row| {
                buf.clear();
                buf.extend((0..rd.arity).map(|c| rd.value(row, c)));
                other.contains(rel, &buf)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValuePool;

    fn schema2() -> (Schema, RelId, RelId) {
        let mut s = Schema::new();
        let r = s.rel("R", &["a", "b"]);
        let t = s.rel("T", &["x"]);
        (s, r, t)
    }

    #[test]
    fn insert_dedups_and_preserves_ids() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        let (id1, fresh1) = inst.insert(r, &[Value::Int(1), Value::Int(2)]).unwrap();
        let (id2, fresh2) = inst.insert(r, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(id1, id2);
        assert_eq!(inst.rel_len(r), 1);
        assert_eq!(inst.tuple(id1), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        let err = inst.insert(r, &[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, ModelError::ArityMismatch { .. }));
    }

    #[test]
    fn find_and_contains() {
        let (s, r, t) = schema2();
        let mut inst = Instance::new(&s);
        inst.insert_ok(r, &[Value::Int(1), Value::Int(2)]);
        assert!(inst.contains(r, &[Value::Int(1), Value::Int(2)]));
        assert!(!inst.contains(r, &[Value::Int(2), Value::Int(1)]));
        assert!(!inst.contains(t, &[Value::Int(1)]));
        // Wrong arity never matches.
        assert!(inst.find(r, &[Value::Int(1)]).is_none());
    }

    #[test]
    fn nullary_relations_hold_one_empty_tuple() {
        let mut s = Schema::new();
        let n = s.rel("Flag", &[]);
        let mut inst = Instance::new(&s);
        assert_eq!(inst.rel_len(n), 0);
        let (id, fresh) = inst.insert(n, &[]).unwrap();
        assert!(fresh);
        assert_eq!(inst.rel_len(n), 1);
        let (id2, fresh2) = inst.insert(n, &[]).unwrap();
        assert!(!fresh2);
        assert_eq!(id, id2);
        assert!(inst.contains(n, &[]));
        assert!(inst.tuple(id).is_empty());
    }

    #[test]
    fn columnar_accessors_agree_with_tuple() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        for i in 0..10 {
            inst.insert_ok(r, &[Value::Int(i), Value::Int(i * 10)]);
        }
        let col0 = inst.col_slice(r, 0);
        let col1 = inst.col_slice(r, 1);
        assert_eq!(col0.len(), 10);
        let mut buf = Vec::new();
        for row in 0..10u32 {
            let id = TupleId { rel: r, row };
            let t = inst.tuple(id);
            assert_eq!(t[0], col0[row as usize]);
            assert_eq!(t[1], col1[row as usize]);
            assert_eq!(inst.value_at(id, 0), t[0]);
            assert_eq!(inst.value_at(id, 1), t[1]);
            inst.tuple_into(id, &mut buf);
            assert_eq!(buf, t);
        }
    }

    #[test]
    fn probe_uses_index_and_catches_up_after_inserts() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        for i in 0..10 {
            inst.insert_ok(r, &[Value::Int(i % 3), Value::Int(i)]);
        }
        let mut out = Vec::new();
        inst.probe_into(r, 0, Value::Int(0), &mut out);
        let expected: Vec<u32> = (0..10).filter(|i| i % 3 == 0).collect();
        assert_eq!(out, expected);

        // Insert more rows after the index exists; probe must see them.
        inst.insert_ok(r, &[Value::Int(0), Value::Int(100)]);
        out.clear();
        inst.probe_into(r, 0, Value::Int(0), &mut out);
        assert_eq!(out.len(), expected.len() + 1);
        assert_eq!(inst.probe_len(r, 0, Value::Int(0)), expected.len() + 1);
        assert_eq!(inst.probe_len(r, 0, Value::Int(77)), 0);
    }

    #[test]
    fn composite_probe_matches_scan_and_catches_up() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        for i in 0..30 {
            inst.insert_ok(r, &[Value::Int(i % 3), Value::Int(i % 5)]);
        }
        let mut out = Vec::new();
        inst.probe_multi_into(r, &[0, 1], &[Value::Int(1), Value::Int(2)], &mut out);
        let expected: Vec<u32> = (0..inst.rel_len(r))
            .filter(|&row| {
                let t = inst.tuple(TupleId { rel: r, row });
                t[0] == Value::Int(1) && t[1] == Value::Int(2)
            })
            .collect();
        assert_eq!(out, expected);
        assert!(!expected.is_empty());
        // Catch-up after later inserts: a brand-new key appears in an
        // already-built index.
        assert_eq!(
            inst.probe_multi_len(r, &[0, 1], &[Value::Int(9), Value::Int(9)]),
            0
        );
        inst.insert_ok(r, &[Value::Int(9), Value::Int(9)]);
        assert_eq!(
            inst.probe_multi_len(r, &[0, 1], &[Value::Int(9), Value::Int(9)]),
            1
        );
        // Existing keys are unaffected.
        assert_eq!(
            inst.probe_multi_len(r, &[0, 1], &[Value::Int(1), Value::Int(2)]),
            expected.len()
        );
    }

    #[test]
    fn concurrent_probes_build_the_index_once_and_agree() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        for i in 0..3_000 {
            inst.insert_ok(r, &[Value::Int(i % 7), Value::Int(i % 11)]);
        }
        let expected: Vec<u32> = (0..inst.rel_len(r))
            .filter(|&row| inst.value_at(TupleId { rel: r, row }, 0) == Value::Int(3))
            .collect();
        // Race eight probers against the cold index; all must see the same
        // complete row set, single-column and composite alike.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let inst = &inst;
                let expected = &expected;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    inst.probe_into(r, 0, Value::Int(3), &mut out);
                    assert_eq!(&out, expected);
                    assert_eq!(
                        inst.probe_multi_len(r, &[0, 1], &[Value::Int(3), Value::Int(5)]),
                        (0..inst.rel_len(r))
                            .filter(|&row| {
                                let t = inst.tuple(TupleId { rel: r, row });
                                t[0] == Value::Int(3) && t[1] == Value::Int(5)
                            })
                            .count()
                    );
                });
            }
        });
        // Racing builders did the single-column catch-up once, not eight
        // times (same for the composite index): each build covers exactly
        // the relation's (deduplicated) rows.
        assert_eq!(inst.index_build_rows(), 2 * u64::from(inst.rel_len(r)));
    }

    #[test]
    fn clone_does_no_index_work_until_probed() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        for i in 0..500 {
            inst.insert_ok(r, &[Value::Int(i % 7), Value::Int(i)]);
        }
        let hits = (0..500).filter(|i| i % 7 == 3).count();
        assert_eq!(inst.probe_len(r, 0, Value::Int(3)), hits);
        assert_eq!(inst.index_build_rows(), 500);

        // Simulate an edit batch's snapshot churn: clone repeatedly without
        // probing. No index work may happen — the old deep-copying Clone
        // paid O(index) on every swap.
        let mut snap = inst.clone();
        for _ in 0..10 {
            snap = snap.clone();
        }
        assert_eq!(snap.index_build_rows(), 0);

        // The first probe on a clone lazily rebuilds (500 rows, once) and
        // agrees with the original.
        assert_eq!(snap.probe_len(r, 0, Value::Int(3)), hits);
        assert_eq!(snap.index_build_rows(), 500);
        // A second probe reuses the rebuilt index.
        let hits4 = (0..500).filter(|i| i % 7 == 4).count();
        assert_eq!(snap.probe_len(r, 0, Value::Int(4)), hits4);
        assert_eq!(snap.index_build_rows(), 500);
    }

    #[test]
    fn map_values_substitutes_and_dedups() {
        let mut pool = ValuePool::new();
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        let n1 = pool.named_null("N1");
        let n2 = pool.named_null("N2");
        inst.insert_ok(r, &[n1, Value::Int(1)]);
        inst.insert_ok(r, &[n2, Value::Int(1)]);
        assert_eq!(inst.rel_len(r), 2);
        // Identify N1 and N2: the two tuples collapse into one.
        let mapped = inst.map_values(&s, |v| if v == n2 { n1 } else { v });
        assert_eq!(mapped.rel_len(r), 1);
        assert!(mapped.contains(r, &[n1, Value::Int(1)]));
    }

    #[test]
    fn containment() {
        let (s, r, _) = schema2();
        let mut small = Instance::new(&s);
        let mut big = Instance::new(&s);
        small.insert_ok(r, &[Value::Int(1), Value::Int(2)]);
        big.insert_ok(r, &[Value::Int(1), Value::Int(2)]);
        big.insert_ok(r, &[Value::Int(3), Value::Int(4)]);
        assert!(small.contained_in(&big));
        assert!(!big.contained_in(&small));
        assert!(Instance::new(&s).contained_in(&small));
    }

    #[test]
    fn heap_accounting_grows_with_data() {
        let (s, r, _) = schema2();
        let mut inst = Instance::new(&s);
        let empty = inst.approx_heap_bytes();
        for i in 0..1000 {
            inst.insert_ok(r, &[Value::Int(i), Value::Int(i)]);
        }
        let full = inst.approx_heap_bytes();
        assert!(full > empty);
        // At least the raw tuple payload: 1000 rows × 2 values × 16 bytes.
        assert!(full >= 1000 * 2 * std::mem::size_of::<Value>());
    }

    #[test]
    fn iteration_orders() {
        let (s, r, t) = schema2();
        let mut inst = Instance::new(&s);
        inst.insert_ok(r, &[Value::Int(1), Value::Int(2)]);
        inst.insert_ok(t, &[Value::Int(9)]);
        let all: Vec<_> = inst.all_rows().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(inst.total_tuples(), 2);
        assert!(!inst.is_empty());
        let rel_tuples: Vec<_> = inst.rel_tuples(r).collect();
        assert_eq!(rel_tuples.len(), 1);
    }
}
