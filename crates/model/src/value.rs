//! Values: interned string constants, integer constants, and labeled nulls.
//!
//! Data exchange distinguishes *constants* (values that occur in the source)
//! from *labeled nulls* (placeholders invented for existentially quantified
//! variables, e.g. `N1`, `M1` in Figure 2 of the paper). A homomorphism must
//! fix constants but may map nulls anywhere, which is why the distinction is
//! carried in the value representation itself.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned string constant in a [`ValuePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// Handle to a labeled null registered in a [`ValuePool`].
///
/// Distinct `NullId`s denote possibly different unknown values; equality of
/// nulls is equality of labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u32);

/// A single data value: an integer constant, an interned string constant, or
/// a labeled null.
///
/// `Value` is `Copy` (16 bytes: the 8-byte `Int(i64)` payload plus the
/// discriminant, padded to alignment) so tuples can be compared and hashed
/// without chasing pointers; the string payloads live in the [`ValuePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// An interned string constant.
    Str(Symbol),
    /// A labeled null (an unknown value invented during data exchange).
    Null(NullId),
}

// Pin the size claim above so it can't rot: column vectors, batch buffers,
// and the heap accounting all assume this exact footprint.
const _: () = assert!(std::mem::size_of::<Value>() == 16);

impl Value {
    /// Whether this value is a constant (integer or string), as opposed to a
    /// labeled null.
    #[inline]
    pub fn is_constant(self) -> bool {
        !matches!(self, Value::Null(_))
    }

    /// Whether this value is a labeled null.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }
}

/// Interner for string constants and registry of labeled nulls.
///
/// A pool is the value universe for one debugging scenario: the source
/// instance, the target instance, the dependencies, and all routes computed
/// over them share one pool. Interning makes [`Value`] `Copy` and makes value
/// equality a word comparison, which the inner loops of query evaluation and
/// `findHom` rely on.
#[derive(Debug, Default, Clone)]
pub struct ValuePool {
    strings: Vec<String>,
    by_string: HashMap<String, Symbol>,
    null_labels: Vec<String>,
    by_null_label: HashMap<String, NullId>,
    fresh_counter: u64,
}

impl ValuePool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string constant, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.by_string.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("symbol space exhausted"));
        self.strings.push(s.to_owned());
        self.by_string.insert(s.to_owned(), sym);
        sym
    }

    /// Intern a string constant and wrap it as a [`Value`].
    pub fn str(&mut self, s: &str) -> Value {
        Value::Str(self.intern(s))
    }

    /// Look up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.by_string.get(s).copied()
    }

    /// The string payload of a symbol.
    ///
    /// # Panics
    /// Panics if the symbol does not belong to this pool.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Register (or look up) a labeled null with an explicit label such as
    /// `"N1"`. Idempotent: the same label yields the same null.
    pub fn named_null(&mut self, label: &str) -> Value {
        if let Some(&id) = self.by_null_label.get(label) {
            return Value::Null(id);
        }
        let id = NullId(u32::try_from(self.null_labels.len()).expect("null space exhausted"));
        self.null_labels.push(label.to_owned());
        self.by_null_label.insert(label.to_owned(), id);
        Value::Null(id)
    }

    /// Invent a fresh labeled null with an auto-generated label (`⊥0`, `⊥1`,
    /// ...), guaranteed distinct from all existing nulls in the pool.
    pub fn fresh_null(&mut self) -> Value {
        loop {
            let label = format!("_N{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_null_label.contains_key(&label) {
                return self.named_null(&label);
            }
        }
    }

    /// The label of a null.
    ///
    /// # Panics
    /// Panics if the null does not belong to this pool.
    pub fn null_label(&self, id: NullId) -> &str {
        &self.null_labels[id.0 as usize]
    }

    /// Number of interned strings.
    pub fn num_strings(&self) -> usize {
        self.strings.len()
    }

    /// Number of registered nulls.
    pub fn num_nulls(&self) -> usize {
        self.null_labels.len()
    }

    /// Render a value as a human-readable string.
    pub fn value_to_string(&self, v: Value) -> String {
        match v {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => self.resolve(s).to_owned(),
            Value::Null(n) => self.null_label(n).to_owned(),
        }
    }

    /// Display adaptor: `format!("{}", pool.display(v))` renders the value.
    pub fn display(&self, v: Value) -> DisplayValue<'_> {
        DisplayValue {
            pool: self,
            value: v,
        }
    }
}

/// Adaptor returned by [`ValuePool::display`].
pub struct DisplayValue<'a> {
    pool: &'a ValuePool,
    value: Value,
}

impl fmt::Display for DisplayValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(self.pool.resolve(s)),
            Value::Null(n) => f.write_str(self.pool.null_label(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut pool = ValuePool::new();
        let a = pool.intern("Seattle");
        let b = pool.intern("Seattle");
        assert_eq!(a, b);
        assert_eq!(pool.resolve(a), "Seattle");
        assert_eq!(pool.num_strings(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut pool = ValuePool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert_ne!(a, b);
    }

    #[test]
    fn named_nulls_are_idempotent_and_distinct_from_fresh() {
        let mut pool = ValuePool::new();
        let n1 = pool.named_null("N1");
        let n1_again = pool.named_null("N1");
        assert_eq!(n1, n1_again);
        let fresh = pool.fresh_null();
        assert_ne!(n1, fresh);
        assert!(fresh.is_null());
    }

    #[test]
    fn fresh_nulls_never_collide() {
        let mut pool = ValuePool::new();
        // Pre-register a label that the fresh generator would otherwise produce.
        let taken = pool.named_null("_N0");
        let fresh = pool.fresh_null();
        assert_ne!(taken, fresh);
    }

    #[test]
    fn constants_and_nulls_are_distinguished() {
        let mut pool = ValuePool::new();
        assert!(Value::Int(42).is_constant());
        assert!(pool.str("x").is_constant());
        assert!(pool.named_null("N").is_null());
        assert!(!pool.named_null("N").is_constant());
    }

    #[test]
    fn display_renders_all_variants() {
        let mut pool = ValuePool::new();
        let s = pool.str("hello");
        let n = pool.named_null("N7");
        assert_eq!(pool.display(Value::Int(5)).to_string(), "5");
        assert_eq!(pool.display(s).to_string(), "hello");
        assert_eq!(pool.display(n).to_string(), "N7");
    }

    #[test]
    fn lookup_does_not_insert() {
        let pool = ValuePool::new();
        assert!(pool.lookup("missing").is_none());
        assert_eq!(pool.num_strings(), 0);
    }
}
