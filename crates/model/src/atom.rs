//! Terms and atoms: the syntactic building blocks of conjunctive queries and
//! dependencies (tgds/egds).
//!
//! Variables are dense per-formula indices (`Var(0)`, `Var(1)`, ...): a tgd or
//! query numbers its variables consecutively, and assignments are dense
//! vectors indexed by `Var`. This keeps homomorphism manipulation allocation-
//! free in the inner loops.

use crate::schema::RelId;
use crate::value::Value;

/// A variable within one formula (query or dependency). The index is local
/// to the formula; `Var(3)` in two different tgds are unrelated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A term in an atom: a variable or a constant value.
///
/// Constants in dependencies must be constants in the data-exchange sense
/// (no labeled nulls); dependency validation enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A formula variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// A relational atom `R(t1, ..., tk)` over some schema.
///
/// Which schema `rel` refers to is positional: the left-hand side of a
/// source-to-target tgd speaks about the source schema, everything else about
/// the target schema. The dependency types in `routes-mapping` track this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation this atom constrains.
    pub rel: RelId,
    /// Terms, one per attribute of the relation.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom from a relation id and terms.
    pub fn new(rel: RelId, terms: Vec<Term>) -> Self {
        Atom { rel, terms }
    }

    /// Arity of the atom (number of terms).
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over the variables occurring in this atom (with duplicates,
    /// in positional order).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// The largest variable index occurring in the atom, if any.
    pub fn max_var(&self) -> Option<u32> {
        self.vars().map(|v| v.0).max()
    }
}

/// Compute the number of distinct variables needed to cover all atoms, i.e.
/// `1 + max var index` (0 if no variables occur).
pub fn var_space(atoms: &[Atom]) -> usize {
    atoms
        .iter()
        .filter_map(Atom::max_var)
        .max()
        .map_or(0, |m| m as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_vars_and_arity() {
        let a = Atom::new(
            RelId(0),
            vec![
                Term::Var(Var(0)),
                Term::Const(Value::Int(7)),
                Term::Var(Var(2)),
            ],
        );
        assert_eq!(a.arity(), 3);
        let vars: Vec<_> = a.vars().collect();
        assert_eq!(vars, [Var(0), Var(2)]);
        assert_eq!(a.max_var(), Some(2));
    }

    #[test]
    fn var_space_counts_max_plus_one() {
        let a = Atom::new(RelId(0), vec![Term::Var(Var(4))]);
        let b = Atom::new(RelId(1), vec![Term::Var(Var(1)), Term::Var(Var(0))]);
        assert_eq!(var_space(&[a, b]), 5);
        assert_eq!(var_space(&[]), 0);
        let no_vars = Atom::new(RelId(0), vec![Term::Const(Value::Int(1))]);
        assert_eq!(var_space(std::slice::from_ref(&no_vars)), 0);
    }

    #[test]
    fn term_as_var() {
        assert_eq!(Term::Var(Var(3)).as_var(), Some(Var(3)));
        assert_eq!(Term::Const(Value::Int(0)).as_var(), None);
    }
}
