//! Relational data model underlying the schema-mapping route debugger.
//!
//! This crate provides the storage substrate that the rest of the workspace
//! builds on. It corresponds to the role DB2 played in the original VLDB 2006
//! implementation of *Debugging Schema Mappings with Routes*:
//!
//! * [`Value`] — constants (interned strings and integers) and *labeled nulls*,
//!   the value domain of data exchange. Strings are interned in a [`ValuePool`]
//!   so values are `Copy` and cheap to hash and compare.
//! * [`Schema`] / [`Relation`] — named relations with named attributes.
//! * [`Instance`] — an append-only, duplicate-eliminating tuple store per
//!   relation. Row positions are stable, so a [`TupleId`] is a durable identity
//!   for a fact; routes are expressed in terms of these identities.
//! * Incremental per-column hash indexes, built lazily and caught up on demand
//!   (instances are append-only, so indexes never need invalidation).
//! * [`Term`] / [`Atom`] — the syntactic building blocks shared by the
//!   conjunctive-query evaluator and the dependency (tgd/egd) types.
//!
//! Instances from both sides of a mapping coexist in route structures, so a
//! fact is globally identified by a [`Fact`]: a [`Side`] plus a [`TupleId`].

pub mod atom;
pub mod display;
pub mod error;
pub mod instance;
pub mod joinstats;
pub mod schema;
pub mod value;

pub use atom::{Atom, Term, Var};
pub use display::{fact_to_string, tuple_to_string};
pub use error::ModelError;
pub use instance::{ColProbe, Fact, Instance, MultiProbe, Side, TupleId};
pub use joinstats::JoinSnapshot;
pub use schema::{RelId, Relation, Schema};
pub use value::{NullId, Symbol, Value, ValuePool};
