//! Relational schemas: named relations with named, positional attributes.

use std::collections::HashMap;

use crate::error::ModelError;

/// Index of a relation within a [`Schema`].
///
/// `RelId`s from the source and the target schema live in separate spaces;
/// the [`crate::Side`] of a fact disambiguates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// A relation declaration: a name plus an ordered list of attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    attrs: Vec<String>,
}

impl Relation {
    /// Create a relation declaration.
    pub fn new(name: impl Into<String>, attrs: &[&str]) -> Self {
        Relation {
            name: name.into(),
            attrs: attrs.iter().map(|a| (*a).to_owned()).collect(),
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names, in column order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Position of the attribute with the given name, if any.
    pub fn attr_position(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }
}

/// A relational schema: an ordered collection of [`Relation`]s addressable by
/// name or by [`RelId`].
#[derive(Debug, Clone, Default)]
pub struct Schema {
    rels: Vec<Relation>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Create an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation; returns its id.
    ///
    /// # Errors
    /// Returns [`ModelError::DuplicateRelation`] if a relation with the same
    /// name already exists.
    pub fn add_relation(&mut self, rel: Relation) -> Result<RelId, ModelError> {
        if self.by_name.contains_key(rel.name()) {
            return Err(ModelError::DuplicateRelation(rel.name().to_owned()));
        }
        let id = RelId(u32::try_from(self.rels.len()).expect("relation space exhausted"));
        self.by_name.insert(rel.name().to_owned(), id);
        self.rels.push(rel);
        Ok(id)
    }

    /// Convenience: add a relation from a name and attribute list.
    ///
    /// # Panics
    /// Panics on duplicate names; use [`Schema::add_relation`] for fallible
    /// insertion.
    pub fn rel(&mut self, name: &str, attrs: &[&str]) -> RelId {
        self.add_relation(Relation::new(name, attrs))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Look up a relation id by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The relation declaration for an id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this schema.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.rels[id.0 as usize]
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterate over `(RelId, &Relation)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Total number of attributes across all relations (the paper's “atomic
    /// elements” count for relational schemas, Table 1).
    pub fn total_attrs(&self) -> usize {
        self.rels.iter().map(Relation::arity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let cards = s.rel("Cards", &["cardNo", "limit", "ssn"]);
        assert_eq!(s.rel_id("Cards"), Some(cards));
        assert_eq!(s.relation(cards).arity(), 3);
        assert_eq!(s.relation(cards).attr_position("ssn"), Some(2));
        assert_eq!(s.relation(cards).attr_position("bogus"), None);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = Schema::new();
        s.rel("R", &["a"]);
        let err = s.add_relation(Relation::new("R", &["b"])).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateRelation(_)));
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let mut s = Schema::new();
        s.rel("A", &["x"]);
        s.rel("B", &["x", "y"]);
        let names: Vec<_> = s.iter().map(|(_, r)| r.name().to_owned()).collect();
        assert_eq!(names, ["A", "B"]);
        assert_eq!(s.total_attrs(), 3);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
