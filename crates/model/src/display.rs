//! Human-readable rendering of tuples and facts (used by examples, the
//! debugger's watch window, and error messages).

use crate::instance::{Fact, Instance, Side, TupleId};
use crate::schema::Schema;
use crate::value::ValuePool;

/// Render a tuple as `Rel(v1, v2, ...)`.
pub fn tuple_to_string(pool: &ValuePool, schema: &Schema, inst: &Instance, id: TupleId) -> String {
    let rel = schema.relation(id.rel);
    let mut out = String::with_capacity(32);
    out.push_str(rel.name());
    out.push('(');
    for (i, &v) in inst.tuple(id).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&pool.value_to_string(v));
    }
    out.push(')');
    out
}

/// Render a fact, choosing the right schema/instance by its [`Side`].
pub fn fact_to_string(
    pool: &ValuePool,
    source_schema: &Schema,
    target_schema: &Schema,
    source: &Instance,
    target: &Instance,
    fact: Fact,
) -> String {
    match fact.side {
        Side::Source => tuple_to_string(pool, source_schema, source, fact.id),
        Side::Target => tuple_to_string(pool, target_schema, target, fact.id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn renders_relation_name_and_values() {
        let mut pool = ValuePool::new();
        let mut s = Schema::new();
        let r = s.rel("Cards", &["cardNo", "limit"]);
        let mut inst = Instance::new(&s);
        let name = pool.str("J. Long");
        let id = inst.insert_ok(r, &[Value::Int(6689), name]);
        assert_eq!(
            tuple_to_string(&pool, &s, &inst, id),
            "Cards(6689, J. Long)"
        );
    }

    #[test]
    fn fact_rendering_picks_side() {
        let mut pool = ValuePool::new();
        let mut ss = Schema::new();
        let sr = ss.rel("S", &["a"]);
        let mut ts = Schema::new();
        let tr = ts.rel("T", &["a"]);
        let mut i = Instance::new(&ss);
        let mut j = Instance::new(&ts);
        let sid = i.insert_ok(sr, &[Value::Int(1)]);
        let tid = j.insert_ok(tr, &[pool.named_null("N1")]);
        assert_eq!(
            fact_to_string(&pool, &ss, &ts, &i, &j, Fact::source(sid)),
            "S(1)"
        );
        assert_eq!(
            fact_to_string(&pool, &ss, &ts, &i, &j, Fact::target(tid)),
            "T(N1)"
        );
    }
}
