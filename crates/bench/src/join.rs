//! Vectorized-join micro-benchmark: the batch executor against the
//! row-at-a-time `MatchIter` on full-enumeration workloads.
//!
//! Run via the `repro` binary: `repro micro join [--quick]` prints the
//! table and writes `bench_results/micro_join.csv` with columns
//! `generator, scenario, tgds, matches, row_seconds, batch1_seconds,
//! batch64_seconds, batch1024_seconds, speedup_batch64`.
//!
//! The workload is the one the chase saturation loop and
//! `ComputeAllRoutes` both live in: enumerate **every** match of every
//! tgd's premise conjunction (s-t premises against `I`, target premises
//! against the chased `J`), materializing `Vec<Bindings>` exactly as the
//! chase consumes it on both sides. Both executors share the same plans
//! and the same lazily built hash indexes (warmup builds them), and the
//! fuzz gate (`crates/query/tests/fuzz_differential.rs`) pins their
//! enumeration sequences byte-identical — so the sweep measures pure
//! executor overhead: per-binding allocation, locking, and posting-list
//! copies in the lazy iterator versus the batch pipeline's compiled
//! stages, pinned indexes, and probe memos. Batch size 1 shows the
//! pipeline's fixed overhead; 64 and 1024 show the amortized win.

use routes_chase::{chase, ChaseOptions};
use routes_gen::hierarchy::DeepRows;
use routes_gen::{deep_scenario, random_scenario, relational_scenario, Scenario, TpchRows};
use routes_mapping::{SchemaMapping, TgdId, TgdKind};
use routes_model::Instance;
use routes_query::{
    batch_matches_with_plan_into, plan, BatchOptions, BindingBatch, Bindings, EvalOptions,
    MatchIter,
};

use crate::{bench_median, secs, Table};

/// Batch sizes swept against the row-at-a-time baseline.
pub const JOIN_BATCH_SIZES: [usize; 3] = [1, 64, 1024];

/// One full-enumeration workload: a mapping plus the instances its tgd
/// premises join against.
struct Workload {
    generator: &'static str,
    name: String,
    mapping: SchemaMapping,
    source: Instance,
    target: Instance,
}

fn workload(generator: &'static str, mut scenario: Scenario) -> Workload {
    let chased = chase(
        &scenario.mapping,
        &scenario.source,
        &mut scenario.pool,
        ChaseOptions::fresh(),
    )
    .expect("generated scenarios chase");
    Workload {
        generator,
        name: scenario.name,
        mapping: scenario.mapping,
        source: scenario.source,
        target: chased.target,
    }
}

fn lhs_instance(w: &Workload, id: TgdId) -> &Instance {
    match id.kind() {
        TgdKind::SourceToTarget => &w.source,
        TgdKind::Target => &w.target,
    }
}

/// Row-at-a-time baseline: drain the lazy iterator over every tgd premise,
/// materializing each match exactly as the pre-vectorization chase did
/// (`all_matches` clones every yielded binding).
fn enumerate_lazy(w: &Workload) -> u64 {
    let mut count = 0u64;
    let mut out: Vec<Bindings> = Vec::new();
    for id in w.mapping.tgd_ids() {
        let tgd = w.mapping.tgd(id);
        let mut it = MatchIter::new(
            lhs_instance(w, id),
            tgd.lhs(),
            Bindings::new(tgd.var_count()),
        );
        out.clear();
        while let Some(b) = it.next_match() {
            out.push(b.clone());
        }
        count += out.len() as u64;
    }
    count
}

/// Vectorized path: push every tgd premise through the batch pipeline,
/// materializing `Vec<Bindings>` the way the chase saturation loop consumes
/// it (`batch_matches_with_plan_into`).
fn enumerate_batched(w: &Workload, batch_size: usize) -> u64 {
    let opts = BatchOptions {
        eval: EvalOptions::default(),
        batch_size,
    };
    let mut count = 0u64;
    let mut out: Vec<Bindings> = Vec::new();
    for id in w.mapping.tgd_ids() {
        let tgd = w.mapping.tgd(id);
        let inst = lhs_instance(w, id);
        let init = Bindings::new(tgd.var_count());
        let order = plan(inst, tgd.lhs(), &init);
        let seeds = BindingBatch::seed(&init);
        out.clear();
        batch_matches_with_plan_into(inst, tgd.lhs(), &order, &seeds, &opts, &mut out);
        count += out.len() as u64;
    }
    count
}

/// Run the sweep. `quick` shrinks instances and samples for CI smoke.
pub fn join_benches(quick: bool) -> Table {
    let (warmup, samples) = if quick { (1, 1) } else { (2, 7) };
    let mut workloads: Vec<Workload> = Vec::new();

    // TPC-H copy groups with 3 joins per tgd premise (paper Figure 9's
    // M3), at two scales.
    let tpch_scales: &[f64] = if quick { &[0.002] } else { &[0.01, 0.03] };
    for &sf in tpch_scales {
        let mut w = workload(
            "tpch",
            relational_scenario(3, &TpchRows::scale(sf), 7).scenario,
        );
        w.name = format!("M3-sf{sf}");
        workloads.push(w);
    }

    // Deep hierarchy: one 5-atom chain join per premise.
    let deep = if quick {
        DeepRows {
            regions: 3,
            nations_per: 3,
            customers_per: 4,
            orders_per: 3,
            lineitems_per: 2,
        }
    } else {
        DeepRows {
            regions: 5,
            nations_per: 5,
            customers_per: 10,
            orders_per: 8,
            lineitems_per: 4,
        }
    };
    let mut w = workload("hierarchy", deep_scenario(&deep, 11).scenario);
    w.name = format!("deep-{}nodes", deep.total_nodes());
    workloads.push(w);

    // Random mappings: many small scenarios enumerated back to back, the
    // shape `findHom` probes take.
    let n_random = if quick { 8 } else { 64 };
    for seed in 0..n_random {
        workloads.push(workload("random", random_scenario(0x901D + seed)));
    }

    let mut out = Table::new(
        "micro_join",
        &[
            "generator",
            "scenario",
            "tgds",
            "matches",
            "row_seconds",
            "batch1_seconds",
            "batch64_seconds",
            "batch1024_seconds",
            "speedup_batch64",
        ],
    );

    // The random workloads are individually tiny; time them as one group
    // so the measurement stays above clock noise.
    let groups: Vec<Vec<&Workload>> = {
        let mut named: Vec<Vec<&Workload>> = workloads
            .iter()
            .filter(|w| w.generator != "random")
            .map(|w| vec![w])
            .collect();
        let random: Vec<&Workload> = workloads
            .iter()
            .filter(|w| w.generator == "random")
            .collect();
        named.push(random);
        named
    };
    for group in groups {
        let total = |f: &dyn Fn(&Workload) -> u64| -> u64 { group.iter().map(|w| f(w)).sum() };
        let matches = total(&enumerate_lazy);
        for batch_size in JOIN_BATCH_SIZES {
            assert_eq!(
                total(&|w| enumerate_batched(w, batch_size)),
                matches,
                "batch and lazy executors must enumerate the same matches"
            );
        }
        let row_time = bench_median(warmup, samples, || total(&enumerate_lazy));
        let batch_times: Vec<_> = JOIN_BATCH_SIZES
            .iter()
            .map(|&b| bench_median(warmup, samples, || total(&|w| enumerate_batched(w, b))))
            .collect();
        let speedup = if batch_times[1].as_secs_f64() > 0.0 {
            row_time.as_secs_f64() / batch_times[1].as_secs_f64()
        } else {
            f64::INFINITY
        };
        let (generator, name, tgds) = match group.as_slice() {
            [w] => (
                w.generator,
                w.name.clone(),
                w.mapping.tgd_ids().count().to_string(),
            ),
            many => (
                "random",
                format!("{}-scenarios", many.len()),
                many.iter()
                    .map(|w| w.mapping.tgd_ids().count())
                    .sum::<usize>()
                    .to_string(),
            ),
        };
        out.push(vec![
            generator.to_owned(),
            name,
            tgds,
            matches.to_string(),
            secs(row_time),
            secs(batch_times[0]),
            secs(batch_times[1]),
            secs(batch_times[2]),
            format!("{speedup:.2}"),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_rows() {
        let table = join_benches(true);
        // tpch sweep + hierarchy + the pooled random group.
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            assert_eq!(row.len(), 9);
            assert!(
                row[3].parse::<u64>().unwrap() > 0,
                "workloads must enumerate matches"
            );
            assert!(row[4].parse::<f64>().unwrap() >= 0.0);
            assert!(row[8].parse::<f64>().unwrap() > 0.0);
        }
    }
}
