//! Observability-overhead micro-benchmark: the `get-session` hot path
//! through [`App::handle_traced`] with tracing off, tracing on, and
//! tracing on with every request tripping the slow-request log line.
//!
//! Run via the `repro` binary: `repro micro obs [--quick]` prints the
//! table and writes `bench_results/micro_obs.csv` with columns
//! `case, requests, median_s, ns_per_request, overhead_pct`.
//!
//! The acceptance bar (ISSUE 5) is tracing-on overhead ≤ 5% over
//! tracing-off on this path. The request is a `GET /sessions/{id}` against
//! a moderately sized scenario (8 relation pairs, 48 rows each), so the
//! baseline includes real summary rendering, not just dispatch.

use std::sync::Arc;
use std::time::Duration;

use routes_chase::ChaseOptions;
use routes_cli::{load_scenario_str, prepare_scenario};
use routes_pool::Pool;
use routes_server::http::Request;
use routes_server::{App, SessionStore};

use crate::{secs, Table};

/// Relation pairs in the benchmark scenario.
const RELATIONS: usize = 8;
/// Rows per source relation.
const ROWS: usize = 48;

fn scenario_text() -> String {
    let mut source = String::from("source schema:\n");
    let mut target = String::from("target schema:\n");
    let mut deps = String::from("dependencies:\n");
    let mut data = String::from("source data:\n");
    for r in 0..RELATIONS {
        source.push_str(&format!("  S{r}(a, b)\n"));
        target.push_str(&format!("  T{r}(a, b)\n"));
        deps.push_str(&format!("  m{r}: S{r}(x, y) -> T{r}(x, y)\n"));
        for row in 0..ROWS {
            data.push_str(&format!("  S{r}({}, {})\n", row, row + 1));
        }
    }
    format!("{source}{target}{deps}{data}")
}

/// Build an app holding one prepared session; returns the app and the
/// session's id.
fn app_with_session(tracer: routes_obs::Tracer, slow: Duration) -> (App, u64) {
    let prepared = prepare_scenario(
        load_scenario_str(&scenario_text()).unwrap(),
        ChaseOptions::fresh(),
    )
    .unwrap();
    let pool = Pool::sequential();
    let store = SessionStore::with_shards(4, 1);
    let (id, _) = store.insert(prepared, &pool);
    let app = App::with_observability(store, Pool::sequential(), None, Arc::new(tracer), slow);
    (app, id)
}

fn get_request(id: u64) -> Request {
    Request {
        method: "GET".to_owned(),
        path: format!("/sessions/{id}"),
        query: String::new(),
        headers: Vec::new(),
        body: Vec::new(),
        keep_alive: true,
    }
}

/// One timed batch: `requests` traced get-session requests; returns the
/// number of 200s (kept so the work cannot be optimized away).
fn drive(app: &App, req: &Request, requests: usize) -> usize {
    (0..requests)
        .filter(|_| app.handle_traced(req).status == 200)
        .count()
}

/// Run the tracing-overhead sweep. `quick` shrinks batch sizes and samples
/// for CI smoke runs.
pub fn obs_benches(quick: bool) -> Table {
    let (warmup, samples) = if quick { (1, 3) } else { (2, 15) };
    let requests = if quick { 500 } else { 20_000 };
    let mut out = Table::new(
        "micro_obs",
        &[
            "case",
            "requests",
            "median_s",
            "ns_per_request",
            "overhead_pct",
        ],
    );

    // The slow-log case fires a warning per request; keep the benchmark's
    // own stderr clean (and the cost honest: rendering still happens).
    type Case = (&'static str, fn() -> routes_obs::Tracer, Duration, bool);
    let cases: [Case; 3] = [
        (
            "tracing_off",
            routes_obs::Tracer::disabled,
            Duration::from_millis(500),
            false,
        ),
        (
            "tracing_on",
            || routes_obs::Tracer::new(4096, 0),
            Duration::from_millis(500),
            false,
        ),
        (
            "tracing_on_slow_log",
            || routes_obs::Tracer::new(4096, 0),
            Duration::ZERO,
            true,
        ),
    ];

    // Interleave the cases round-robin: clock-frequency drift and noisy
    // neighbors then bias every case equally instead of whichever case
    // happened to run during the slow stretch.
    let prepared: Vec<_> = cases
        .iter()
        .map(|&(_, tracer, slow, _)| {
            let (app, id) = app_with_session(tracer(), slow);
            let req = get_request(id);
            (app, req)
        })
        .collect();
    let mut timings: Vec<Vec<std::time::Duration>> = vec![Vec::new(); cases.len()];
    for round in 0..warmup + samples {
        for (i, &(_, _, _, silence)) in cases.iter().enumerate() {
            if silence {
                routes_obs::set_sink(Some(Box::new(std::io::sink())));
            }
            let (app, req) = &prepared[i];
            let start = std::time::Instant::now();
            assert_eq!(drive(app, req, requests), requests);
            let elapsed = start.elapsed();
            if silence {
                routes_obs::set_sink(None);
            }
            if round >= warmup {
                timings[i].push(elapsed);
            }
        }
    }

    let mut baseline_ns: Option<f64> = None;
    for ((name, _, _, _), mut times) in cases.into_iter().zip(timings) {
        times.sort_unstable();
        let median = times[times.len() / 2];
        let per_request_ns = median.as_nanos() as f64 / requests as f64;
        let overhead = match baseline_ns {
            None => {
                baseline_ns = Some(per_request_ns);
                0.0
            }
            Some(base) => 100.0 * (per_request_ns - base) / base,
        };
        out.push(vec![
            name.to_owned(),
            requests.to_string(),
            secs(median),
            format!("{per_request_ns:.0}"),
            format!("{overhead:.2}"),
        ]);
    }
    out
}
