//! Session-store shard-scaling micro-benchmark: eight driver threads of
//! mixed traffic against [`SessionStore`]s at 1/2/4/8 shards.
//!
//! Run via the `repro` binary: `repro micro sessions [--quick]` prints the
//! table and writes `bench_results/micro_sessions.csv` with columns
//! `workload, shards, threads, median_seconds, speedup_vs_1shard`.
//!
//! Two workloads bracket the service's behavior:
//!
//! * `get_heavy` — 95% lookups / 5% inserts, the steady state of a
//!   debugging session pool (every `/one-route` and `/all-routes` request
//!   is a store lookup). This is where sharding pays: lookups take only a
//!   shard's read lock, so N shards multiply read-side throughput limits.
//! * `churn` — 50% lookups / 50% inserts, worst-case tenant turnover with
//!   constant eviction pressure on the write locks.
//!
//! The accounting is deterministic per workload (seeded SplitMix64 per
//! thread), so shard counts differ only in lock contention. On a
//! single-core host the speedup column honestly reports ≈ 1.
//!
//! Sessions are stamped out by cloning one prepared prototype scenario, so
//! the measured time is store traffic, not chase time.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use routes_chase::ChaseOptions;
use routes_cli::{load_scenario_str, prepare_scenario, PreparedScenario};
use routes_gen::Rng;
use routes_pool::Pool;
use routes_server::SessionStore;

use crate::{bench_median, secs, Table};

/// The shard counts swept.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Driver threads hammering the store concurrently.
const DRIVERS: usize = 8;

struct Workload {
    name: &'static str,
    /// Per-mille probability that an op is an insert (the rest are gets).
    insert_pct: u32,
}

const WORKLOADS: [Workload; 2] = [
    Workload {
        name: "get_heavy",
        insert_pct: 5,
    },
    Workload {
        name: "churn",
        insert_pct: 50,
    },
];

fn prototype() -> PreparedScenario {
    let text = "source schema:\n  S(a)\ntarget schema:\n  T(a)\n\
                dependencies:\n  m: S(x) -> T(x)\nsource data:\n  S(1)\n";
    prepare_scenario(load_scenario_str(text).unwrap(), ChaseOptions::fresh()).unwrap()
}

/// One timed run: `DRIVERS` threads each execute `ops` seeded operations
/// (`insert_pct`% inserts, the rest gets) against a fresh store with
/// `shards` shards; returns the number of hits (kept so the work cannot be
/// optimized away).
fn drive(
    proto: &PreparedScenario,
    shards: usize,
    capacity: usize,
    ops: usize,
    insert_pct: u32,
) -> u64 {
    let store = SessionStore::with_shards(capacity, shards);
    let hits = AtomicU64::new(0);
    // Pre-populate to capacity so get_heavy starts at steady state.
    let workers = Pool::sequential();
    let mut seed_ids: Vec<u64> = Vec::with_capacity(capacity);
    for _ in 0..capacity {
        seed_ids.push(store.insert(proto.clone(), &workers).0);
    }
    std::thread::scope(|s| {
        for t in 0..DRIVERS {
            let store = &store;
            let hits = &hits;
            let seed_ids = &seed_ids;
            s.spawn(move || {
                let mut rng = Rng::seed_from_u64(0xBEEF + t as u64);
                let workers = Pool::sequential();
                let mut known: Vec<u64> = seed_ids.clone();
                let mut local_hits = 0u64;
                for _ in 0..ops {
                    let roll = rng.gen_range(0u32..100);
                    if roll < insert_pct {
                        let (id, _) = store.insert(proto.clone(), &workers);
                        known.push(id);
                    } else {
                        let id = known[rng.gen_range(0..known.len())];
                        if store.get(id).is_found() {
                            local_hits += 1;
                        }
                    }
                }
                hits.fetch_add(local_hits, Relaxed);
            });
        }
    });
    hits.load(Relaxed)
}

/// Run the shard-scaling sweep. `quick` shrinks op counts and samples for
/// CI smoke runs.
pub fn session_benches(quick: bool) -> Table {
    let (warmup, samples) = if quick { (1, 3) } else { (1, 5) };
    let (capacity, ops) = if quick { (32, 200) } else { (64, 1500) };
    let mut out = Table::new(
        "micro_sessions",
        &[
            "workload",
            "shards",
            "threads",
            "median_seconds",
            "speedup_vs_1shard",
        ],
    );
    let proto = prototype();
    for workload in &WORKLOADS {
        let mut base = None;
        for &shards in &SHARD_COUNTS {
            let t = bench_median(warmup, samples, || {
                drive(&proto, shards, capacity, ops, workload.insert_pct)
            });
            let base = *base.get_or_insert(t.as_secs_f64());
            let speedup = if t.as_secs_f64() > 0.0 {
                base / t.as_secs_f64()
            } else {
                1.0
            };
            out.push(vec![
                workload.name.to_owned(),
                shards.to_string(),
                DRIVERS.to_string(),
                secs(t),
                format!("{speedup:.2}"),
            ]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_rows_for_every_workload_and_shard_count() {
        let table = session_benches(true);
        assert_eq!(table.rows.len(), WORKLOADS.len() * SHARD_COUNTS.len());
        for row in &table.rows {
            assert_eq!(row.len(), 5);
            assert_eq!(row[2], DRIVERS.to_string());
            let median: f64 = row[3].parse().unwrap();
            let speedup: f64 = row[4].parse().unwrap();
            assert!(median >= 0.0);
            assert!(speedup > 0.0);
        }
        // Every 1-shard row is its workload's baseline by construction.
        for row in table.rows.iter().filter(|r| r[1] == "1") {
            assert_eq!(row[4], "1.00");
        }
    }
}
