//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§4): Figures 10(a)–(d), the flat-hierarchy experiments, the
//! deep-hierarchy Figure 11, and Table 1 with its §4.2 timings.
//!
//! ## Size labels
//!
//! The paper's relational instances are 10/50/100/500 MB under DB2 2006 —
//! TPC-H scale factors ≈ 0.01/0.05/0.1/0.5. Absolute sizes are not the
//! point (our substrate is an in-memory Rust store, not DB2); the *ratios*
//! are. [`Sizing`] maps the paper's labels to scale factors multiplied by a
//! configurable `factor` (default 0.1) so a full reproduction run finishes
//! in minutes while preserving the 1 : 5 : 10 : 50 sweep.
//!
//! ## Measurement protocol
//!
//! As in the paper: each point is run three times and the reported number
//! averages the second and third runs (the first warms the lazily built
//! column indexes, as the paper's first run warmed the DB2 buffer pool).

pub mod edit;
pub mod experiments;
pub mod http;
pub mod join;
pub mod micro;
pub mod obs;
pub mod parallel;
pub mod persist;
pub mod pipeline;
pub mod prof;
pub mod sessions;
pub mod table;

pub use edit::edit_benches;
pub use experiments::{fig10a, fig10b, fig10c, fig10d, fig11, flat_hierarchy, table1, Sizing};
pub use http::http_benches;
pub use join::join_benches;
pub use micro::micro_benches;
pub use obs::obs_benches;
pub use parallel::{parallel_benches, thread_counts};
pub use persist::persist_benches;
pub use pipeline::pipeline_benches;
pub use prof::prof_benches;
pub use sessions::session_benches;
pub use table::Table;

use std::time::{Duration, Instant};

/// Run `f` three times; report the average of runs two and three.
pub fn measure<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut result = None;
    let mut durations = Vec::with_capacity(3);
    for _ in 0..3 {
        let start = Instant::now();
        let r = f();
        durations.push(start.elapsed());
        result = Some(r);
    }
    let avg = (durations[1] + durations[2]) / 2;
    (avg, result.expect("f ran"))
}

/// Format a duration in seconds with millisecond precision (the paper's
/// plots are in seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Median-of-N timing with warmup, the std replacement for the retired
/// criterion harness: run `f` `warmup` times untimed (populating lazy
/// column indexes and the allocator), then time `samples` runs and report
/// the median. The median is robust against one-off scheduler noise, which
/// is the property criterion's point estimate gave us.
pub fn bench_median<R>(warmup: usize, samples: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(samples > 0, "need at least one timed sample");
    for _ in 0..warmup {
        let _ = f();
    }
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}
