//! Incremental-edit micro-benchmark: `routes_incr::apply_batch` (memoized
//! delta-chase) against a full re-load + re-chase of the edited text.
//!
//! Run via the `repro` binary: `repro micro edit [--quick]` prints the
//! table and writes `bench_results/micro_edit.csv` with columns
//! `sources, degree, batches, ops, incremental_seconds, full_seconds,
//! speedup`.
//!
//! Both paths replay the *same* pinned campaign
//! ([`routes_gen::sized_edit_campaign`]) batch by batch, and both end at
//! the identical solution (the differential tests pin that equality); the
//! sweep measures only wall time. The incremental path's saving is match
//! *enumeration*: it joins only the delta rows against each tgd's memoized
//! match set, while the full path re-enumerates every premise join from
//! scratch — so the gap widens with instance size while the per-batch edit
//! stays small (the small-delta regime a live debugging session lives in).

use std::time::Duration;

use routes_chase::ChaseOptions;
use routes_cli::{load_scenario_str, prepare_scenario_with, PreparedScenario};
use routes_gen::sized_edit_campaign;
use routes_incr::{apply_batch, apply_edits, IncrState};
use routes_pool::Pool;
use routes_store::EditOp;

use crate::{secs, Table};

/// Instance sizes swept (source nodes; each has `DEGREE` out-edges).
pub const EDIT_SIZES: [usize; 3] = [256, 1024, 4096];
const EDIT_SIZES_QUICK: [usize; 1] = [96];

/// Out-degree of the campaign's `S` graph: dense enough that the `tri`
/// self-join dominates full re-enumeration.
const DEGREE: usize = 16;

fn prepare(text: &str, workers: &Pool) -> PreparedScenario {
    let loaded = load_scenario_str(text).expect("campaign scenario loads");
    prepare_scenario_with(loaded, ChaseOptions::fresh(), workers).expect("campaign chases")
}

/// Replay every batch through the incremental path, threading text,
/// prepared scenario, and memo state; returns total wall time.
fn run_incremental(base: &str, batches: &[Vec<EditOp>], workers: &Pool) -> Duration {
    let mut text = base.to_owned();
    let mut scenario = prepare(base, workers);
    let mut state = IncrState::default();
    let started = std::time::Instant::now();
    for ops in batches {
        let apply = apply_batch(
            &text,
            &scenario,
            &state,
            ops,
            ChaseOptions::fresh(),
            workers,
        )
        .expect("campaign batches are valid");
        text = apply.text;
        scenario = apply.scenario;
        state = apply.state;
    }
    started.elapsed()
}

/// Replay every batch as a from-scratch re-load + re-chase of the edited
/// text (what a server without the incremental path would do).
fn run_full(base: &str, batches: &[Vec<EditOp>], workers: &Pool) -> Duration {
    let mut text = base.to_owned();
    let started = std::time::Instant::now();
    for ops in batches {
        let (next, loaded) = apply_edits(&text, ops).expect("campaign batches are valid");
        let _ =
            prepare_scenario_with(loaded, ChaseOptions::fresh(), workers).expect("campaign chases");
        text = next;
    }
    started.elapsed()
}

/// Run the size sweep. `quick` shrinks sizes and samples for CI smoke.
pub fn edit_benches(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &EDIT_SIZES_QUICK
    } else {
        &EDIT_SIZES
    };
    let (warmup, samples) = if quick { (0, 1) } else { (1, 3) };
    let (n_batches, ops_per_batch) = (4, 4);
    let workers = Pool::sequential();
    let mut out = Table::new(
        "micro_edit",
        &[
            "sources",
            "degree",
            "batches",
            "ops",
            "incremental_seconds",
            "full_seconds",
            "speedup",
        ],
    );
    // The runners time the replay loop themselves (excluding the base
    // prepare both paths share), so take the median of their reported
    // durations rather than wrapping them in `bench_median`.
    let median_of = |warmup: usize, samples: usize, f: &mut dyn FnMut() -> Duration| {
        for _ in 0..warmup {
            let _ = f();
        }
        let mut times: Vec<Duration> = (0..samples).map(|_| f()).collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    for &n in sizes {
        let campaign = sized_edit_campaign(0xED17, n, DEGREE, n_batches, ops_per_batch);
        let inc = median_of(warmup, samples, &mut || {
            run_incremental(&campaign.scenario, &campaign.batches, &workers)
        });
        let ful = median_of(warmup, samples, &mut || {
            run_full(&campaign.scenario, &campaign.batches, &workers)
        });
        let speedup = if inc.as_secs_f64() > 0.0 {
            ful.as_secs_f64() / inc.as_secs_f64()
        } else {
            f64::INFINITY
        };
        out.push(vec![
            n.to_string(),
            DEGREE.to_string(),
            n_batches.to_string(),
            campaign.total_ops().to_string(),
            secs(inc),
            secs(ful),
            format!("{speedup:.2}"),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_rows() {
        let table = edit_benches(true);
        assert_eq!(table.rows.len(), EDIT_SIZES_QUICK.len());
        for row in &table.rows {
            assert_eq!(row.len(), 7);
            assert!(row[4].parse::<f64>().unwrap() >= 0.0);
            assert!(row[5].parse::<f64>().unwrap() >= 0.0);
        }
    }
}
