//! Reproduce the paper's evaluation: prints each figure/table's series and
//! writes CSVs under `bench_results/`.
//!
//! ```text
//! repro [all|fig10a|fig10b|fig10c|fig10d|flat|fig11|table1|micro] [--factor F]
//! repro micro parallel [--quick]
//! repro micro sessions [--quick]
//! repro micro persist [--quick]
//! repro micro obs [--quick]
//! repro micro edit [--quick]
//! repro micro join [--quick]
//! repro micro http [--quick]
//! repro micro pipeline [--quick]
//! repro micro prof [--quick]
//! ```
//!
//! `--factor` scales the paper-equivalent instance sizes (default 0.1; use
//! 1.0 for full paper-scale instances — slow). `micro` runs the
//! fixed-small-scale micro-benchmarks (the retired criterion harnesses) and
//! is not part of `all`; it ignores `--factor`. `micro parallel` runs the
//! thread-scaling sweep (chase + all-routes at 1/2/4/N worker threads) and
//! writes `bench_results/micro_parallel.csv`; `micro sessions` runs the
//! session-store shard-scaling sweep (8 driver threads against 1/2/4/8
//! shards) and writes `bench_results/micro_sessions.csv`; `micro persist`
//! runs the WAL fsync-batch sweep (append throughput and recovery time at
//! 1/8/64/512 records per fsync) and writes
//! `bench_results/micro_persist.csv`; `micro obs` measures tracing
//! overhead on the get-session hot path (off vs on vs slow-log) and
//! writes `bench_results/micro_obs.csv`; `micro edit` compares the
//! incremental delta-chase against a full re-chase over a pinned edit
//! campaign and writes `bench_results/micro_edit.csv`; `micro join` sweeps
//! the vectorized batch executor against the row-at-a-time `MatchIter` at
//! batch sizes 1/64/1024 over the TPC-H, hierarchy, and random generators
//! and writes `bench_results/micro_join.csv`; `micro http` saturates a
//! small-capacity `spiderd` with closed-loop clients through the real
//! socket path (accept, admission queue, probe, response) and writes
//! `bench_results/micro_http.csv`; `micro pipeline` chases a
//! redundancy-heavy mapping chain at increasing hop counts with core
//! minimization off and on, stitches end-to-end routes for a pinned probe
//! set, and writes `bench_results/micro_pipeline.csv`; `--quick` shrinks
//! any of them to a CI smoke run.

use std::path::Path;

use routes_bench::{
    edit_benches, fig10a, fig10b, fig10c, fig10d, fig11, flat_hierarchy, http_benches,
    join_benches, micro_benches, obs_benches, parallel_benches, persist_benches, pipeline_benches,
    prof_benches, session_benches, table1, Sizing, Table,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut sizing = Sizing::default();
    let mut quick = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--factor" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| usage("--factor requires a number"));
                sizing.factor = v;
            }
            "--quick" => quick = true,
            name if !name.starts_with('-') => positionals.push(name.to_owned()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let which = match positionals.as_slice() {
        [] => "all".to_owned(),
        [one] => one.clone(),
        [a, b] if a == "micro" && b == "parallel" => "micro-parallel".to_owned(),
        [a, b] if a == "micro" && b == "sessions" => "micro-sessions".to_owned(),
        [a, b] if a == "micro" && b == "persist" => "micro-persist".to_owned(),
        [a, b] if a == "micro" && b == "obs" => "micro-obs".to_owned(),
        [a, b] if a == "micro" && b == "edit" => "micro-edit".to_owned(),
        [a, b] if a == "micro" && b == "join" => "micro-join".to_owned(),
        [a, b] if a == "micro" && b == "http" => "micro-http".to_owned(),
        [a, b] if a == "micro" && b == "pipeline" => "micro-pipeline".to_owned(),
        [a, b] if a == "micro" && b == "prof" => "micro-prof".to_owned(),
        _ => usage("too many experiment names"),
    };

    let out_dir = Path::new("bench_results");
    let run = |name: &str| which == "all" || which == name;
    let mut ran = false;

    let emit = |name: &str, tables: Vec<Table>| {
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.to_text());
            let suffix = if tables.len() > 1 {
                format!("{name}_{i}")
            } else {
                name.to_owned()
            };
            if let Err(e) = t.save_csv(out_dir, &suffix) {
                eprintln!("warning: could not write {suffix}.csv: {e}");
            }
        }
    };

    println!(
        "Reproducing 'Debugging Schema Mappings with Routes' (VLDB 2006) — size factor {}\n",
        sizing.factor
    );
    if run("fig10a") {
        eprintln!("running fig10a ...");
        emit("fig10a", vec![fig10a(&sizing)]);
        ran = true;
    }
    if run("fig10b") {
        eprintln!("running fig10b ...");
        emit("fig10b", vec![fig10b(&sizing)]);
        ran = true;
    }
    if run("fig10c") {
        eprintln!("running fig10c ...");
        emit("fig10c", vec![fig10c(&sizing)]);
        ran = true;
    }
    if run("fig10d") {
        eprintln!("running fig10d ...");
        emit("fig10d", vec![fig10d(&sizing)]);
        ran = true;
    }
    if run("flat") {
        eprintln!("running flat-hierarchy ...");
        emit("flat", flat_hierarchy(&sizing));
        ran = true;
    }
    if run("fig11") {
        eprintln!("running fig11 ...");
        emit("fig11", vec![fig11(&sizing)]);
        ran = true;
    }
    if run("table1") {
        eprintln!("running table1 ...");
        emit("table1", table1(&sizing));
        ran = true;
    }
    if which == "micro" {
        eprintln!("running micro-benchmarks ...");
        for t in micro_benches() {
            let name = t.title.clone();
            emit(&name, vec![t]);
        }
        ran = true;
    }
    if which == "micro-parallel" {
        eprintln!(
            "running thread-scaling micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = parallel_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-sessions" {
        eprintln!(
            "running session-store shard-scaling micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = session_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-persist" {
        eprintln!(
            "running WAL fsync-batch micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = persist_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-obs" {
        eprintln!(
            "running tracing-overhead micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = obs_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-edit" {
        eprintln!(
            "running incremental-edit micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = edit_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-join" {
        eprintln!(
            "running vectorized-join micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = join_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-http" {
        eprintln!(
            "running HTTP saturation micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = http_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-pipeline" {
        eprintln!(
            "running pipeline stitching micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = pipeline_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if which == "micro-prof" {
        eprintln!(
            "running self-profiler micro-benchmarks{} ...",
            if quick { " (quick)" } else { "" }
        );
        let t = prof_benches(quick);
        let name = t.title.clone();
        emit(&name, vec![t]);
        ran = true;
    }
    if !ran {
        usage(&format!("unknown experiment `{which}`"));
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [all|fig10a|fig10b|fig10c|fig10d|flat|fig11|table1|micro] [--factor F]\n\
         \u{20}      repro micro parallel [--quick]\n\
         \u{20}      repro micro sessions [--quick]\n\
         \u{20}      repro micro persist [--quick]\n\
         \u{20}      repro micro obs [--quick]\n\
         \u{20}      repro micro edit [--quick]\n\
         \u{20}      repro micro join [--quick]\n\
         \u{20}      repro micro http [--quick]\n\
         \u{20}      repro micro pipeline [--quick]\n\
         \u{20}      repro micro prof [--quick]"
    );
    std::process::exit(2);
}
