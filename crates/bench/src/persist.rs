//! Persistence micro-benchmark: WAL append throughput and recovery time
//! as a function of the fsync batch size.
//!
//! Run via the `repro` binary: `repro micro persist [--quick]` prints the
//! table and writes `bench_results/micro_persist.csv` with columns
//! `fsync_batch, records, median_append_seconds, appends_per_second,
//! median_recovery_seconds, recovered_records`.
//!
//! The sweep isolates the cost model behind the WAL's two durability
//! classes: a batch size of 1 is every record synced individually (the
//! worst case a `Synced` append can hit with no concurrent traffic to
//! share the fsync), while larger batches approximate what group commit
//! achieves when many buffered records ride one flush. Recovery time is
//! measured by re-reading the log the append phase produced, so the two
//! columns describe the same bytes.
//!
//! Appends use `Durability::Buffered` with an explicit `flush()` every
//! `batch` records: that pins the records-per-fsync ratio exactly, where
//! driving `Synced` appends from threads would leave batch formation to
//! scheduler timing and make the sweep unreproducible.

use std::sync::Arc;
use std::time::{Duration, Instant};

use routes_store::testutil::TempDir;
use routes_store::{ChaseMode, Durability, PersistMetrics, Record, SnapshotState, StoreDir};

use crate::{secs, Table};

/// Records-per-fsync ratios swept.
pub const FSYNC_BATCHES: [usize; 4] = [1, 8, 64, 512];

/// A record stream shaped like real traffic: one create per eight ops
/// (carrying a scenario-sized payload), the rest touches.
fn record(i: usize) -> Record {
    if i.is_multiple_of(8) {
        Record::Create {
            id: i as u64 + 1,
            chase: ChaseMode::Fresh,
            scenario: format!(
                "source schema:\n  S(a, b)\n\
                 target schema:\n  T(a, b)\n  U(a)\n\
                 dependencies:\n  m1: S(x, y) -> T(x, y)\n  m2: T(x, y) -> U(x)\n\
                 source data:\n  S({i}, {})\n  S({}, {})\n",
                i + 1,
                i + 10,
                i + 11,
            ),
        }
    } else {
        Record::Touch {
            id: (i as u64 / 8) * 8 + 1,
        }
    }
}

/// Append `records` records flushing every `batch`, then recover the log;
/// returns (append wall time, recovery wall time, records recovered).
fn run_once(records: usize, batch: usize) -> (Duration, Duration, usize) {
    let tmp = TempDir::new(&format!("bench-persist-{batch}"));
    let dir = StoreDir::open(tmp.path()).expect("open bench dir");
    let metrics = Arc::new(PersistMetrics::new());
    let wal = dir
        .checkpoint(&SnapshotState::default(), 1, metrics)
        .expect("checkpoint");

    let started = Instant::now();
    for i in 0..records {
        wal.append(&record(i), Durability::Buffered)
            .expect("append");
        if (i + 1).is_multiple_of(batch) {
            wal.flush().expect("flush");
        }
    }
    wal.flush().expect("final flush");
    let append = started.elapsed();
    drop(wal);

    let started = Instant::now();
    let rec = dir.recover().expect("recover");
    let recovery = started.elapsed();
    assert!(rec.stop.is_clean(), "a bench log replays cleanly");
    (append, recovery, rec.records.len())
}

/// Run the fsync-batch sweep. `quick` shrinks record counts and samples
/// for CI smoke runs.
pub fn persist_benches(quick: bool) -> Table {
    let (warmup, samples) = if quick { (1, 3) } else { (1, 5) };
    let records = if quick { 512 } else { 4096 };
    let mut out = Table::new(
        "micro_persist",
        &[
            "fsync_batch",
            "records",
            "median_append_seconds",
            "appends_per_second",
            "median_recovery_seconds",
            "recovered_records",
        ],
    );
    for &batch in &FSYNC_BATCHES {
        for _ in 0..warmup {
            let _ = run_once(records, batch);
        }
        let mut appends = Vec::with_capacity(samples);
        let mut recoveries = Vec::with_capacity(samples);
        let mut recovered = 0usize;
        for _ in 0..samples {
            let (a, r, n) = run_once(records, batch);
            appends.push(a);
            recoveries.push(r);
            recovered = n;
        }
        appends.sort_unstable();
        recoveries.sort_unstable();
        let append = appends[appends.len() / 2];
        let recovery = recoveries[recoveries.len() / 2];
        let throughput = if append.as_secs_f64() > 0.0 {
            records as f64 / append.as_secs_f64()
        } else {
            f64::INFINITY
        };
        out.push(vec![
            batch.to_string(),
            records.to_string(),
            secs(append),
            format!("{throughput:.0}"),
            secs(recovery),
            recovered.to_string(),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_one_row_per_batch_size() {
        let table = persist_benches(true);
        assert_eq!(table.rows.len(), FSYNC_BATCHES.len());
        for row in &table.rows {
            assert_eq!(row.len(), 6);
            let records: usize = row[1].parse().unwrap();
            let recovered: usize = row[5].parse().unwrap();
            assert_eq!(recovered, records, "every appended record replays");
            assert!(row[3].parse::<f64>().unwrap() > 0.0);
        }
    }
}
