//! Micro-benchmarks, formerly the five criterion harnesses under
//! `benches/` (`fig10`, `fig11`, `flat_hierarchy`, `table1`, `ablations`),
//! ported to the std [`bench_median`](crate::bench_median) harness so the
//! workspace builds offline with no external dependencies.
//!
//! Run via the `repro` binary: `repro micro` prints every group and writes
//! `bench_results/micro_*.csv`. Scales and selections are identical to the
//! criterion versions, so numbers remain comparable across the port.

use std::time::Duration;

use routes_chase::{chase, ChaseOptions};
use routes_core::{
    compute_all_routes, compute_one_route, compute_one_route_with, OneRouteOptions, RouteEnv,
};
use routes_gen::hierarchy::{deep_scenario, flat_scenario, DeepRows};
use routes_gen::real::{dblp_scenario, mondial_scenario, RealScenario};
use routes_gen::relational::relational_scenario;
use routes_gen::scenario::random_tuples;
use routes_gen::TpchRows;
use routes_model::{Atom, Instance, Schema, Term, TupleId, Value, Var};
use routes_query::{Bindings, EvalOptions, MatchIter};

use crate::{bench_median, secs, Table};

const BENCH_SF: f64 = 0.002;
/// Warmup and sample counts per timed point (criterion used sample sizes
/// 10–20 here; median-of-7 after 2 warmups keeps a full run fast while
/// still rejecting outliers).
const WARMUP: usize = 2;
const SAMPLES: usize = 7;

fn row(group: &str, case: &str, t: Duration) -> Vec<String> {
    vec![group.to_owned(), case.to_owned(), secs(t)]
}

fn xml_options() -> OneRouteOptions {
    OneRouteOptions {
        eager_findhom: true,
        ..OneRouteOptions::default()
    }
}

/// Formerly `benches/fig10.rs`: one-route by size / M-T factor / join count,
/// and one-route vs. all-routes.
fn fig10_micro(out: &mut Table) {
    for (label, sf) in [("small", 0.001), ("medium", 0.002), ("large", 0.005)] {
        let mut sc = relational_scenario(1, &TpchRows::scale(sf), 1);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 42);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let t = bench_median(WARMUP, SAMPLES, || {
            compute_one_route(env, &selection).unwrap()
        });
        out.push(row("fig10a_one_route_by_size", label, t));
    }
    {
        let mut sc = relational_scenario(3, &TpchRows::scale(BENCH_SF), 2);
        let solution = sc.scenario.solution().unwrap().target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        for mt in [1usize, 3, 6] {
            let selection = sc.select_from_group(&solution, mt, 5, 43);
            let t = bench_median(WARMUP, SAMPLES, || {
                compute_one_route(env, &selection).unwrap()
            });
            out.push(row("fig10b_one_route_by_mt", &mt.to_string(), t));
        }
    }
    for joins in 0..=3usize {
        let mut sc = relational_scenario(joins, &TpchRows::scale(BENCH_SF), 3);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 44);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let t = bench_median(WARMUP, SAMPLES, || {
            compute_one_route(env, &selection).unwrap()
        });
        out.push(row("fig10c_one_route_by_joins", &joins.to_string(), t));
    }
    {
        let mut sc = relational_scenario(1, &TpchRows::scale(BENCH_SF), 4);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 45);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let t = bench_median(WARMUP, SAMPLES, || {
            compute_one_route(env, &selection).unwrap()
        });
        out.push(row("fig10d_one_vs_all", "computeOneRoute", t));
        let t = bench_median(1, 5, || compute_all_routes(env, &selection));
        out.push(row("fig10d_one_vs_all", "computeAllRoutes", t));
    }
}

/// Formerly `benches/fig11.rs`: one-route by selected nesting depth in the
/// deep-hierarchy scenario (time *decreases* with depth).
fn fig11_micro(out: &mut Table) {
    let rows = DeepRows {
        regions: 5,
        nations_per: 4,
        customers_per: 4,
        orders_per: 3,
        lineitems_per: 3,
    };
    let mut sc = deep_scenario(&rows, 7);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let options = xml_options();
    for depth in 1..=5usize {
        let selection = sc.select_at_depth(&solution, depth, 3, 46);
        let t = bench_median(1, 5, || {
            compute_one_route_with(env, &selection, &options).unwrap()
        });
        out.push(row("fig11_one_route_by_depth", &depth.to_string(), t));
    }
}

/// Formerly `benches/flat_hierarchy.rs`: one-route on depth-1 nested
/// schemas by size and join count, in XML mode.
fn flat_micro(out: &mut Table) {
    for (label, sf) in [("500KB", 0.0005), ("1MB", 0.001), ("5MB", 0.005)] {
        let mut sc = flat_scenario(1, &TpchRows::scale(sf), 8);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 47);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let options = xml_options();
        let t = bench_median(1, 5, || {
            compute_one_route_with(env, &selection, &options).unwrap()
        });
        out.push(row("flat_one_route_by_size", label, t));
    }
    for joins in 0..=3usize {
        let mut sc = flat_scenario(joins, &TpchRows::scale(0.001), 9);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 48);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let options = xml_options();
        let t = bench_median(1, 5, || {
            compute_one_route_with(env, &selection, &options).unwrap()
        });
        out.push(row("flat_one_route_by_joins", &joins.to_string(), t));
    }
}

fn routable_selection(env: RouteEnv<'_>, solution: &Instance, n: usize, seed: u64) -> Vec<TupleId> {
    let rels: Vec<_> = env
        .mapping
        .target()
        .iter()
        .filter(|(r, _)| solution.rel_len(*r) > 0)
        .map(|(r, _)| r)
        .collect();
    let mut out = Vec::new();
    let mut attempt = 0;
    while out.len() < n && attempt < 50 {
        for t in random_tuples(solution, &rels, n - out.len(), seed + attempt) {
            if !out.contains(&t) && compute_one_route(env, &[t]).is_ok() {
                out.push(t);
            }
        }
        attempt += 1;
    }
    out
}

/// Formerly `benches/table1.rs`: one route vs. all routes on the
/// DBLP→Amalgam and Mondial real-dataset stand-ins.
fn table1_micro(out: &mut Table) {
    let scenario = |name: &'static str, mut sc: RealScenario, out: &mut Table| {
        let solution = sc
            .scenario
            .solution_with(ChaseOptions::fresh())
            .unwrap()
            .target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let selection = routable_selection(env, &solution, 5, 50);
        assert!(!selection.is_empty());
        let group = format!("table1_{name}");
        let t = bench_median(1, 5, || compute_one_route(env, &selection).unwrap());
        out.push(row(&group, "one_route_5_tuples", t));
        let t = bench_median(1, 5, || compute_all_routes(env, &selection));
        out.push(row(&group, "all_routes_5_tuples", t));
    };
    scenario("dblp", dblp_scenario(0.02, 51), out);
    scenario("mondial", mondial_scenario(0.02, 52), out);
}

/// Formerly `benches/ablations.rs`: lazy vs. eager findHom, RHS-sibling
/// proving, chase modes, composite indexes, and chase scaling.
fn ablations_micro(out: &mut Table) {
    {
        let rows = DeepRows {
            regions: 4,
            nations_per: 4,
            customers_per: 4,
            orders_per: 3,
            lineitems_per: 3,
        };
        let mut sc = deep_scenario(&rows, 31);
        let solution = sc.scenario.solution().unwrap().target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let selection = sc.select_at_depth(&solution, 2, 4, 32);
        for (name, eager) in [("lazy", false), ("eager", true)] {
            let options = OneRouteOptions {
                eager_findhom: eager,
                ..OneRouteOptions::default()
            };
            let t = bench_median(WARMUP, SAMPLES, || {
                compute_one_route_with(env, &selection, &options).unwrap()
            });
            out.push(row("ablation_findhom_mode", name, t));
        }
    }
    {
        let mut sc = relational_scenario(1, &TpchRows::scale(0.002), 33);
        let solution = sc.scenario.solution().unwrap().target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let selection = sc.select_from_group(&solution, 4, 15, 34);
        for (name, on) in [("on", true), ("off", false)] {
            let options = OneRouteOptions {
                prove_rhs_siblings: on,
                ..OneRouteOptions::default()
            };
            let t = bench_median(WARMUP, SAMPLES, || {
                compute_one_route_with(env, &selection, &options).unwrap()
            });
            out.push(row("ablation_prove_rhs_siblings", name, t));
        }
    }
    {
        let sc = relational_scenario(1, &TpchRows::scale(0.001), 35);
        for (name, options) in [
            ("fresh_standard", ChaseOptions::fresh()),
            ("skolem_oblivious", ChaseOptions::skolem()),
        ] {
            let t = bench_median(1, 5, || {
                let mut pool = sc.scenario.pool.clone();
                chase(
                    &sc.scenario.mapping,
                    &sc.scenario.source,
                    &mut pool,
                    options,
                )
                .unwrap()
            });
            out.push(row("ablation_chase_mode", name, t));
        }
    }
    {
        // Skewed relation: both columns individually unselective (10
        // distinct values each over 100k rows), the pair selective.
        let mut schema = Schema::new();
        let rel = schema.rel("R", &["a", "b", "payload"]);
        let mut inst = Instance::new(&schema);
        for k in 0..100_000i64 {
            inst.insert_ok(
                rel,
                &[Value::Int(k % 10), Value::Int((k / 10) % 10), Value::Int(k)],
            );
        }
        let atoms = vec![Atom::new(
            rel,
            vec![Term::Var(Var(0)), Term::Var(Var(1)), Term::Var(Var(2))],
        )];
        let mut init = Bindings::new(3);
        init.set(Var(0), Value::Int(3));
        init.set(Var(1), Value::Int(7));
        for (name, threshold) in [("composite", 64usize), ("single_column_only", usize::MAX)] {
            let options = EvalOptions {
                composite_threshold: threshold,
            };
            let t = bench_median(WARMUP, SAMPLES, || {
                let mut it = MatchIter::with_options(&inst, &atoms, init.clone(), options);
                let mut n = 0usize;
                while it.next_match().is_some() {
                    n += 1;
                }
                n
            });
            out.push(row("ablation_composite_index", name, t));
        }
    }
    for (label, sf) in [
        ("sf_0.0005", 0.0005),
        ("sf_0.001", 0.001),
        ("sf_0.002", 0.002),
    ] {
        let sc = relational_scenario(1, &TpchRows::scale(sf), 36);
        let t = bench_median(1, 5, || {
            let mut pool = sc.scenario.pool.clone();
            chase(
                &sc.scenario.mapping,
                &sc.scenario.source,
                &mut pool,
                ChaseOptions::skolem(),
            )
            .unwrap()
            .target
            .total_tuples()
        });
        out.push(row("chase_scaling", label, t));
    }
}

/// Run every micro-benchmark group, one [`Table`] per retired criterion
/// harness, in the same order the `[[bench]]` targets were declared.
pub fn micro_benches() -> Vec<Table> {
    let header = &["group", "case", "median_seconds"];
    let mut tables = Vec::new();
    for (name, run) in [
        ("micro_fig10", fig10_micro as fn(&mut Table)),
        ("micro_fig11", fig11_micro),
        ("micro_flat_hierarchy", flat_micro),
        ("micro_table1", table1_micro),
        ("micro_ablations", ablations_micro),
    ] {
        let mut t = Table::new(name, header);
        run(&mut t);
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_median_is_a_sane_duration() {
        let mut n = 0u64;
        let d = bench_median(1, 3, || {
            n += 1;
            std::hint::black_box(n)
        });
        assert!(d < Duration::from_secs(1));
    }
}
