//! Plain-text and CSV rendering for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A rendered experiment result: a header row plus data rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Human-readable title (figure/table label + parameters).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Write the CSV next to other results under `dir`.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_csv() {
        let mut t = Table::new("Fig X", &["n", "time"]);
        t.push(vec!["1".into(), "0.5".into()]);
        t.push(vec!["20".into(), "12.25".into()]);
        let text = t.to_text();
        assert!(text.contains("Fig X"));
        assert!(text.contains("12.25"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("n,time"));
    }
}
