//! The experiment implementations, one per paper figure/table.

use std::time::Duration;

use routes_chase::ChaseOptions;
use routes_core::{
    compute_all_routes, compute_one_route, compute_one_route_with, OneRouteOptions, RouteEnv,
};
use routes_gen::hierarchy::{deep_scenario, flat_scenario, DeepRows};
use routes_gen::real::{dblp_scenario, mondial_scenario};
use routes_gen::relational::relational_scenario;
use routes_gen::scenario::random_tuples;
use routes_gen::TpchRows;
use routes_model::{Instance, TupleId};

use crate::table::Table;
use crate::{measure, secs};

/// Maps the paper's instance-size labels to TPC-H scale factors, scaled by
/// a reproduction factor.
#[derive(Debug, Clone, Copy)]
pub struct Sizing {
    /// Multiplier applied to the paper-equivalent scale factor. 1.0 matches
    /// the paper's DB2 sizes; the default 0.1 keeps a full run in minutes.
    pub factor: f64,
}

impl Default for Sizing {
    fn default() -> Self {
        Sizing { factor: 0.1 }
    }
}

impl Sizing {
    /// The paper's four relational sizes, as (label, scale factor) pairs.
    pub fn relational_sizes(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("10MB", 0.01 * self.factor),
            ("50MB", 0.05 * self.factor),
            ("100MB", 0.1 * self.factor),
            ("500MB", 0.5 * self.factor),
        ]
    }

    /// The paper's "100 MB" point used by Figures 10(b)-(d).
    pub fn mid_size(&self) -> f64 {
        0.1 * self.factor
    }

    /// The paper's flat-hierarchy sizes (0.5/1/5 MB).
    pub fn flat_sizes(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("500KB", 0.0005 * self.factor * 10.0),
            ("1MB", 0.001 * self.factor * 10.0),
            ("5MB", 0.005 * self.factor * 10.0),
        ]
    }
}

/// The selection sizes swept by the figures (the paper plots 1..=20).
pub const SELECTION_SIZES: [usize; 6] = [1, 2, 5, 10, 15, 20];

fn one_route_time(env: RouteEnv<'_>, selection: &[TupleId], eager: bool) -> Duration {
    let options = OneRouteOptions {
        eager_findhom: eager,
        ..OneRouteOptions::default()
    };
    let (d, result) = measure(|| compute_one_route_with(env, selection, &options));
    result.expect("benchmark selections always have routes");
    d
}

fn all_routes_time(env: RouteEnv<'_>, selection: &[TupleId]) -> Duration {
    let (d, forest) = measure(|| compute_all_routes(env, selection));
    assert!(forest.all_roots_provable());
    d
}

/// **Figure 10(a)**: `ComputeOneRoute` vs. number of selected tuples for
/// four instance sizes; 1-join tgds (`M1`), selections from group 3
/// (M/T = 3).
pub fn fig10a(sizing: &Sizing) -> Table {
    let mut table = Table::new(
        "Figure 10(a): one route, varying |I|,|J|; 1-join tgds, M/T=3",
        &["tuples", "I:10MB", "I:50MB", "I:100MB", "I:500MB"],
    );
    let mut columns: Vec<Vec<Duration>> = Vec::new();
    for (label, sf) in sizing.relational_sizes() {
        let mut sc = relational_scenario(1, &TpchRows::scale(sf), 0xA11CE);
        let solution = sc.scenario.solution().expect("chase succeeds").target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let mut col = Vec::new();
        for (k, &n) in SELECTION_SIZES.iter().enumerate() {
            let selection = sc.select_from_group(&solution, 3, n, 1000 + k as u64);
            col.push(one_route_time(env, &selection, false));
        }
        eprintln!(
            "  fig10a: size {label} done (|I| ≈ {:.1} MB, |J| ≈ {:.1} MB in memory)",
            sc.scenario.source.approx_heap_bytes() as f64 / 1e6,
            solution.approx_heap_bytes() as f64 / 1e6,
        );
        columns.push(col);
    }
    for (k, &n) in SELECTION_SIZES.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for col in &columns {
            row.push(secs(col[k]));
        }
        table.push(row);
    }
    table
}

/// **Figure 10(b)**: `ComputeOneRoute` vs. M/T factor 1–6; 3-join tgds
/// (`M3`), |I| = "100 MB".
pub fn fig10b(sizing: &Sizing) -> Table {
    let mut table = Table::new(
        "Figure 10(b): one route, varying M/T factor 1..6; 3-join tgds, |I|=100MB",
        &[
            "tuples", "M/T=1", "M/T=2", "M/T=3", "M/T=4", "M/T=5", "M/T=6",
        ],
    );
    let mut sc = relational_scenario(3, &TpchRows::scale(sizing.mid_size()), 0xB0B);
    let solution = sc.scenario.solution().expect("chase succeeds").target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let mut columns: Vec<Vec<Duration>> = Vec::new();
    for mt in 1..=6usize {
        let mut col = Vec::new();
        for (k, &n) in SELECTION_SIZES.iter().enumerate() {
            let selection = sc.select_from_group(&solution, mt, n, 2000 + k as u64);
            col.push(one_route_time(env, &selection, false));
        }
        eprintln!("  fig10b: M/T {mt} done");
        columns.push(col);
    }
    for (k, &n) in SELECTION_SIZES.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for col in &columns {
            row.push(secs(col[k]));
        }
        table.push(row);
    }
    table
}

/// **Figure 10(c)**: `ComputeOneRoute` vs. tgd complexity (0–3 joins);
/// M/T = 3, |I| = "100 MB".
pub fn fig10c(sizing: &Sizing) -> Table {
    let mut table = Table::new(
        "Figure 10(c): one route, varying tgd joins 0..3; M/T=3, |I|=100MB",
        &["tuples", "no joins", "1 join", "2 joins", "3 joins"],
    );
    let mut columns: Vec<Vec<Duration>> = Vec::new();
    for joins in 0..=3usize {
        let mut sc = relational_scenario(joins, &TpchRows::scale(sizing.mid_size()), 0xC0C0);
        let solution = sc.scenario.solution().expect("chase succeeds").target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let mut col = Vec::new();
        for (k, &n) in SELECTION_SIZES.iter().enumerate() {
            let selection = sc.select_from_group(&solution, 3, n, 3000 + k as u64);
            col.push(one_route_time(env, &selection, false));
        }
        eprintln!("  fig10c: {joins} joins done");
        columns.push(col);
    }
    for (k, &n) in SELECTION_SIZES.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for col in &columns {
            row.push(secs(col[k]));
        }
        table.push(row);
    }
    table
}

/// **Figure 10(d)**: `ComputeOneRoute` vs. `ComputeAllRoutes` (log scale in
/// the paper); 1-join tgds, M/T = 3, |I| = "100 MB". The all-routes time
/// covers forest construction only, matching the paper ("does not include
/// the time required to print all routes").
pub fn fig10d(sizing: &Sizing) -> Table {
    let mut table = Table::new(
        "Figure 10(d): one route vs. all routes; 1-join tgds, M/T=3, |I|=100MB",
        &["tuples", "computeOneRoute", "computeAllRoutes", "ratio"],
    );
    let mut sc = relational_scenario(1, &TpchRows::scale(sizing.mid_size()), 0xD0D0);
    let solution = sc.scenario.solution().expect("chase succeeds").target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    for (k, &n) in SELECTION_SIZES.iter().enumerate() {
        let selection = sc.select_from_group(&solution, 3, n, 4000 + k as u64);
        let one = one_route_time(env, &selection, false);
        let all = all_routes_time(env, &selection);
        let ratio = all.as_secs_f64() / one.as_secs_f64().max(1e-9);
        table.push(vec![
            n.to_string(),
            secs(one),
            secs(all),
            format!("{ratio:.1}x"),
        ]);
        eprintln!("  fig10d: n={n} done");
    }
    table
}

/// **Flat-hierarchy** (§4.1; the paper omits the graphs): one-route time
/// for depth-1 nested schemas, sweeping instance size, selection size, M/T
/// factor, and join count. XML-mode (`eager_findhom`) matches the paper's
/// Saxon behaviour.
pub fn flat_hierarchy(sizing: &Sizing) -> Vec<Table> {
    // Sweep 1: sizes × selection count (1 join, M/T = 3).
    let mut by_size = Table::new(
        "Flat hierarchy: one route, varying |I|; 1-join tgds, M/T=3 (XML eager mode)",
        &["elements", "I:500KB", "I:1MB", "I:5MB"],
    );
    let mut columns: Vec<Vec<Duration>> = Vec::new();
    for (label, sf) in sizing.flat_sizes() {
        let mut sc = flat_scenario(1, &TpchRows::scale(sf), 0xF1A7);
        let solution = sc.scenario.solution().expect("chase succeeds").target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let mut col = Vec::new();
        for (k, &n) in SELECTION_SIZES.iter().enumerate() {
            let selection = sc.select_from_group(&solution, 3, n, 5000 + k as u64);
            col.push(one_route_time(env, &selection, true));
        }
        eprintln!("  flat: size {label} done");
        columns.push(col);
    }
    for (k, &n) in SELECTION_SIZES.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for col in &columns {
            row.push(secs(col[k]));
        }
        by_size.push(row);
    }

    // Sweep 2: M/T factor and join count at the middle size, 10 elements.
    let mut by_mt = Table::new(
        "Flat hierarchy: one route for 10 elements, varying M/T and joins (XML eager mode)",
        &["parameter", "value", "time(s)"],
    );
    let mid = sizing.flat_sizes()[1].1;
    {
        let mut sc = flat_scenario(1, &TpchRows::scale(mid), 0xF1A8);
        let solution = sc.scenario.solution().expect("chase succeeds").target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        for mt in 1..=6usize {
            let selection = sc.select_from_group(&solution, mt, 10, 6000 + mt as u64);
            let d = one_route_time(env, &selection, true);
            by_mt.push(vec!["M/T".into(), mt.to_string(), secs(d)]);
        }
    }
    for joins in 0..=3usize {
        let mut sc = flat_scenario(joins, &TpchRows::scale(mid), 0xF1A9);
        let solution = sc.scenario.solution().expect("chase succeeds").target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let selection = sc.select_from_group(&solution, 3, 10, 7000);
        let d = one_route_time(env, &selection, true);
        by_mt.push(vec!["joins".into(), joins.to_string(), secs(d)]);
        eprintln!("  flat: joins {joins} done");
    }
    vec![by_size, by_mt]
}

/// **Figure 11**: deep hierarchy — one-route time vs. the nesting depth of
/// the selected elements (1–5), |I| = |J| ≈ 700 KB, one copying s-t tgd, no
/// target tgds. Depth-1 selections are capped at 5 (there are only 5
/// regions), exactly as the paper notes.
pub fn fig11(sizing: &Sizing) -> Table {
    let mut table = Table::new(
        "Figure 11: one route, varying selection depth 1..5; |I|=|J|=700KB (XML eager mode)",
        &[
            "elements", "depth 1", "depth 2", "depth 3", "depth 4", "depth 5",
        ],
    );
    // DeepRows::default is the 700 KB shape; sizing.factor scales the fanout
    // of the two largest levels.
    let mut rows = DeepRows::default();
    if sizing.factor < 0.05 {
        rows.customers_per = (rows.customers_per / 2).max(1);
    }
    let mut sc = deep_scenario(&rows, 0xDEE9);
    let solution = sc.scenario.solution().expect("chase succeeds").target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let mut columns: Vec<Vec<Option<Duration>>> = Vec::new();
    for depth in 1..=sc.max_depth() {
        let mut col = Vec::new();
        for (k, &n) in SELECTION_SIZES.iter().enumerate() {
            let selection = sc.select_at_depth(&solution, depth, n, 8000 + k as u64);
            if selection.len() < n {
                // Not enough elements at this depth (depth 1 has 5 regions).
                col.push(None);
                continue;
            }
            col.push(Some(one_route_time(env, &selection, true)));
        }
        eprintln!("  fig11: depth {depth} done");
        columns.push(col);
    }
    for (k, &n) in SELECTION_SIZES.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for col in &columns {
            row.push(col[k].map_or_else(|| "-".into(), secs));
        }
        table.push(row);
    }
    table
}

/// **Table 1 + §4.2**: the real-dataset scenarios — schema characteristics
/// side by side with the paper's numbers, then one-route vs. all-routes
/// timings for 1–10 randomly selected target tuples.
pub fn table1(sizing: &Sizing) -> Vec<Table> {
    let scale = sizing.factor.max(0.02);
    let mut stats_table = Table::new(
        "Table 1: dataset & schema-mapping characteristics (ours vs. paper)",
        &[
            "schema",
            "total elems",
            "atomic elems",
            "nest depth",
            "|Σst|/|Σt|",
            "paper",
        ],
    );
    let mut timing = Table::new(
        "§4.2 timings: one route vs. all routes on the real scenarios",
        &["scenario", "tuples", "one route(s)", "all routes(s)"],
    );

    let paper_rows = [
        ("DBLP1(XML)", "65/57/1"),
        ("DBLP2(XML)", "20/12/4"),
        ("Amalgam1(Rel)", "117/100/1, 10/14"),
        ("Mondial1(Rel)", "157/129/1"),
        ("Mondial2(XML)", "144/112/4, 13/25"),
    ];
    let mut scenarios = vec![
        dblp_scenario(scale, 0xDB19),
        mondial_scenario(scale, 0x30D1),
    ];
    let mut paper_iter = paper_rows.iter();
    for sc in &scenarios {
        let deps = format!(
            "{}/{}",
            sc.scenario.mapping.st_tgds().len(),
            sc.scenario.mapping.target_tgds().len()
        );
        for stat in &sc.stats {
            let paper = paper_iter.next().map(|(_, p)| *p).unwrap_or("-");
            stats_table.push(vec![
                stat.name.clone(),
                stat.total_elems.to_string(),
                stat.atomic_elems.to_string(),
                stat.depth.to_string(),
                deps.clone(),
                paper.to_owned(),
            ]);
        }
    }

    for sc in &mut scenarios {
        let name = sc.scenario.name.clone();
        let solution = sc
            .scenario
            .solution_with(ChaseOptions::fresh())
            .expect("real-scenario chase succeeds")
            .target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let all_rels: Vec<routes_model::RelId> = sc
            .scenario
            .mapping
            .target()
            .iter()
            .filter(|(r, _)| solution.rel_len(*r) > 0)
            .map(|(r, _)| r)
            .collect();
        for n in [1usize, 2, 5, 10] {
            let selection = pick_with_routes(env, &solution, &all_rels, n, 9000 + n as u64);
            let one = one_route_time(env, &selection, false);
            let all = all_routes_time(env, &selection);
            timing.push(vec![name.clone(), n.to_string(), secs(one), secs(all)]);
        }
        eprintln!("  table1: {name} done");
    }
    vec![stats_table, timing]
}

/// Random tuples that are guaranteed to have routes (chase-produced tuples
/// always do, but `Fresh`-chased real scenarios can contain tuples whose
/// only witness is the very tuple set selected — filter by a quick check).
fn pick_with_routes(
    env: RouteEnv<'_>,
    solution: &Instance,
    rels: &[routes_model::RelId],
    n: usize,
    seed: u64,
) -> Vec<TupleId> {
    let mut out = Vec::new();
    let mut attempt = 0u64;
    while out.len() < n && attempt < 50 {
        for t in random_tuples(solution, rels, n - out.len(), seed + attempt) {
            if !out.contains(&t) && compute_one_route(env, &[t]).is_ok() {
                out.push(t);
            }
        }
        attempt += 1;
    }
    assert!(!out.is_empty(), "no routable tuples found");
    out
}
