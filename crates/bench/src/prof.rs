//! Self-profiler micro-benchmark: per-tgd chase attribution plus the
//! sampler's request-path overhead.
//!
//! Run via the `repro` binary: `repro micro prof [--quick]` prints the
//! table and writes `bench_results/micro_prof.csv`. The table mixes two
//! row kinds (blank cells where a column does not apply):
//!
//! * `attribution` rows — one per dependency of a two-layer chase
//!   (s-t tgds feeding target tgds): rows matched, tuples fired, and
//!   the wall time the engine spent applying that dependency.
//! * `sampler_off` / `sampler_on` rows — the `get-session` hot path
//!   through [`App::handle_traced`] with the profiler idle versus a
//!   live ticker sampling every worker stack. The acceptance bar
//!   (ISSUE 10) is sampler-on overhead ≤ 5% over sampler-off.

use std::sync::Arc;
use std::time::Duration;

use routes_chase::ChaseOptions;
use routes_cli::{load_scenario_str, prepare_scenario};
use routes_pool::Pool;
use routes_server::http::Request;
use routes_server::{App, SessionStore};

use crate::{secs, Table};

/// Relation pairs in the benchmark scenario.
const RELATIONS: usize = 4;
/// Rows per source relation.
const ROWS: usize = 48;

/// Sampler frequency for the overhead case: fast enough that samples
/// actually land during each batch, far below the clamp.
const SAMPLER_HZ: u32 = 97;

/// A two-layer scenario: every `S{r}` copies into `T{r}` via an s-t tgd,
/// and every `T{r}` feeds a target tgd into `U{r}` — so the attribution
/// table carries both `st=true` and `st=false` rows with real work.
fn scenario_text() -> String {
    let mut source = String::from("source schema:\n");
    let mut target = String::from("target schema:\n");
    let mut deps = String::from("dependencies:\n");
    let mut data = String::from("source data:\n");
    for r in 0..RELATIONS {
        source.push_str(&format!("  S{r}(a, b)\n"));
        target.push_str(&format!("  T{r}(a, b)\n  U{r}(a, b)\n"));
        deps.push_str(&format!("  m{r}: S{r}(x, y) -> T{r}(x, y)\n"));
        deps.push_str(&format!("  t{r}: T{r}(x, y) -> U{r}(x, y)\n"));
        for row in 0..ROWS {
            data.push_str(&format!("  S{r}({}, {})\n", row, row + 1));
        }
    }
    format!("{source}{target}{deps}{data}")
}

fn app_with_session() -> (App, u64) {
    let prepared = prepare_scenario(
        load_scenario_str(&scenario_text()).unwrap(),
        ChaseOptions::fresh(),
    )
    .unwrap();
    let pool = Pool::sequential();
    let store = SessionStore::with_shards(4, 1);
    let (id, _) = store.insert(prepared, &pool);
    let app = App::with_observability(
        store,
        Pool::sequential(),
        None,
        Arc::new(routes_obs::Tracer::new(4096, 0)),
        Duration::from_millis(500),
    );
    (app, id)
}

fn get_request(id: u64) -> Request {
    Request {
        method: "GET".to_owned(),
        path: format!("/sessions/{id}"),
        query: String::new(),
        headers: Vec::new(),
        body: Vec::new(),
        keep_alive: true,
    }
}

/// One timed batch: `requests` traced get-session requests; returns the
/// number of 200s (kept so the work cannot be optimized away).
fn drive(app: &App, req: &Request, requests: usize) -> usize {
    (0..requests)
        .filter(|_| app.handle_traced(req).status == 200)
        .count()
}

/// Run the profiler sweep. `quick` shrinks batch sizes and samples for
/// CI smoke runs.
pub fn prof_benches(quick: bool) -> Table {
    let (warmup, samples) = if quick { (1, 3) } else { (2, 15) };
    let requests = if quick { 500 } else { 20_000 };
    let mut out = Table::new(
        "micro_prof",
        &[
            "case",
            "tgd",
            "st",
            "matches",
            "fired",
            "wall_us",
            "requests",
            "median_s",
            "ns_per_request",
            "overhead_pct",
        ],
    );

    // Part 1: per-tgd attribution from one sequential chase.
    let attributed = prepare_scenario(
        load_scenario_str(&scenario_text()).unwrap(),
        ChaseOptions::fresh(),
    )
    .unwrap();
    let stats = attributed
        .chase_stats
        .as_ref()
        .expect("a chased scenario carries stats");
    assert_eq!(
        stats.per_tgd.iter().map(|t| t.fired).sum::<u64>(),
        stats.tuples_created as u64,
        "per-tgd fired counts must account for every created tuple"
    );
    for t in &stats.per_tgd {
        out.push(vec![
            "attribution".to_owned(),
            t.name.clone(),
            t.st.to_string(),
            t.matches.to_string(),
            t.fired.to_string(),
            t.wall_us.to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }

    // Part 2: sampler on/off overhead, interleaved round-robin so clock
    // drift and noisy neighbors bias both cases equally.
    let (app, id) = app_with_session();
    let req = get_request(id);
    // Cases alternate within each round: (off, on). The sampler lives
    // only for the "on" batch — starting it enables the frame hooks,
    // stopping it disables them, exactly like the server lifecycle.
    let mut timings: [Vec<Duration>; 2] = [Vec::new(), Vec::new()];
    for round in 0..warmup + samples {
        for on in [false, true] {
            let sampler = if on {
                Some(routes_obs::start_sampler(SAMPLER_HZ).expect("sampler starts"))
            } else {
                None
            };
            let start = std::time::Instant::now();
            assert_eq!(drive(&app, &req, requests), requests);
            let elapsed = start.elapsed();
            if let Some(sampler) = sampler {
                sampler.stop();
            }
            if round >= warmup {
                timings[usize::from(on)].push(elapsed);
            }
        }
    }
    routes_obs::reset_samples();

    let mut baseline_ns: Option<f64> = None;
    for (name, times) in ["sampler_off", "sampler_on"].into_iter().zip(&mut timings) {
        times.sort_unstable();
        let median = times[times.len() / 2];
        let per_request_ns = median.as_nanos() as f64 / requests as f64;
        let overhead = match baseline_ns {
            None => {
                baseline_ns = Some(per_request_ns);
                0.0
            }
            Some(base) => 100.0 * (per_request_ns - base) / base,
        };
        out.push(vec![
            name.to_owned(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            requests.to_string(),
            secs(median),
            format!("{per_request_ns:.0}"),
            format!("{overhead:.2}"),
        ]);
    }
    out
}
