//! Pipeline micro-benchmark: stitched-route latency per hop count and the
//! core-minimization shrink ratio.
//!
//! Run via the `repro` binary: `repro micro pipeline [--quick]` prints the
//! table and writes `bench_results/micro_pipeline.csv` with columns
//! `hops, rows, core, chase_seconds, tuples_before, tuples_after, shrink,
//! probes, stitch_seconds, per_route_ms`.
//!
//! The sweep chases the same redundancy-heavy generated chain
//! ([`routes_gen::pipeline_scenario`]) at increasing hop counts, with core
//! minimization off and on, then stitches end-to-end routes for a pinned
//! probe set of final-instance tuples. Stitching cost grows with hop count
//! (one one-route computation plus a fact translation per hop), so
//! `per_route_ms` against `hops` is the latency curve; `shrink` is
//! `tuples_after / tuples_before` summed over every intermediate instance,
//! the space the core saves a long-running debugging session.

use routes_chase::ChaseOptions;
use routes_gen::pipeline_scenario;
use routes_model::TupleId;
use routes_pipeline::{chase_pipeline, stitch_route, PreparedPipeline};
use routes_pool::Pool;

use crate::{bench_median, secs, Table};

/// Hop counts swept.
pub const PIPELINE_HOPS: [usize; 4] = [1, 2, 4, 8];
const PIPELINE_HOPS_QUICK: [usize; 2] = [1, 2];

const SEED: u64 = 0xF1BE;

fn chase(hops: usize, rows: usize, core: bool, workers: &Pool) -> PreparedPipeline {
    let sc = pipeline_scenario(hops, rows, SEED, true, core);
    chase_pipeline(
        sc.pipeline,
        sc.source,
        sc.pool,
        ChaseOptions::fresh(),
        workers,
    )
    .expect("generated pipelines chase")
}

/// Run the hop-count sweep. `quick` shrinks sizes and samples for CI smoke.
pub fn pipeline_benches(quick: bool) -> Table {
    let hop_counts: &[usize] = if quick {
        &PIPELINE_HOPS_QUICK
    } else {
        &PIPELINE_HOPS
    };
    let rows = if quick { 32 } else { 384 };
    let n_probes = if quick { 8 } else { 32 };
    let (warmup, samples) = if quick { (0, 1) } else { (1, 3) };
    let workers = Pool::sequential();
    let mut out = Table::new(
        "micro_pipeline",
        &[
            "hops",
            "rows",
            "core",
            "chase_seconds",
            "tuples_before",
            "tuples_after",
            "shrink",
            "probes",
            "stitch_seconds",
            "per_route_ms",
        ],
    );
    for &hops in hop_counts {
        for core in [false, true] {
            let chase_time = bench_median(warmup, samples, || chase(hops, rows, core, &workers));
            let prepared = chase(hops, rows, core, &workers);
            let (before, after) = prepared.core_shrink();
            let probes: Vec<TupleId> = prepared
                .final_stage()
                .target
                .all_rows()
                .take(n_probes)
                .collect();
            let stitch_time = bench_median(warmup, samples, || {
                for &t in &probes {
                    let stitched = stitch_route(&prepared, &[t]).expect("probe has a route");
                    std::hint::black_box(stitched);
                }
            });
            let per_route_ms = stitch_time.as_secs_f64() * 1_000.0 / probes.len() as f64;
            out.push(vec![
                hops.to_string(),
                rows.to_string(),
                core.to_string(),
                secs(chase_time),
                before.to_string(),
                after.to_string(),
                format!("{:.4}", after as f64 / before as f64),
                probes.len().to_string(),
                secs(stitch_time),
                format!("{per_route_ms:.4}"),
            ]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_rows() {
        let table = pipeline_benches(true);
        assert_eq!(table.rows.len(), PIPELINE_HOPS_QUICK.len() * 2);
        for row in &table.rows {
            assert_eq!(row.len(), 10);
            let shrink: f64 = row[6].parse().unwrap();
            assert!(shrink > 0.0 && shrink <= 1.0);
            if row[2] == "true" {
                assert!(shrink < 1.0, "core rows must actually shrink");
            } else {
                assert_eq!(shrink, 1.0, "core off leaves instances untouched");
            }
        }
    }
}
