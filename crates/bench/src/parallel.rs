//! Thread-scaling micro-benchmarks for the parallel execution layer: the
//! semi-naive chase (`chase_with_pool`) and route-forest construction
//! (`compute_all_routes_with_pool`) at 1/2/4/N worker threads, on the
//! Fig. 10 relational scenario and the Fig. 11 deep-hierarchy scenario.
//!
//! Run via the `repro` binary: `repro micro parallel [--quick]` prints the
//! table and writes `bench_results/micro_parallel.csv` with columns
//! `group, case, threads, median_seconds, speedup_vs_1`.
//!
//! Both parallel algorithms are exact: every thread count produces
//! byte-identical instances, statistics, and forests (see the determinism
//! suite), so these numbers measure pure scheduling overhead vs. fan-out
//! win. On a single-core host the speedup column honestly reports < 1.

use std::time::Duration;

use routes_chase::{chase_with_pool, ChaseOptions};
use routes_core::{compute_all_routes_with_pool, RouteEnv};
use routes_gen::hierarchy::{deep_scenario, DeepRows};
use routes_gen::relational::relational_scenario;
use routes_gen::TpchRows;
use routes_model::{Instance, TupleId};
use routes_pool::Pool;

use crate::{bench_median, secs, Table};

/// The thread counts swept: 1, 2, 4, and the host's available parallelism,
/// deduplicated and sorted.
pub fn thread_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

struct ParallelCase {
    group: String,
    pool: routes_model::ValuePool,
    mapping: routes_mapping::SchemaMapping,
    source: Instance,
    solution: Instance,
    selection: Vec<TupleId>,
}

/// One (group, case, threads) measurement for each thread count, plus the
/// derived speedup-vs-1-thread column.
fn sweep(
    out: &mut Table,
    case: &ParallelCase,
    name: &str,
    warmup: usize,
    samples: usize,
    mut f: impl FnMut(&ParallelCase, &Pool) -> usize,
) -> Vec<Duration> {
    let mut medians = Vec::new();
    for &threads in &thread_counts() {
        let workers = Pool::new(threads);
        let t = bench_median(warmup, samples, || f(case, &workers));
        medians.push(t);
    }
    emit(out, &case.group, name, &medians);
    medians
}

fn emit(out: &mut Table, group: &str, name: &str, medians: &[Duration]) {
    let base = medians[0].as_secs_f64();
    for (&threads, &t) in thread_counts().iter().zip(medians) {
        let speedup = if t.as_secs_f64() > 0.0 {
            base / t.as_secs_f64()
        } else {
            1.0
        };
        out.push(vec![
            group.to_owned(),
            name.to_owned(),
            threads.to_string(),
            secs(t),
            format!("{speedup:.2}"),
        ]);
    }
}

/// Run the thread-scaling sweep. `quick` shrinks instances and sample
/// counts for CI smoke runs.
pub fn parallel_benches(quick: bool) -> Table {
    let (warmup, samples) = if quick { (1, 3) } else { (1, 5) };
    let mut out = Table::new(
        "micro_parallel",
        &["group", "case", "threads", "median_seconds", "speedup_vs_1"],
    );

    let mut cases = Vec::new();
    {
        let sf = if quick { 0.0005 } else { 0.002 };
        let mut sc = relational_scenario(2, &TpchRows::scale(sf), 61);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 62);
        cases.push(ParallelCase {
            group: "fig10_relational".to_owned(),
            pool: sc.scenario.pool.clone(),
            mapping: sc.scenario.mapping.clone(),
            source: sc.scenario.source.clone(),
            solution,
            selection,
        });
    }
    {
        let rows = if quick {
            DeepRows {
                regions: 3,
                nations_per: 3,
                customers_per: 3,
                orders_per: 2,
                lineitems_per: 2,
            }
        } else {
            DeepRows {
                regions: 5,
                nations_per: 4,
                customers_per: 4,
                orders_per: 3,
                lineitems_per: 3,
            }
        };
        let mut sc = deep_scenario(&rows, 63);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_at_depth(&solution, 2, 3, 64);
        cases.push(ParallelCase {
            group: "fig11_deep".to_owned(),
            pool: sc.scenario.pool.clone(),
            mapping: sc.scenario.mapping.clone(),
            source: sc.scenario.source.clone(),
            solution,
            selection,
        });
    }

    for case in &cases {
        let chase_medians = sweep(&mut out, case, "chase", warmup, samples, |c, workers| {
            let mut pool = c.pool.clone();
            chase_with_pool(
                &c.mapping,
                &c.source,
                &mut pool,
                ChaseOptions::fresh(),
                workers,
            )
            .unwrap()
            .target
            .total_tuples()
        });
        let forest_medians = sweep(
            &mut out,
            case,
            "all_routes",
            warmup,
            samples,
            |c, workers| {
                let env = RouteEnv::new(&c.mapping, &c.source, &c.solution);
                compute_all_routes_with_pool(env, &c.selection, workers)
                    .order
                    .len()
            },
        );
        let combined: Vec<Duration> = chase_medians
            .iter()
            .zip(&forest_medians)
            .map(|(&a, &b)| a + b)
            .collect();
        emit(&mut out, &case.group, "combined", &combined);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_start_at_one_and_are_strictly_increasing() {
        let counts = thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quick_sweep_produces_rows_for_every_thread_count() {
        let table = parallel_benches(true);
        let counts = thread_counts();
        // 2 scenarios × 3 cases (chase, all_routes, combined) × |counts|.
        assert_eq!(table.rows.len(), 2 * 3 * counts.len());
        for row in &table.rows {
            assert_eq!(row.len(), 5);
            let median: f64 = row[3].parse().unwrap();
            let speedup: f64 = row[4].parse().unwrap();
            assert!(median >= 0.0);
            assert!(speedup > 0.0);
        }
        // Every 1-thread row has speedup exactly 1.00 by construction.
        for row in table.rows.iter().filter(|r| r[2] == "1") {
            assert_eq!(row[4], "1.00");
        }
    }
}
