//! HTTP saturation micro-benchmark: closed-loop clients hammering a
//! small-capacity `spiderd` through the full socket path — accept,
//! admission queue, parse, route probe, response — to measure how
//! goodput holds up as offered load climbs past capacity.
//!
//! Run via the `repro` binary: `repro micro http [--quick]` prints the
//! table and writes `bench_results/micro_http.csv` with columns
//! `clients, seconds, requests, ok_200, shed_429, errors, goodput_rps,
//! shed_rps, goodput_vs_peak`.
//!
//! The server is deliberately tiny (2 workers, queue of 4) so a laptop
//! run saturates it: the interesting property is not the absolute
//! request rate but the *shape* under overload. A server that queues
//! unboundedly collapses — every request waits behind the backlog and
//! goodput tends to zero as clients pile up. Admission control instead
//! sheds the excess with cheap `429`s at the accept path, so the
//! workers stay busy with requests that will still be wanted when they
//! finish: goodput should stay within a small factor of its peak even
//! at several times the saturating client count, with the overflow
//! visible in `shed_rps` rather than in latency.
//!
//! Each client is closed-loop (connect → one probe → read → close →
//! repeat), so every request traverses the admission queue; `requests`
//! always equals `ok_200 + shed_429 + errors` by construction.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use routes_server::json::{parse, Json};
use routes_server::{Server, ServerConfig};

use crate::Table;

/// Closed-loop client counts swept (the server saturates near 2).
const CLIENTS: [usize; 5] = [1, 2, 4, 8, 16];
const CLIENTS_QUICK: [usize; 2] = [2, 8];

/// Measurement window per point.
const WINDOW: Duration = Duration::from_secs(2);
const WINDOW_QUICK: Duration = Duration::from_millis(300);

/// A mapping chain deep enough that one-route probes do real work:
/// `S -> T1 -> ... -> T6`, twenty source rows.
fn scenario_text() -> String {
    let mut text = String::from("source schema:\n  S(a, b)\ntarget schema:\n");
    for i in 1..=6 {
        text.push_str(&format!("  T{i}(a, b)\n"));
    }
    text.push_str("dependencies:\n  m1: S(x, y) -> T1(x, y)\n");
    for i in 2..=6 {
        text.push_str(&format!("  m{i}: T{}(x, y) -> T{i}(x, y)\n", i - 1));
    }
    text.push_str("source data:\n");
    for row in 0..20 {
        text.push_str(&format!("  S({row}, {})\n", row + 1));
    }
    text
}

/// Serialize one connection-close request.
fn request_bytes(method: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// One connection-close exchange of pre-serialized bytes; `Err` covers
/// refused connects, resets, and malformed replies alike — the bench
/// counts them, never panics.
fn exchange_raw(addr: SocketAddr, request: &[u8], scratch: &mut Vec<u8>) -> std::io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(request)?;
    scratch.clear();
    stream.read_to_end(scratch)?;
    let head = std::str::from_utf8(&scratch[..scratch.len().min(16)])
        .map_err(|_| std::io::Error::other("non-UTF-8 status line"))?;
    head.strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed status line"))
}

/// One connection-close exchange (convenience wrapper).
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> std::io::Result<u16> {
    exchange_raw(addr, &request_bytes(method, path, body), &mut Vec::new())
}

/// One saturation point: `clients` closed-loop drivers for `window`.
/// Returns (elapsed, ok_200, shed_429, errors).
fn drive(
    addr: SocketAddr,
    path: &str,
    clients: usize,
    window: Duration,
) -> (Duration, u64, u64, u64) {
    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let probe = r#"{"tuples": [{"relation": "T6", "row": 0}]}"#;
    let request = request_bytes("POST", path, probe);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut scratch = Vec::with_capacity(4096);
                while !stop.load(Relaxed) {
                    match exchange_raw(addr, &request, &mut scratch) {
                        Ok(200) => ok.fetch_add(1, Relaxed),
                        Ok(429) => shed.fetch_add(1, Relaxed),
                        Ok(_) | Err(_) => errors.fetch_add(1, Relaxed),
                    };
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Relaxed);
    });
    (
        started.elapsed(),
        ok.load(Relaxed),
        shed.load(Relaxed),
        errors.load(Relaxed),
    )
}

/// Run the saturation sweep and render the table (see module docs).
pub fn http_benches(quick: bool) -> Table {
    let clients: &[usize] = if quick { &CLIENTS_QUICK } else { &CLIENTS };
    let window = if quick { WINDOW_QUICK } else { WINDOW };
    let mut out = Table::new(
        "micro_http",
        &[
            "clients",
            "seconds",
            "requests",
            "ok_200",
            "shed_429",
            "errors",
            "goodput_rps",
            "shed_rps",
            "goodput_vs_peak",
        ],
    );

    let mut points = Vec::new();
    for &n in clients {
        // A fresh, deliberately small server per point: admission counters
        // and the forest cache start cold, so points are independent.
        let (addr, handle) = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                threads: 2,
                max_queue: 4,
                retry_after: Some(Duration::from_secs(1)),
                request_deadline: Some(Duration::from_secs(10)),
                ..ServerConfig::default()
            },
        )
        .expect("bind")
        .spawn()
        .expect("spawn");

        let create = format!("{{\"scenario\": {}}}", Json::from(scenario_text()).encode());
        let session = post_session(addr, &create);
        let path = format!("/sessions/{session}/one-route");
        // Warm the forest cache so the sweep measures steady state.
        assert_eq!(
            exchange(
                addr,
                "POST",
                &path,
                r#"{"tuples": [{"relation": "T6", "row": 0}]}"#
            )
            .expect("warmup probe"),
            200
        );

        let (elapsed, ok, shed, errors) = drive(addr, &path, n, window);
        points.push((n, elapsed, ok, shed, errors));

        assert_eq!(
            exchange(addr, "POST", "/shutdown", "").expect("shutdown"),
            200
        );
        handle.join().expect("server exits");
    }

    let peak = points
        .iter()
        .map(|&(_, elapsed, ok, _, _)| ok as f64 / elapsed.as_secs_f64())
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    for (n, elapsed, ok, shed, errors) in points {
        let secs = elapsed.as_secs_f64();
        let goodput = ok as f64 / secs;
        out.push(vec![
            n.to_string(),
            format!("{secs:.3}"),
            (ok + shed + errors).to_string(),
            ok.to_string(),
            shed.to_string(),
            errors.to_string(),
            format!("{goodput:.1}"),
            format!("{:.1}", shed as f64 / secs),
            format!("{:.3}", goodput / peak),
        ]);
    }
    out
}

/// Create the bench session; panics with the body on anything but 201.
fn post_session(addr: SocketAddr, create: &str) -> u64 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /sessions HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\
                 content-length: {}\r\n\r\n{create}",
                create.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut all = Vec::new();
    stream.read_to_end(&mut all).unwrap();
    let text = std::str::from_utf8(&all).expect("UTF-8 response");
    assert!(
        text.starts_with("HTTP/1.1 201"),
        "session create failed: {text}"
    );
    let body_at = text.find("\r\n\r\n").expect("complete response") + 4;
    parse(&text[body_at..])
        .expect("JSON body")
        .get("session")
        .and_then(Json::as_u64)
        .expect("session id")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_consistent_rows() {
        let table = http_benches(true);
        assert_eq!(table.rows.len(), CLIENTS_QUICK.len());
        for row in &table.rows {
            let requests: u64 = row[2].parse().unwrap();
            let ok: u64 = row[3].parse().unwrap();
            let shed: u64 = row[4].parse().unwrap();
            let errors: u64 = row[5].parse().unwrap();
            assert_eq!(requests, ok + shed + errors, "split must reconcile");
            assert!(ok > 0, "every point should complete some requests");
            let ratio: f64 = row[8].parse().unwrap();
            assert!(ratio > 0.0 && ratio <= 1.0 + 1e-9);
        }
    }
}
