//! Criterion bench for the §4.2 real-dataset scenarios (Table 1): one route
//! vs. all routes on the DBLP→Amalgam and Mondial scenarios.

use criterion::{criterion_group, criterion_main, Criterion};
use routes_chase::ChaseOptions;
use routes_core::{compute_all_routes, compute_one_route, RouteEnv};
use routes_gen::real::{dblp_scenario, mondial_scenario, RealScenario};
use routes_gen::scenario::random_tuples;
use routes_model::{Instance, TupleId};

fn routable_selection(
    env: RouteEnv<'_>,
    solution: &Instance,
    n: usize,
    seed: u64,
) -> Vec<TupleId> {
    let rels: Vec<_> = env
        .mapping
        .target()
        .iter()
        .filter(|(r, _)| solution.rel_len(*r) > 0)
        .map(|(r, _)| r)
        .collect();
    let mut out = Vec::new();
    let mut attempt = 0;
    while out.len() < n && attempt < 50 {
        for t in random_tuples(solution, &rels, n - out.len(), seed + attempt) {
            if !out.contains(&t) && compute_one_route(env, &[t]).is_ok() {
                out.push(t);
            }
        }
        attempt += 1;
    }
    out
}

fn bench_scenario(c: &mut Criterion, name: &str, mut sc: RealScenario) {
    let solution = sc
        .scenario
        .solution_with(ChaseOptions::fresh())
        .unwrap()
        .target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let selection = routable_selection(env, &solution, 5, 50);
    assert!(!selection.is_empty());

    let mut group = c.benchmark_group(format!("table1_{name}"));
    group.sample_size(10);
    group.bench_function("one_route_5_tuples", |b| {
        b.iter(|| compute_one_route(env, &selection).unwrap());
    });
    group.bench_function("all_routes_5_tuples", |b| {
        b.iter(|| compute_all_routes(env, &selection));
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    bench_scenario(c, "dblp", dblp_scenario(0.02, 51));
    bench_scenario(c, "mondial", mondial_scenario(0.02, 52));
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
