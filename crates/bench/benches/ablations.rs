//! Ablation benches for the implementation's design choices:
//!
//! * **lazy vs. eager `findHom`** — the paper's §3.3 contrast between the
//!   relational path (DB2 cursors, one assignment at a time) and the XML
//!   path (Saxon, all assignments at once). Laziness is what makes
//!   `ComputeOneRoute` cheap when anchors are unselective.
//! * **`prove_rhs_siblings`** — the §3.3 optimization that marks every
//!   tuple of `RHS(h(σ))` proven after a successful step, skipping
//!   redundant `findHom` calls for siblings.
//! * **standard (`Fresh`) vs. Skolemized chase** — solution materialization
//!   cost: the standard chase pays an RHS-existence query per match.

use criterion::{criterion_group, criterion_main, Criterion};
use routes_chase::{chase, ChaseOptions};
use routes_model::{Atom, Instance, Schema, Term, Value, Var};
use routes_query::{Bindings, EvalOptions, MatchIter};
use routes_core::{compute_one_route_with, OneRouteOptions, RouteEnv};
use routes_gen::hierarchy::{deep_scenario, DeepRows};
use routes_gen::relational::relational_scenario;
use routes_gen::TpchRows;

fn bench_lazy_vs_eager_findhom(c: &mut Criterion) {
    // Deep hierarchy, shallow selection: the case where eagerness hurts
    // most (a depth-2 anchor leaves three levels of variables free).
    let rows = DeepRows {
        regions: 4,
        nations_per: 4,
        customers_per: 4,
        orders_per: 3,
        lineitems_per: 3,
    };
    let mut sc = deep_scenario(&rows, 31);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let selection = sc.select_at_depth(&solution, 2, 4, 32);

    let mut group = c.benchmark_group("ablation_findhom_mode");
    group.sample_size(20);
    for (name, eager) in [("lazy", false), ("eager", true)] {
        let options = OneRouteOptions {
            eager_findhom: eager,
            ..OneRouteOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| compute_one_route_with(env, &selection, &options).unwrap());
        });
    }
    group.finish();
}

fn bench_sibling_proving(c: &mut Criterion) {
    // Wide RHS (the copying tgds witness a whole join group per step):
    // sibling proving should pay off when several selected tuples share
    // witnessing steps.
    let mut sc = relational_scenario(1, &TpchRows::scale(0.002), 33);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let selection = sc.select_from_group(&solution, 4, 15, 34);

    let mut group = c.benchmark_group("ablation_prove_rhs_siblings");
    group.sample_size(20);
    for (name, on) in [("on", true), ("off", false)] {
        let options = OneRouteOptions {
            prove_rhs_siblings: on,
            ..OneRouteOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| compute_one_route_with(env, &selection, &options).unwrap());
        });
    }
    group.finish();
}

fn bench_chase_modes(c: &mut Criterion) {
    let sc = relational_scenario(1, &TpchRows::scale(0.001), 35);
    let mut group = c.benchmark_group("ablation_chase_mode");
    group.sample_size(10);
    for (name, options) in [
        ("fresh_standard", ChaseOptions::fresh()),
        ("skolem_oblivious", ChaseOptions::skolem()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut pool = sc.scenario.pool.clone();
                chase(&sc.scenario.mapping, &sc.scenario.source, &mut pool, options).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_composite_indexes(c: &mut Criterion) {
    // Skewed relation: both columns individually unselective (10 distinct
    // values each over 100k rows), the pair selective (~1k rows per pair).
    let mut schema = Schema::new();
    let rel = schema.rel("R", &["a", "b", "payload"]);
    let mut inst = Instance::new(&schema);
    for k in 0..100_000i64 {
        inst.insert_ok(rel, &[Value::Int(k % 10), Value::Int((k / 10) % 10), Value::Int(k)]);
    }
    let atoms = vec![Atom::new(
        rel,
        vec![Term::Var(Var(0)), Term::Var(Var(1)), Term::Var(Var(2))],
    )];
    let mut init = Bindings::new(3);
    init.set(Var(0), Value::Int(3));
    init.set(Var(1), Value::Int(7));

    let mut group = c.benchmark_group("ablation_composite_index");
    group.sample_size(20);
    for (name, threshold) in [("composite", 64usize), ("single_column_only", usize::MAX)] {
        let options = EvalOptions { composite_threshold: threshold };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut it = MatchIter::with_options(&inst, &atoms, init.clone(), options);
                let mut n = 0usize;
                while it.next_match().is_some() {
                    n += 1;
                }
                n
            });
        });
    }
    group.finish();
}

fn bench_chase_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_scaling");
    group.sample_size(10);
    for (label, sf) in [("sf_0.0005", 0.0005), ("sf_0.001", 0.001), ("sf_0.002", 0.002)] {
        let sc = relational_scenario(1, &TpchRows::scale(sf), 36);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut pool = sc.scenario.pool.clone();
                chase(
                    &sc.scenario.mapping,
                    &sc.scenario.source,
                    &mut pool,
                    ChaseOptions::skolem(),
                )
                .unwrap()
                .target
                .total_tuples()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lazy_vs_eager_findhom,
    bench_sibling_proving,
    bench_chase_modes,
    bench_composite_indexes,
    bench_chase_scaling
);
criterion_main!(benches);
