//! Criterion bench for Figure 11: one-route time vs. the nesting depth of
//! the selected element in the deep-hierarchy scenario. The paper's result
//! is that time *decreases* with depth (deeper anchors pre-bind more of the
//! copying tgd's variables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routes_core::{compute_one_route_with, OneRouteOptions, RouteEnv};
use routes_gen::hierarchy::{deep_scenario, DeepRows};

fn bench_fig11_depths(c: &mut Criterion) {
    let rows = DeepRows {
        regions: 5,
        nations_per: 4,
        customers_per: 4,
        orders_per: 3,
        lineitems_per: 3,
    };
    let mut sc = deep_scenario(&rows, 7);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    // XML mode: all findHom assignments fetched eagerly (paper §3.3).
    let options = OneRouteOptions {
        eager_findhom: true,
        ..OneRouteOptions::default()
    };

    let mut group = c.benchmark_group("fig11_one_route_by_depth");
    group.sample_size(10);
    for depth in 1..=5usize {
        let selection = sc.select_at_depth(&solution, depth, 3, 46);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &(), |b, ()| {
            b.iter(|| compute_one_route_with(env, &selection, &options).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11_depths);
criterion_main!(benches);
