//! Criterion bench for the flat-hierarchy scenario (§4.1): one-route time
//! on depth-1 nested schemas, by size and by join count, in XML mode
//! (eager `findHom`, paper §3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routes_core::{compute_one_route_with, OneRouteOptions, RouteEnv};
use routes_gen::hierarchy::flat_scenario;
use routes_gen::TpchRows;

fn xml_options() -> OneRouteOptions {
    OneRouteOptions {
        eager_findhom: true,
        ..OneRouteOptions::default()
    }
}

fn bench_flat_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_one_route_by_size");
    group.sample_size(10);
    for (label, sf) in [("500KB", 0.0005), ("1MB", 0.001), ("5MB", 0.005)] {
        let mut sc = flat_scenario(1, &TpchRows::scale(sf), 8);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 47);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let options = xml_options();
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| compute_one_route_with(env, &selection, &options).unwrap());
        });
    }
    group.finish();
}

fn bench_flat_by_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_one_route_by_joins");
    group.sample_size(10);
    for joins in 0..=3usize {
        let mut sc = flat_scenario(joins, &TpchRows::scale(0.001), 9);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 48);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let options = xml_options();
        group.bench_with_input(BenchmarkId::from_parameter(joins), &(), |b, ()| {
            b.iter(|| compute_one_route_with(env, &selection, &options).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flat_by_size, bench_flat_by_joins);
criterion_main!(benches);
