//! Criterion benches for the paper's Figure 10 family (relational
//! scenarios): one-route vs. parameters, and one-route vs. all-routes.
//!
//! These run at a small fixed scale so `cargo bench` completes quickly; the
//! full parameter sweeps live in the `repro` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routes_core::{compute_all_routes, compute_one_route, RouteEnv};
use routes_gen::relational::relational_scenario;
use routes_gen::TpchRows;

const BENCH_SF: f64 = 0.002;

fn bench_fig10a_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_one_route_by_size");
    for (label, sf) in [("small", 0.001), ("medium", 0.002), ("large", 0.005)] {
        let mut sc = relational_scenario(1, &TpchRows::scale(sf), 1);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 42);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| compute_one_route(env, &selection).unwrap());
        });
    }
    group.finish();
}

fn bench_fig10b_mt_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_one_route_by_mt");
    let mut sc = relational_scenario(3, &TpchRows::scale(BENCH_SF), 2);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    for mt in [1usize, 3, 6] {
        let selection = sc.select_from_group(&solution, mt, 5, 43);
        group.bench_with_input(BenchmarkId::from_parameter(mt), &(), |b, ()| {
            b.iter(|| compute_one_route(env, &selection).unwrap());
        });
    }
    group.finish();
}

fn bench_fig10c_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10c_one_route_by_joins");
    for joins in 0..=3usize {
        let mut sc = relational_scenario(joins, &TpchRows::scale(BENCH_SF), 3);
        let solution = sc.scenario.solution().unwrap().target;
        let selection = sc.select_from_group(&solution, 3, 5, 44);
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        group.bench_with_input(BenchmarkId::from_parameter(joins), &(), |b, ()| {
            b.iter(|| compute_one_route(env, &selection).unwrap());
        });
    }
    group.finish();
}

fn bench_fig10d_one_vs_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10d_one_vs_all");
    let mut sc = relational_scenario(1, &TpchRows::scale(BENCH_SF), 4);
    let solution = sc.scenario.solution().unwrap().target;
    let selection = sc.select_from_group(&solution, 3, 5, 45);
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    group.bench_function("computeOneRoute", |b| {
        b.iter(|| compute_one_route(env, &selection).unwrap());
    });
    group.sample_size(10);
    group.bench_function("computeAllRoutes", |b| {
        b.iter(|| compute_all_routes(env, &selection));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig10a_sizes,
    bench_fig10b_mt_factor,
    bench_fig10c_joins,
    bench_fig10d_one_vs_all
);
criterion_main!(benches);
