//! End-to-end tests of the `spider` debugger over the shipped Fargo
//! scenario file, driving the same command sequences as the paper's §2.1
//! walkthrough.

use routes_cli::{load_scenario_str, Repl};

fn fargo_repl() -> Repl {
    let text = include_str!("../scenarios/fargo.sdl");
    Repl::new(load_scenario_str(text).unwrap()).unwrap()
}

#[test]
fn scenario_file_reproduces_figure_2_labels() {
    let mut repl = fargo_repl();
    let sources = repl.execute("source").unwrap();
    assert!(sources.contains("s1: Cards(6689, 15K, 434, J. Long, Smith, 50K, Seattle)"));
    assert!(sources.contains("s6: CreditCards(5539, 40K, 153)"));
    let targets = repl.execute("target").unwrap();
    assert!(targets.contains("t2: Accounts(N1, 2K, 234)"));
    assert!(targets.contains("t10: Clients(234, C. Don, M5, 900K, New York)"));
}

#[test]
fn scenario_1_probe_t5() {
    let mut repl = fargo_repl();
    let out = repl.execute("probe t5").unwrap();
    assert!(out.contains("--m1-->"));
    assert!(out.contains("loc -> Seattle"));
    assert!(out.contains("A -> A1"));
}

#[test]
fn scenario_2_alternatives_for_t4() {
    let mut repl = fargo_repl();
    let out = repl.execute("alt t4 5").unwrap();
    assert!(out.contains("route #1"));
    assert!(out.contains("route #2"));
    assert!(!out.contains("route #3"));
    assert!(out.contains("FBAccounts(1001"));
    assert!(out.contains("FBAccounts(4341"));
}

#[test]
fn scenario_3_probe_and_trace_t2() {
    let mut repl = fargo_repl();
    let out = repl.execute("probe t2").unwrap();
    assert!(out.contains("--m2-->"));
    assert!(out.contains("--m5-->"));
    let trace = repl.execute("trace t2 break m5").unwrap();
    assert!(trace.contains("*** breakpoint"));
    let strat = repl.execute("strat t2").unwrap();
    assert!(strat.starts_with("rank 2"));
}

#[test]
fn exports_and_forest() {
    let mut repl = fargo_repl();
    let exports = repl.execute("exports s2").unwrap();
    assert!(exports.contains("exported by: m2"));
    let forest = repl.execute("forest t4").unwrap();
    assert!(forest.contains("[m3]"));
    assert!(forest.contains("branches)"));
}

#[test]
fn rechasing_replaces_the_figure_2_solution() {
    let mut repl = fargo_repl();
    let out = repl.execute("chase").unwrap();
    assert!(out.contains("chased:"));
    // The chased solution satisfies m6 without hand-tuning and still has
    // routable tuples.
    let targets = repl.execute("target Accounts").unwrap();
    assert!(targets.contains("Accounts("));
    let first_label = targets
        .lines()
        .next()
        .and_then(|l| l.trim().split(':').next())
        .unwrap()
        .to_owned();
    let out = repl.execute(&format!("probe {first_label}")).unwrap();
    assert!(out.contains("-->"));
}

#[test]
fn nested_xml_scenario_loads_and_routes() {
    let text = include_str!("../scenarios/dblp_nested.sdl");
    let loaded = load_scenario_str(text).unwrap();
    assert!(loaded.nested_source.is_some());
    assert!(loaded.nested_target.is_some());
    // 2 conferences + 3 editions + 4 papers.
    assert_eq!(loaded.source.total_tuples(), 9);
    let mut repl = Repl::new(loaded).unwrap();
    let targets = repl.execute("target").unwrap();
    assert!(targets.contains("Venue("));
    assert!(targets.contains("Debugging Schema Mappings with Routes"));
    // Probe the first publication: one route through the `pub` tgd.
    let pub_label = targets
        .lines()
        .find(|l| l.contains("Publication("))
        .and_then(|l| l.trim().split(':').next())
        .unwrap()
        .to_owned();
    let out = repl.execute(&format!("probe {pub_label}")).unwrap();
    assert!(out.contains("--pub-->"), "{out}");
    // The decoded XML view groups publications under their venues.
    let xml = repl.execute("xml").unwrap();
    assert!(xml.contains("<Venue name=\"VLDB\">"), "{xml}");
    assert!(
        xml.contains("<Publication title=\"Peer Data Exchange\" year=\"2005\"/>"),
        "{xml}"
    );
    // The vkey egd merged the per-paper venue nulls: exactly one VLDB node.
    assert_eq!(xml.matches("<Venue name=\"VLDB\">").count(), 1, "{xml}");
}

#[test]
fn nested_loader_rejects_bad_structure() {
    // Data without an xml schema.
    let text = "source schema:\n S(a)\ntarget schema:\n T(a)\nsource xml data:\n X(1)\n";
    assert!(load_scenario_str(text).is_err());
    // A record nested under the wrong parent.
    let text = "source xml schema:\n A(x)\n  B(y)\ntarget schema:\n T(a)\n\
                dependencies:\n m: A(s, p, x) -> T(x)\nsource xml data:\n B(1)\n";
    let err = load_scenario_str(text).unwrap_err();
    assert!(err.to_string().contains("wrong parent"), "{err}");
    // Arity mismatch in nested data.
    let text = "source xml schema:\n A(x)\ntarget schema:\n T(a)\n\
                dependencies:\n m: A(s, p, x) -> T(x)\nsource xml data:\n A(1, 2)\n";
    let err = load_scenario_str(text).unwrap_err();
    assert!(err.to_string().contains("value(s)"), "{err}");
}

#[test]
fn scenario_roundtrips_through_save() {
    let repl = fargo_repl();
    let text = repl.to_scenario_text();
    let reloaded = load_scenario_str(&text)
        .unwrap_or_else(|e| panic!("saved scenario must reload: {e}\n{text}"));
    assert_eq!(reloaded.source.total_tuples(), 6);
    assert_eq!(
        reloaded
            .target
            .as_ref()
            .map(routes_model::Instance::total_tuples),
        Some(10)
    );
    assert_eq!(reloaded.mapping.st_tgds().len(), 3);
    assert_eq!(reloaded.mapping.target_tgds().len(), 2);
    assert_eq!(reloaded.mapping.egds().len(), 1);
    // A reloaded session answers the same probes.
    let mut repl2 = Repl::new(reloaded).unwrap();
    let out = repl2.execute("probe t2").unwrap();
    assert!(out.contains("--m2-->") && out.contains("--m5-->"), "{out}");
}

#[test]
fn example_3_5_scenario_file() {
    let text = include_str!("../scenarios/example_3_5.sdl");
    let mut repl = Repl::new(load_scenario_str(text).unwrap()).unwrap();
    // T7 is t7 (targets list in declaration order, one tuple each).
    let routes = repl.execute("routes t7 20").unwrap();
    // The single NaivePrint route is the paper's R3 (10 steps).
    assert_eq!(routes.matches("route #").count(), 1, "{routes}");
    assert_eq!(routes.matches("--s").count(), 10, "{routes}");
    let why = repl.execute("why t7").unwrap();
    assert!(why.contains("park (T7(a), s6, h)"), "{why}");
    let dot = repl.execute("dot t7").unwrap();
    assert!(dot.contains("label=\"s7\""));
}
