//! The scenario file format.
//!
//! ```text
//! # The paper's Figure 1/2 scenario.
//! source schema:
//!   Cards(cardNo, limit, ssn, name, maidenName, salary, location)
//! target schema:
//!   Accounts(accNo, limit, accHolder)
//! dependencies:
//!   m1: Cards(cn, l, s, n, m, sal, loc) -> exists A: Accounts(cn, l, s)
//! source data:
//!   Cards(6689, '15K', 434, 'J. Long', 'Smith', '50K', 'Seattle')
//! target data:            # optional; omit to chase instead
//!   Accounts(6689, '15K', 434)
//! ```
//!
//! Value syntax in data sections: integers are numeric literals, string
//! constants are quoted, and **bare identifiers are labeled nulls** (`N1`,
//! `A1` — exactly how the paper writes Figure 2's solution).
//!
//! ## Multi-stage pipeline scenarios
//!
//! A scenario file containing `stage <name>:` headers describes a **mapping
//! pipeline** `S → T₁ → … → Tₙ` ([`load_pipeline_str`]). Each stage block
//! declares its own `source schema:`, `target schema:`, and
//! `dependencies:`; consecutive stages must compose (a stage's source
//! schema is the previous stage's target schema). `source data:` is global
//! and feeds the first stage. An optional `pipeline:` section holds
//! per-session options — currently `core: on` to minimize every chased
//! instance to its core before the next hop:
//!
//! ```text
//! pipeline:
//!   core: on
//! stage clean:
//!   source schema:
//!     S(a, b)
//!   target schema:
//!     T(a, b)
//!   dependencies:
//!     m1: S(x, y) -> T(x, y)
//! stage publish:
//!   source schema:
//!     T(a, b)
//!   target schema:
//!     U(a)
//!   dependencies:
//!     m2: T(x, y) -> U(x)
//! source data:
//!   S(1, 2)
//! ```

use std::fmt;

use routes_mapping::{
    check_stage_compatibility, parse_dependency, parse_stage_header, MappingError, SchemaMapping,
};
use routes_model::{Instance, ModelError, Schema, Value, ValuePool};
use routes_nested::{encode_instance, encode_schema, NestedInstance, NestedSchema};
use routes_pipeline::{Pipeline, PipelineStage};

/// A parsed scenario: mapping, source instance, and optional explicit
/// target instance.
#[derive(Debug)]
pub struct LoadedScenario {
    /// The shared value pool.
    pub pool: ValuePool,
    /// The schema mapping.
    pub mapping: SchemaMapping,
    /// The source instance.
    pub source: Instance,
    /// The target instance, if the file supplied one (otherwise the caller
    /// chases).
    pub target: Option<Instance>,
    /// The nested source schema, when the file used `source xml schema:`
    /// (its record relations appear in the flat source schema with leading
    /// `self`/`parent` columns).
    pub nested_source: Option<NestedSchema>,
    /// The nested target schema, when the file used `target xml schema:`.
    pub nested_target: Option<NestedSchema>,
}

/// Loader failures, with 1-based line numbers.
#[derive(Debug)]
pub enum LoaderError {
    /// A line outside any section, or an unknown section header.
    Structure {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A dependency failed to parse or validate.
    Dependency {
        /// 1-based line number.
        line: usize,
        /// The underlying error.
        source: MappingError,
    },
    /// A data row failed to parse or insert.
    Data {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LoaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderError::Structure { line, message } => write!(f, "line {line}: {message}"),
            LoaderError::Dependency { line, source } => write!(f, "line {line}: {source}"),
            LoaderError::Data { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for LoaderError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    SourceSchema,
    TargetSchema,
    SourceXmlSchema,
    TargetXmlSchema,
    Dependencies,
    SourceData,
    SourceXmlData,
    TargetData,
}

/// Parse a scenario from text.
pub fn load_scenario_str(text: &str) -> Result<LoadedScenario, LoaderError> {
    let mut pool = ValuePool::new();
    let mut source_schema = Schema::new();
    let mut target_schema = Schema::new();
    let mut dep_lines: Vec<(usize, String)> = Vec::new();
    let mut source_rows: Vec<(usize, String)> = Vec::new();
    let mut target_rows: Vec<(usize, String)> = Vec::new();
    // XML sections keep their indentation (it encodes nesting).
    let mut src_xml_schema_lines: Vec<(usize, usize, String)> = Vec::new();
    let mut dst_xml_schema_lines: Vec<(usize, usize, String)> = Vec::new();
    let mut src_xml_data_lines: Vec<(usize, usize, String)> = Vec::new();
    let mut section = Section::None;
    let mut saw_target_data = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let stripped = strip_comment(raw);
        let line = stripped.trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let indent = stripped.len() - stripped.trim_start().len();
        if let Some(new_section) = section_header(&line) {
            section = new_section;
            if section == Section::TargetData {
                saw_target_data = true;
            }
            continue;
        }
        match section {
            Section::None => {
                return Err(LoaderError::Structure {
                    line: line_no,
                    message: format!("content before any section header: `{line}`"),
                })
            }
            Section::SourceSchema => {
                add_relation(&mut source_schema, &line, line_no)?;
            }
            Section::TargetSchema => {
                add_relation(&mut target_schema, &line, line_no)?;
            }
            Section::SourceXmlSchema => src_xml_schema_lines.push((line_no, indent, line)),
            Section::TargetXmlSchema => dst_xml_schema_lines.push((line_no, indent, line)),
            Section::Dependencies => {
                // Multi-line dependencies: a line continues the previous one
                // when it starts with a connective, or when the previous
                // line is not yet a complete implication.
                let starts_continuation = line.starts_with("->")
                    || line.starts_with('→')
                    || line.starts_with('&')
                    || line.starts_with('∧');
                let prev_incomplete =
                    dep_lines.last().is_some_and(|(_, prev): &(usize, String)| {
                        let no_arrow = !prev.contains("->") && !prev.contains('→');
                        no_arrow
                            || prev.trim_end().ends_with('&')
                            || prev.trim_end().ends_with('∧')
                            || prev.trim_end().ends_with("->")
                            || prev.trim_end().ends_with('→')
                            || prev.trim_end().ends_with(',')
                    });
                match dep_lines.last_mut() {
                    Some((_, prev)) if starts_continuation || prev_incomplete => {
                        prev.push(' ');
                        prev.push_str(&line);
                    }
                    _ => dep_lines.push((line_no, line)),
                }
            }
            Section::SourceData => source_rows.push((line_no, line)),
            Section::SourceXmlData => src_xml_data_lines.push((line_no, indent, line)),
            Section::TargetData => target_rows.push((line_no, line)),
        }
    }

    // XML schemas: nesting from indentation; their relational encodings are
    // merged into the flat schemas (dependencies then reference relations
    // whose first two columns are `self` and `parent`).
    let nested_source = if src_xml_schema_lines.is_empty() {
        None
    } else {
        Some(parse_nested_schema(&src_xml_schema_lines)?)
    };
    if let Some(ns) = &nested_source {
        merge_encoded_schema(ns, &mut source_schema)?;
    }
    let nested_target = if dst_xml_schema_lines.is_empty() {
        None
    } else {
        Some(parse_nested_schema(&dst_xml_schema_lines)?)
    };
    if let Some(nt) = &nested_target {
        merge_encoded_schema(nt, &mut target_schema)?;
    }

    let mut mapping = SchemaMapping::new(source_schema.clone(), target_schema.clone());
    for (line, text) in dep_lines {
        let dep = parse_dependency(&source_schema, &target_schema, &mut pool, &text)
            .map_err(|source| LoaderError::Dependency { line, source })?;
        mapping
            .add_dependency(dep)
            .map_err(|source| LoaderError::Dependency { line, source })?;
    }

    let mut source = Instance::new(&source_schema);
    for (line, text) in source_rows {
        insert_row(&mut source, &source_schema, &mut pool, &text, line)?;
    }
    if let Some(ns) = &nested_source {
        let tree = parse_nested_data(ns, &mut pool, &src_xml_data_lines)?;
        let enc_schema = encode_schema(ns);
        let encoded = encode_instance(ns, &enc_schema, &tree);
        for (rel_id, rel) in enc_schema.schema.iter() {
            let dst = source_schema
                .rel_id(rel.name())
                .expect("encoded relations were merged into the source schema");
            for (_, values) in encoded.instance.rel_tuples(rel_id) {
                source.insert(dst, &values).expect("same arity");
            }
        }
    } else if !src_xml_data_lines.is_empty() {
        return Err(LoaderError::Structure {
            line: src_xml_data_lines[0].0,
            message: "`source xml data:` requires a `source xml schema:` section".into(),
        });
    }
    let target = if saw_target_data {
        let mut t = Instance::new(&target_schema);
        for (line, text) in target_rows {
            insert_row(&mut t, &target_schema, &mut pool, &text, line)?;
        }
        Some(t)
    } else {
        None
    };

    Ok(LoadedScenario {
        pool,
        mapping,
        source,
        target,
        nested_source,
        nested_target,
    })
}

/// A parsed pipeline scenario: the validated stage chain and the first
/// hop's source instance.
#[derive(Debug)]
pub struct LoadedPipeline {
    /// The shared value pool.
    pub pool: ValuePool,
    /// The validated chain (carries the per-session core mode).
    pub pipeline: Pipeline,
    /// The source instance feeding the first stage.
    pub source: Instance,
}

/// Whether scenario text uses the multi-stage pipeline syntax (a `stage
/// <name>:` header or a `pipeline:` options section). Front-ends use this
/// to pick [`load_pipeline_str`] over [`load_scenario_str`].
pub fn is_pipeline_scenario(text: &str) -> bool {
    text.lines().any(|raw| {
        let line = strip_comment(raw).trim();
        let lowered = line.to_ascii_lowercase();
        lowered == "pipeline:"
            || (lowered.starts_with("stage") && lowered.ends_with(':') && {
                lowered
                    .strip_prefix("stage")
                    .is_some_and(|rest| rest.starts_with(char::is_whitespace))
            })
    })
}

/// One stage block under construction.
struct RawStage {
    line: usize,
    name: String,
    source_schema: Schema,
    target_schema: Schema,
    dep_lines: Vec<(usize, String)>,
    saw_source_schema: bool,
    saw_target_schema: bool,
}

/// Parse a multi-stage pipeline scenario from text (see the module docs for
/// the syntax). Stage-chain violations — malformed headers, duplicate stage
/// names, schema/arity mismatches between consecutive stages — surface as
/// the typed [`MappingError`]s of `routes-mapping`, wrapped with the line
/// number of the offending stage header.
pub fn load_pipeline_str(text: &str) -> Result<LoadedPipeline, LoaderError> {
    let mut pool = ValuePool::new();
    let mut stages: Vec<RawStage> = Vec::new();
    let mut source_rows: Vec<(usize, String)> = Vec::new();
    let mut core_mode = false;
    // What the current content lines belong to: a section of the current
    // stage, the global data section, or the global options section.
    #[derive(PartialEq, Eq, Clone, Copy)]
    enum Where {
        None,
        StageBody,
        StageSection(Section),
        SourceData,
        Options,
    }
    let mut at = Where::None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let lowered = line.to_ascii_lowercase();
        if lowered.starts_with("stage")
            && lowered
                .strip_prefix("stage")
                .is_some_and(|rest| rest.starts_with(char::is_whitespace))
        {
            let name = parse_stage_header(&line).map_err(|source| LoaderError::Dependency {
                line: line_no,
                source,
            })?;
            if stages.iter().any(|s| s.name == name) {
                return Err(LoaderError::Dependency {
                    line: line_no,
                    source: MappingError::DuplicateStage { stage: name },
                });
            }
            stages.push(RawStage {
                line: line_no,
                name,
                source_schema: Schema::new(),
                target_schema: Schema::new(),
                dep_lines: Vec::new(),
                saw_source_schema: false,
                saw_target_schema: false,
            });
            at = Where::StageBody;
            continue;
        }
        if lowered == "pipeline:" {
            at = Where::Options;
            continue;
        }
        if let Some(section) = section_header(&line) {
            at = match section {
                Section::SourceData => Where::SourceData,
                Section::SourceSchema | Section::TargetSchema | Section::Dependencies => {
                    if !matches!(at, Where::StageBody | Where::StageSection(_)) {
                        return Err(LoaderError::Structure {
                            line: line_no,
                            message: format!(
                                "`{line}` must appear inside a `stage <name>:` block in a \
                                 pipeline scenario"
                            ),
                        });
                    }
                    let stage = stages.last_mut().expect("inside a stage");
                    match section {
                        Section::SourceSchema => stage.saw_source_schema = true,
                        Section::TargetSchema => stage.saw_target_schema = true,
                        _ => {}
                    }
                    Where::StageSection(section)
                }
                _ => {
                    return Err(LoaderError::Structure {
                        line: line_no,
                        message: format!("`{line}` is not supported in pipeline scenarios"),
                    })
                }
            };
            continue;
        }
        match at {
            Where::None => {
                return Err(LoaderError::Structure {
                    line: line_no,
                    message: format!("content before any section header: `{line}`"),
                })
            }
            Where::StageBody => {
                return Err(LoaderError::Structure {
                    line: line_no,
                    message: format!("content before any section header in stage: `{line}`"),
                })
            }
            Where::Options => {
                let (key, value) = line.split_once(':').ok_or_else(|| LoaderError::Structure {
                    line: line_no,
                    message: format!("expected `option: value`, found `{line}`"),
                })?;
                match (
                    key.trim().to_ascii_lowercase().as_str(),
                    value.trim().to_ascii_lowercase().as_str(),
                ) {
                    ("core" | "core mode", "on" | "true") => core_mode = true,
                    ("core" | "core mode", "off" | "false") => core_mode = false,
                    ("core" | "core mode", other) => {
                        return Err(LoaderError::Structure {
                            line: line_no,
                            message: format!("`core` must be on or off, found `{other}`"),
                        })
                    }
                    (other, _) => {
                        return Err(LoaderError::Structure {
                            line: line_no,
                            message: format!("unknown pipeline option `{other}`"),
                        })
                    }
                }
            }
            Where::SourceData => source_rows.push((line_no, line)),
            Where::StageSection(section) => {
                let stage = stages.last_mut().expect("inside a stage");
                match section {
                    Section::SourceSchema => {
                        add_relation(&mut stage.source_schema, &line, line_no)?
                    }
                    Section::TargetSchema => {
                        add_relation(&mut stage.target_schema, &line, line_no)?
                    }
                    Section::Dependencies => {
                        push_dep_line(&mut stage.dep_lines, line, line_no);
                    }
                    _ => unreachable!("only stage-local sections reach here"),
                }
            }
        }
    }

    if stages.is_empty() {
        return Err(LoaderError::Structure {
            line: 1,
            message: "a pipeline scenario needs at least one `stage <name>:` block".into(),
        });
    }
    for stage in &stages {
        if !stage.saw_source_schema || !stage.saw_target_schema {
            return Err(LoaderError::Structure {
                line: stage.line,
                message: format!(
                    "stage `{}` needs both a `source schema:` and a `target schema:` section",
                    stage.name
                ),
            });
        }
    }
    for pair in stages.windows(2) {
        check_stage_compatibility(
            &pair[0].name,
            &pair[0].target_schema,
            &pair[1].name,
            &pair[1].source_schema,
        )
        .map_err(|source| LoaderError::Dependency {
            line: pair[1].line,
            source,
        })?;
    }

    let mut built: Vec<PipelineStage> = Vec::with_capacity(stages.len());
    for stage in &stages {
        let mut mapping =
            SchemaMapping::new(stage.source_schema.clone(), stage.target_schema.clone());
        for (line, text) in &stage.dep_lines {
            let dep = parse_dependency(&stage.source_schema, &stage.target_schema, &mut pool, text)
                .map_err(|source| LoaderError::Dependency {
                    line: *line,
                    source,
                })?;
            mapping
                .add_dependency(dep)
                .map_err(|source| LoaderError::Dependency {
                    line: *line,
                    source,
                })?;
        }
        built.push(PipelineStage {
            name: stage.name.clone(),
            mapping,
        });
    }
    let pipeline = Pipeline::new(built, core_mode).map_err(|e| LoaderError::Structure {
        line: stages[0].line,
        message: e.to_string(),
    })?;

    let first_schema = &stages[0].source_schema;
    let mut source = Instance::new(first_schema);
    for (line, text) in source_rows {
        insert_row(&mut source, first_schema, &mut pool, &text, line)?;
    }

    Ok(LoadedPipeline {
        pool,
        pipeline,
        source,
    })
}

/// Dependency-section continuation logic, shared by the flat and pipeline
/// loaders: a line continues the previous one when it starts with a
/// connective or when the previous line is not yet a complete implication.
fn push_dep_line(dep_lines: &mut Vec<(usize, String)>, line: String, line_no: usize) {
    let starts_continuation = line.starts_with("->")
        || line.starts_with('→')
        || line.starts_with('&')
        || line.starts_with('∧');
    let prev_incomplete = dep_lines.last().is_some_and(|(_, prev): &(usize, String)| {
        let no_arrow = !prev.contains("->") && !prev.contains('→');
        no_arrow
            || prev.trim_end().ends_with('&')
            || prev.trim_end().ends_with('∧')
            || prev.trim_end().ends_with("->")
            || prev.trim_end().ends_with('→')
            || prev.trim_end().ends_with(',')
    });
    match dep_lines.last_mut() {
        Some((_, prev)) if starts_continuation || prev_incomplete => {
            prev.push(' ');
            prev.push_str(&line);
        }
        _ => dep_lines.push((line_no, line)),
    }
}

/// Parse an indentation-nested schema section:
///
/// ```text
/// Conference(name, acronym)
///   Edition(year, location)
///     Paper(title, pages)
/// ```
fn parse_nested_schema(lines: &[(usize, usize, String)]) -> Result<NestedSchema, LoaderError> {
    let mut schema = NestedSchema::new();
    // Stack of (indent, type id).
    let mut stack: Vec<(usize, routes_nested::NodeTypeId)> = Vec::new();
    for (line_no, indent, line) in lines {
        let (name, inner) = split_call(line).ok_or_else(|| LoaderError::Structure {
            line: *line_no,
            message: format!("expected `Record(attr, ...)`, found `{line}`"),
        })?;
        let attrs: Vec<&str> = if inner.trim().is_empty() {
            Vec::new()
        } else {
            inner.split(',').map(str::trim).collect()
        };
        if attrs.iter().any(|a| a.is_empty()) {
            return Err(LoaderError::Structure {
                line: *line_no,
                message: "empty attribute name".into(),
            });
        }
        if schema.type_by_name(name).is_some() {
            return Err(LoaderError::Structure {
                line: *line_no,
                message: format!("duplicate record type `{name}`"),
            });
        }
        while stack.last().is_some_and(|&(i, _)| i >= *indent) {
            stack.pop();
        }
        let ty = match stack.last() {
            Some(&(_, parent)) => schema.add_child(parent, name, &attrs),
            None => schema.add_root(name, &attrs),
        };
        stack.push((*indent, ty));
    }
    Ok(schema)
}

/// Merge a nested schema's relational encoding into a flat schema.
fn merge_encoded_schema(nested: &NestedSchema, flat: &mut Schema) -> Result<(), LoaderError> {
    let encoded = encode_schema(nested);
    for (_, rel) in encoded.schema.iter() {
        let attrs: Vec<&str> = rel.attrs().iter().map(String::as_str).collect();
        flat.add_relation(routes_model::Relation::new(rel.name(), &attrs))
            .map_err(|e| LoaderError::Structure {
                line: 0,
                message: format!("xml schema conflicts with flat schema: {e}"),
            })?;
    }
    Ok(())
}

/// Parse an indentation-nested data section into a tree.
fn parse_nested_data(
    schema: &NestedSchema,
    pool: &mut ValuePool,
    lines: &[(usize, usize, String)],
) -> Result<NestedInstance, LoaderError> {
    let mut tree = NestedInstance::new();
    let mut stack: Vec<(usize, routes_nested::NodeId)> = Vec::new();
    for (line_no, indent, line) in lines {
        let (name, inner) = split_call(line).ok_or_else(|| LoaderError::Data {
            line: *line_no,
            message: format!("expected `Record(v, ...)`, found `{line}`"),
        })?;
        let ty = schema.type_by_name(name).ok_or_else(|| LoaderError::Data {
            line: *line_no,
            message: format!("unknown record type `{name}`"),
        })?;
        let values = if inner.trim().is_empty() {
            Vec::new()
        } else {
            split_values(inner)
                .into_iter()
                .map(|v| parse_value(pool, v.trim(), *line_no))
                .collect::<Result<Vec<Value>, LoaderError>>()?
        };
        if values.len() != schema.node_type(ty).attrs().len() {
            return Err(LoaderError::Data {
                line: *line_no,
                message: format!(
                    "record `{name}` has {} attribute(s), found {} value(s)",
                    schema.node_type(ty).attrs().len(),
                    values.len()
                ),
            });
        }
        while stack.last().is_some_and(|&(i, _)| i >= *indent) {
            stack.pop();
        }
        let node = match (stack.last(), schema.node_type(ty).parent()) {
            (Some(&(_, parent)), Some(expected)) if tree.node(parent).ty == expected => {
                tree.add_child(schema, parent, ty, &values)
            }
            (None, None) => tree.add_root(schema, ty, &values),
            _ => {
                return Err(LoaderError::Data {
                    line: *line_no,
                    message: format!("record `{name}` is nested under the wrong parent type"),
                })
            }
        };
        stack.push((*indent, node));
    }
    Ok(tree)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match (in_quote, c) {
            (Some(q), c) if c == q => in_quote = None,
            (None, '\'') | (None, '"') => in_quote = Some(c),
            (None, '#') => return &line[..i],
            _ => {}
        }
    }
    line
}

fn section_header(line: &str) -> Option<Section> {
    let lowered = line.to_ascii_lowercase();
    match lowered.trim_end_matches(':') {
        "source schema" if lowered.ends_with(':') => Some(Section::SourceSchema),
        "target schema" if lowered.ends_with(':') => Some(Section::TargetSchema),
        "source xml schema" if lowered.ends_with(':') => Some(Section::SourceXmlSchema),
        "target xml schema" if lowered.ends_with(':') => Some(Section::TargetXmlSchema),
        "dependencies" if lowered.ends_with(':') => Some(Section::Dependencies),
        "source data" if lowered.ends_with(':') => Some(Section::SourceData),
        "source xml data" if lowered.ends_with(':') => Some(Section::SourceXmlData),
        "target data" if lowered.ends_with(':') => Some(Section::TargetData),
        _ => None,
    }
}

/// `Name(attr, attr, ...)`.
fn add_relation(schema: &mut Schema, line: &str, line_no: usize) -> Result<(), LoaderError> {
    let (name, inner) = split_call(line).ok_or_else(|| LoaderError::Structure {
        line: line_no,
        message: format!("expected `Relation(attr, ...)`, found `{line}`"),
    })?;
    let attrs: Vec<&str> = inner.split(',').map(str::trim).collect();
    if attrs.iter().any(|a| a.is_empty()) {
        return Err(LoaderError::Structure {
            line: line_no,
            message: "empty attribute name".into(),
        });
    }
    schema
        .add_relation(routes_model::Relation::new(name, &attrs))
        .map_err(|e| LoaderError::Structure {
            line: line_no,
            message: e.to_string(),
        })?;
    Ok(())
}

/// `Name(value, value, ...)` — values per the data syntax.
fn insert_row(
    inst: &mut Instance,
    schema: &Schema,
    pool: &mut ValuePool,
    line: &str,
    line_no: usize,
) -> Result<(), LoaderError> {
    let (name, inner) = split_call(line).ok_or_else(|| LoaderError::Data {
        line: line_no,
        message: format!("expected `Relation(v, ...)`, found `{line}`"),
    })?;
    let rel = schema.rel_id(name).ok_or_else(|| LoaderError::Data {
        line: line_no,
        message: format!("unknown relation `{name}`"),
    })?;
    let values = split_values(inner)
        .into_iter()
        .map(|v| parse_value(pool, v.trim(), line_no))
        .collect::<Result<Vec<Value>, LoaderError>>()?;
    inst.insert(rel, &values)
        .map(|_| ())
        .map_err(|e: ModelError| LoaderError::Data {
            line: line_no,
            message: e.to_string(),
        })
}

/// Split `Name( inner )`, tolerating nothing after the closing paren.
fn split_call(line: &str) -> Option<(&str, &str)> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    if close < open || !line[close + 1..].trim().is_empty() {
        return None;
    }
    let name = line[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some((name, &line[open + 1..close]))
}

/// Split on commas outside quotes.
fn split_values(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_quote: Option<char> = None;
    for (i, c) in inner.char_indices() {
        match (in_quote, c) {
            (Some(q), c) if c == q => in_quote = None,
            (None, '\'') | (None, '"') => in_quote = Some(c),
            (None, ',') => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&inner[start..]);
    out
}

fn parse_value(pool: &mut ValuePool, token: &str, line_no: usize) -> Result<Value, LoaderError> {
    if token.is_empty() {
        return Err(LoaderError::Data {
            line: line_no,
            message: "empty value".into(),
        });
    }
    if let Ok(n) = token.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    let bytes: Vec<char> = token.chars().collect();
    if bytes.len() >= 2
        && (bytes[0] == '\'' || bytes[0] == '"')
        && bytes[bytes.len() - 1] == bytes[0]
    {
        let inner: String = bytes[1..bytes.len() - 1].iter().collect();
        return Ok(pool.str(&inner));
    }
    if bytes[0].is_alphabetic() || bytes[0] == '_' {
        // Bare identifier: a labeled null (Figure 2's N1, M1, A1 ...).
        return Ok(pool.named_null(token));
    }
    Err(LoaderError::Data {
        line: line_no,
        message: format!("cannot parse value `{token}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = r#"
# comment line
source schema:
  S(a, b)
target schema:
  T(a, b)
dependencies:
  m1: S(x, y) -> exists Z: T(x, Z)
source data:
  S(1, 'hello')   # trailing comment
  S(2, 'a#b')
target data:
  T(1, N1)
  T(2, N2)
"#;

    #[test]
    fn loads_a_full_scenario() {
        let loaded = load_scenario_str(SCENARIO).unwrap();
        assert_eq!(loaded.mapping.st_tgds().len(), 1);
        assert_eq!(loaded.source.total_tuples(), 2);
        let target = loaded.target.expect("target section present");
        assert_eq!(target.total_tuples(), 2);
        // Bare identifiers in data are labeled nulls.
        let t = loaded.mapping.target().rel_id("T").unwrap();
        let row = target.tuple(routes_model::TupleId { rel: t, row: 0 });
        assert!(row[1].is_null());
        // Quoted '#' is not a comment.
        let s = loaded.mapping.source().rel_id("S").unwrap();
        let row = loaded
            .source
            .tuple(routes_model::TupleId { rel: s, row: 1 });
        assert_eq!(loaded.pool.value_to_string(row[1]), "a#b");
    }

    #[test]
    fn missing_target_section_means_chase() {
        let text = "source schema:\n S(a)\ntarget schema:\n T(a)\ndependencies:\n m: S(x) -> T(x)\nsource data:\n S(1)\n";
        let loaded = load_scenario_str(text).unwrap();
        assert!(loaded.target.is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad_dep =
            "source schema:\n S(a)\ntarget schema:\n T(a)\ndependencies:\n m: Nope(x) -> T(x)\n";
        let err = load_scenario_str(bad_dep).unwrap_err();
        assert!(
            matches!(err, LoaderError::Dependency { line: 6, .. }),
            "{err}"
        );

        let bad_row = "source schema:\n S(a)\ntarget schema:\n T(a)\nsource data:\n S(1, 2)\n";
        let err = load_scenario_str(bad_row).unwrap_err();
        assert!(matches!(err, LoaderError::Data { line: 6, .. }), "{err}");

        let stray = "S(a)\n";
        let err = load_scenario_str(stray).unwrap_err();
        assert!(matches!(err, LoaderError::Structure { line: 1, .. }));
    }

    #[test]
    fn egds_and_target_tgds_load() {
        let text = "source schema:\n S(a)\ntarget schema:\n T(a, b)\n U(a)\ndependencies:\n \
                    m1: S(x) -> exists Y: T(x, Y)\n m2: T(x, y) -> U(x)\n \
                    k: T(x, y) & T(x, z) -> y = z\nsource data:\n S(1)\n";
        let loaded = load_scenario_str(text).unwrap();
        assert_eq!(loaded.mapping.st_tgds().len(), 1);
        assert_eq!(loaded.mapping.target_tgds().len(), 1);
        assert_eq!(loaded.mapping.egds().len(), 1);
    }

    const PIPELINE: &str = r#"
# two-hop pipeline from the module docs
pipeline:
  core: on
stage clean:
  source schema:
    S(a, b)
  target schema:
    T(a, b)
  dependencies:
    m1: S(x, y) -> T(x, y)
stage publish:
  source schema:
    T(a, b)
  target schema:
    U(a)
  dependencies:
    m2: T(x, y) -> U(x)
source data:
  S(1, 2)
  S(3, 4)
"#;

    #[test]
    fn pipeline_scenarios_are_detected() {
        assert!(is_pipeline_scenario(PIPELINE));
        assert!(is_pipeline_scenario("stage one:\n"));
        assert!(is_pipeline_scenario("pipeline:\n  core: off\n"));
        // Flat scenarios are not pipelines, even with suggestive content.
        assert!(!is_pipeline_scenario(SCENARIO));
        assert!(!is_pipeline_scenario("source data:\n Stage(1)\n"));
    }

    #[test]
    fn pipeline_round_trips() {
        let loaded = load_pipeline_str(PIPELINE).unwrap();
        assert_eq!(loaded.pipeline.hops(), 2);
        assert!(loaded.pipeline.core_mode());
        assert_eq!(loaded.pipeline.stages()[0].name, "clean");
        assert_eq!(loaded.pipeline.stages()[1].name, "publish");
        assert_eq!(loaded.source.total_tuples(), 2);
    }

    #[test]
    fn pipeline_core_defaults_off() {
        let text = PIPELINE.replace("pipeline:\n  core: on\n", "");
        let loaded = load_pipeline_str(&text).unwrap();
        assert!(!loaded.pipeline.core_mode());
        let explicit = PIPELINE.replace("core: on", "core: off");
        assert!(!load_pipeline_str(&explicit).unwrap().pipeline.core_mode());
    }

    #[test]
    fn malformed_stage_header_is_a_typed_error() {
        let text = PIPELINE.replace("stage publish:", "stage pub lish:");
        let err = load_pipeline_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                LoaderError::Dependency {
                    source: MappingError::MalformedStageHeader { .. },
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn duplicate_stage_name_is_a_typed_error() {
        let text = PIPELINE.replace("stage publish:", "stage clean:");
        let err = load_pipeline_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                LoaderError::Dependency {
                    line: 12,
                    source: MappingError::DuplicateStage { .. },
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn stage_arity_mismatch_is_a_typed_error() {
        let text = PIPELINE.replace(
            "    T(a, b)\n  target schema:\n    U(a)",
            "    T(a)\n  target schema:\n    U(a)",
        );
        let err = load_pipeline_str(&text).unwrap_err();
        match err {
            LoaderError::Dependency {
                line,
                source:
                    MappingError::StageSchemaMismatch {
                        stage,
                        previous,
                        relation,
                        ..
                    },
            } => {
                assert_eq!(line, 12);
                assert_eq!(stage, "publish");
                assert_eq!(previous, "clean");
                assert_eq!(relation, "T");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn pipeline_rejects_flat_only_sections() {
        let text = format!("{PIPELINE}target data:\n  U(1)\n");
        let err = load_pipeline_str(&text).unwrap_err();
        assert!(matches!(err, LoaderError::Structure { .. }), "{err}");

        let loose = "source schema:\n  S(a)\nstage one:\n  target schema:\n    T(a)\n";
        let err = load_pipeline_str(loose).unwrap_err();
        assert!(
            matches!(err, LoaderError::Structure { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn pipeline_needs_stages_and_complete_schemas() {
        let err = load_pipeline_str("pipeline:\n  core: on\n").unwrap_err();
        assert!(matches!(err, LoaderError::Structure { .. }));

        let incomplete = "stage one:\n  source schema:\n    S(a)\n";
        let err = load_pipeline_str(incomplete).unwrap_err();
        assert!(
            matches!(err, LoaderError::Structure { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn pipeline_rejects_unknown_options() {
        let text = PIPELINE.replace("core: on", "shiny: on");
        let err = load_pipeline_str(&text).unwrap_err();
        assert!(matches!(err, LoaderError::Structure { .. }), "{err}");
        let text = PIPELINE.replace("core: on", "core: maybe");
        assert!(load_pipeline_str(&text).is_err());
    }

    #[test]
    fn pipeline_dependency_continuations_work() {
        let text = PIPELINE.replace("    m2: T(x, y) -> U(x)", "    m2: T(x, y)\n      -> U(x)");
        let loaded = load_pipeline_str(&text).unwrap();
        assert_eq!(loaded.pipeline.stages()[1].mapping.st_tgds().len(), 1);
    }
}
