//! The interactive command loop.
//!
//! Commands take tuple labels of the form `s<k>` (source) and `t<k>`
//! (target) assigned in listing order, mirroring how the paper labels
//! Figure 2 (`s1..s6`, `t1..t10`).

use std::fmt::Write as _;

use crate::prepare::prepare_scenario_with;
use routes_chase::{chase, ChaseOptions, EgdLog};
use routes_core::{
    alternative_routes, compute_all_routes, compute_one_route, compute_source_routes,
    enumerate_routes, is_minimal, minimize_route, route_to_string, step_to_string, stratify,
    DebugSession, RouteEnv,
};
use routes_mapping::{egd_to_string, tgd_to_string, SchemaMapping};
use routes_model::{tuple_to_string, Instance, TupleId, Value, ValuePool};

use crate::loader::LoadedScenario;

/// The debugger state.
pub struct Repl {
    pool: ValuePool,
    mapping: SchemaMapping,
    source: Instance,
    target: Instance,
    egd_log: EgdLog,
    nested_target: Option<routes_nested::NestedSchema>,
    source_labels: Vec<TupleId>,
    target_labels: Vec<TupleId>,
}

impl Repl {
    /// Build a session from a loaded scenario, chasing a solution when the
    /// file did not supply one. The chase fans out over a worker pool sized
    /// from the environment (`ROUTES_THREADS` or the available parallelism).
    pub fn new(loaded: LoadedScenario) -> Result<Self, String> {
        let prepared = prepare_scenario_with(
            loaded,
            ChaseOptions::fresh(),
            &routes_pool::Pool::from_env(),
        )
        .map_err(|e| format!("chase failed: {e}"))?;
        if !prepared.weakly_acyclic {
            eprintln!(
                "warning: the target tgds are not weakly acyclic — the chase may not terminate"
            );
        }
        let mut repl = Repl {
            pool: prepared.pool,
            mapping: prepared.mapping,
            source: prepared.source,
            target: prepared.target,
            egd_log: prepared.egd_log,
            nested_target: prepared.nested_target,
            source_labels: Vec::new(),
            target_labels: Vec::new(),
        };
        repl.relabel();
        Ok(repl)
    }

    fn relabel(&mut self) {
        self.source_labels = self.source.all_rows().collect();
        self.target_labels = self.target.all_rows().collect();
    }

    fn env(&self) -> RouteEnv<'_> {
        RouteEnv::new(&self.mapping, &self.source, &self.target)
    }

    fn resolve_target(&self, label: &str) -> Result<TupleId, String> {
        let idx: usize = label
            .strip_prefix('t')
            .and_then(|k| k.parse().ok())
            .ok_or_else(|| format!("expected a target label like t3, found `{label}`"))?;
        self.target_labels
            .get(idx.wrapping_sub(1))
            .copied()
            .ok_or_else(|| format!("no target tuple `{label}` (see `target`)"))
    }

    fn resolve_source(&self, label: &str) -> Result<TupleId, String> {
        let idx: usize = label
            .strip_prefix('s')
            .and_then(|k| k.parse().ok())
            .ok_or_else(|| format!("expected a source label like s2, found `{label}`"))?;
        self.source_labels
            .get(idx.wrapping_sub(1))
            .copied()
            .ok_or_else(|| format!("no source tuple `{label}` (see `source`)"))
    }

    fn resolve_targets(&self, labels: &[&str]) -> Result<Vec<TupleId>, String> {
        labels.iter().map(|l| self.resolve_target(l)).collect()
    }

    fn target_label_of(&self, id: TupleId) -> String {
        self.target_labels
            .iter()
            .position(|&t| t == id)
            .map_or_else(|| "t?".into(), |k| format!("t{}", k + 1))
    }

    /// Execute one command, returning its output (or a user-facing error).
    pub fn execute(&mut self, command: &str) -> Result<String, String> {
        let parts: Vec<&str> = command.split_whitespace().collect();
        let Some(&verb) = parts.first() else {
            return Ok(String::new());
        };
        match verb {
            "help" => Ok(HELP.to_owned()),
            "schema" => Ok(self.show_schemas()),
            "mapping" => Ok(self.show_mapping()),
            "source" => Ok(self.list(true, parts.get(1).copied())),
            "target" => Ok(self.list(false, parts.get(1).copied())),
            "probe" => {
                let tuples = self.resolve_targets(&parts[1..])?;
                if tuples.is_empty() {
                    return Err("probe needs at least one target label".into());
                }
                let env = self.env();
                match compute_one_route(env, &tuples) {
                    Ok(route) => Ok(route_to_string(&self.pool, &env, &route)),
                    Err(e) => {
                        let labels: Vec<String> = e
                            .no_route
                            .iter()
                            .map(|&t| self.target_label_of(t))
                            .collect();
                        Ok(format!("no route exists for {}\n", labels.join(", ")))
                    }
                }
            }
            "routes" => {
                let tuple = self.resolve_target(parts.get(1).ok_or("routes needs a label")?)?;
                let limit: usize = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
                let env = self.env();
                let forest = compute_all_routes(env, &[tuple]);
                let routes = enumerate_routes(env, &forest, &[tuple], limit);
                if routes.is_empty() {
                    return Ok("no routes\n".into());
                }
                let mut out = match routes_core::count_routes(&forest, &[tuple]) {
                    Some(total) => format!("{total} route(s) in total\n"),
                    None => format!(
                        "showing {} route(s); the forest is cyclic, total count not closed-form\n",
                        routes.len()
                    ),
                };
                for (k, route) in routes.iter().enumerate() {
                    let min = if is_minimal(&env, route, &[tuple]) {
                        " (minimal)"
                    } else {
                        ""
                    };
                    let _ = writeln!(out, "route #{}{min}:", k + 1);
                    out.push_str(&route_to_string(&self.pool, &env, route));
                }
                Ok(out)
            }
            "forest" => {
                let tuples = self.resolve_targets(&parts[1..])?;
                let env = self.env();
                let forest = compute_all_routes(env, &tuples);
                let mut out = routes_core::display::forest_to_string(&self.pool, &env, &forest);
                let _ = writeln!(
                    out,
                    "({} nodes, {} branches)",
                    forest.num_nodes(),
                    forest.num_branches()
                );
                Ok(out)
            }
            "alt" => {
                let tuple = self.resolve_target(parts.get(1).ok_or("alt needs a label")?)?;
                let count: usize = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
                let env = self.env();
                let routes = alternative_routes(env, &[tuple], count);
                let mut out = String::new();
                for (k, route) in routes.iter().enumerate() {
                    let _ = writeln!(out, "route #{}:", k + 1);
                    out.push_str(&route_to_string(&self.pool, &env, route));
                }
                if routes.is_empty() {
                    out.push_str("no routes\n");
                }
                Ok(out)
            }
            "minimal" => {
                let tuple = self.resolve_target(parts.get(1).ok_or("minimal needs a label")?)?;
                let env = self.env();
                let route = compute_one_route(env, &[tuple]).map_err(|e| e.to_string())?;
                let minimal = minimize_route(&env, &route, &[tuple]);
                Ok(route_to_string(&self.pool, &env, &minimal))
            }
            "strat" => {
                let tuple = self.resolve_target(parts.get(1).ok_or("strat needs a label")?)?;
                let env = self.env();
                let route = compute_one_route(env, &[tuple]).map_err(|e| e.to_string())?;
                let strat = stratify(&env, &route);
                let mut out = format!("rank {}\n", strat.rank());
                for (k, block) in strat.blocks().iter().enumerate() {
                    let _ = writeln!(out, "rank {}:", k + 1);
                    for step in block {
                        let _ = writeln!(out, "  {}", step_to_string(&self.pool, &env, step));
                    }
                }
                Ok(out)
            }
            "trace" => {
                let tuple = self.resolve_target(parts.get(1).ok_or("trace needs a label")?)?;
                let env = self.env();
                let route = compute_one_route(env, &[tuple]).map_err(|e| e.to_string())?;
                let mut session = DebugSession::new(env, route);
                if let Some(&bp) = parts.get(3) {
                    if parts.get(2) == Some(&"break") && !session.add_breakpoint_by_name(bp) {
                        return Err(format!("unknown tgd `{bp}`"));
                    }
                }
                let mut out = String::new();
                while let Some(event) = session.step() {
                    let _ = writeln!(
                        out,
                        "step {}: {}{}",
                        event.index + 1,
                        step_to_string(&self.pool, &env, &event.step),
                        if event.hit_breakpoint {
                            "   *** breakpoint"
                        } else {
                            ""
                        }
                    );
                }
                let _ = writeln!(out, "watch: {} tuple(s) produced", session.watch().len());
                Ok(out)
            }
            "exports" => {
                let tuple = self.resolve_source(parts.get(1).ok_or("exports needs a label")?)?;
                let depth: usize = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
                let env = self.env();
                let forward = compute_source_routes(env, &[tuple], depth);
                let mut names: Vec<&str> = forward
                    .exporting_tgds()
                    .into_iter()
                    .map(|id| self.mapping.tgd(id).name())
                    .collect();
                names.sort();
                let mut out = format!("exported by: {}\n", names.join(", "));
                let mut reached: Vec<String> = forward
                    .reached_targets()
                    .into_iter()
                    .map(|t| self.target_label_of(t))
                    .collect();
                reached.sort();
                let _ = writeln!(
                    out,
                    "reaches (within {depth} steps): {}",
                    reached.join(", ")
                );
                Ok(out)
            }
            "history" => {
                let token = parts.get(1).ok_or("history needs a value")?;
                let value = self.parse_value_token(token)?;
                Ok(routes_chase::history_to_string(
                    &self.pool,
                    &self.egd_log,
                    value,
                ))
            }
            "why" => {
                let tuple = self.resolve_target(parts.get(1).ok_or("why needs a label")?)?;
                let env = self.env();
                let (result, trace) = routes_core::compute_one_route_traced(
                    env,
                    &[tuple],
                    &routes_core::OneRouteOptions::default(),
                );
                let mut out = trace.to_text(&self.pool, &env);
                match result {
                    Ok(route) => {
                        let _ = writeln!(out, "=> route with {} step(s)", route.len());
                    }
                    Err(_) => out.push_str("=> no route\n"),
                }
                Ok(out)
            }
            "save" => {
                let path = parts.get(1).ok_or("save needs a file path")?;
                let text = self.to_scenario_text();
                std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
                Ok(format!("wrote {} byte(s) to {path}\n", text.len()))
            }
            "plan" => {
                let name = parts.get(1).ok_or("plan needs a tgd name")?;
                let id = self
                    .mapping
                    .tgd_by_name(name)
                    .ok_or_else(|| format!("unknown tgd `{name}`"))?;
                let tgd = self.mapping.tgd(id);
                let env = self.env();
                let lhs_instance = env.lhs_instance(id);
                let init = routes_query::Bindings::new(tgd.var_count());
                let lhs_schema = match id.kind() {
                    routes_mapping::TgdKind::SourceToTarget => self.mapping.source(),
                    routes_mapping::TgdKind::Target => self.mapping.target(),
                };
                let mut out = format!("LHS evaluation plan for {name} (no anchor bindings):\n");
                out.push_str(&routes_query::plan_to_string(
                    lhs_instance,
                    tgd.lhs(),
                    &init,
                    |rel| lhs_schema.relation(rel).name().to_owned(),
                    |v| tgd.var_name(v).to_owned(),
                ));
                Ok(out)
            }
            "xml" => {
                let nested = self
                    .nested_target
                    .as_ref()
                    .ok_or("the target schema is not hierarchical")?;
                let enc = routes_nested::encode_schema(nested);
                let tree = routes_nested::decode_instance(nested, &enc, &self.target);
                Ok(routes_nested::to_xmlish(nested, &tree, &self.pool))
            }
            "dot" => {
                let tuples = self.resolve_targets(&parts[1..])?;
                if tuples.is_empty() {
                    return Err("dot needs at least one target label".into());
                }
                let env = self.env();
                let forest = compute_all_routes(env, &tuples);
                Ok(routes_core::forest_to_dot(&self.pool, &env, &forest))
            }
            "impact" => {
                let path = parts
                    .get(1)
                    .ok_or("impact needs a scenario file with the edited mapping")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                self.impact_from_text(&text)
            }
            "chase" => {
                let result = chase(
                    &self.mapping,
                    &self.source,
                    &mut self.pool,
                    ChaseOptions::fresh(),
                )
                .map_err(|e| format!("chase failed: {e}"))?;
                self.target = result.target;
                self.egd_log = result.egd_log;
                self.relabel();
                Ok(format!(
                    "chased: {} target tuple(s), {} round(s), {} egd merge(s)\n",
                    self.target.total_tuples(),
                    result.rounds,
                    self.egd_log.len()
                ))
            }
            other => Err(format!("unknown command `{other}` (try `help`)")),
        }
    }

    /// Compare the current mapping against an edited one (given as scenario
    /// text; only its `dependencies:` section matters — the schemas must
    /// match) by chasing both and diffing the solutions. This is the
    /// paper's Scenario 1 future-work feature ("demonstrate how the
    /// modification of m1 to m1' affects tuples in J").
    pub fn impact_from_text(&mut self, text: &str) -> Result<String, String> {
        let edited = crate::loader::load_scenario_str(text).map_err(|e| e.to_string())?;
        if edited.mapping.target().len() != self.mapping.target().len() {
            return Err("edited scenario has a different target schema".into());
        }
        let report = routes_chase::mapping_impact(
            &self.mapping,
            &edited.mapping,
            &self.source,
            &mut self.pool,
            ChaseOptions::fresh(),
        )
        .map_err(|e| format!("chase failed: {e}"))?;
        Ok(routes_chase::impact_to_string(
            &self.pool,
            self.mapping.target(),
            &report,
            20,
        ))
    }

    /// Serialize the session back into scenario-file text (flat sections
    /// only — hierarchical schemas round-trip through their encodings). The
    /// current target instance is written as explicit `target data`, so a
    /// reloaded session sees the same solution.
    pub fn to_scenario_text(&self) -> String {
        let mut out = String::new();
        let render_schema = |out: &mut String, schema: &routes_model::Schema| {
            for (_, rel) in schema.iter() {
                let _ = writeln!(out, "  {}({})", rel.name(), rel.attrs().join(", "));
            }
        };
        out.push_str("source schema:\n");
        render_schema(&mut out, self.mapping.source());
        out.push_str("target schema:\n");
        render_schema(&mut out, self.mapping.target());
        out.push_str("dependencies:\n");
        for tgd in self.mapping.st_tgds() {
            let _ = writeln!(
                out,
                "  {}",
                tgd_to_string(
                    &self.pool,
                    self.mapping.source(),
                    self.mapping.target(),
                    tgd
                )
            );
        }
        for tgd in self.mapping.target_tgds() {
            let _ = writeln!(
                out,
                "  {}",
                tgd_to_string(
                    &self.pool,
                    self.mapping.target(),
                    self.mapping.target(),
                    tgd
                )
            );
        }
        for egd in self.mapping.egds() {
            let _ = writeln!(
                out,
                "  {}",
                egd_to_string(&self.pool, self.mapping.target(), egd)
            );
        }
        let render_data = |out: &mut String,
                           schema: &routes_model::Schema,
                           inst: &Instance,
                           pool: &ValuePool| {
            for (rel_id, rel) in schema.iter() {
                for (_, values) in inst.rel_tuples(rel_id) {
                    let rendered: Vec<String> = values
                        .iter()
                        .map(|v| match v {
                            Value::Int(n) => n.to_string(),
                            Value::Str(s) => format!("'{}'", pool.resolve(*s).replace('\'', " ")),
                            Value::Null(n) => pool.null_label(*n).to_owned(),
                        })
                        .collect();
                    let _ = writeln!(out, "  {}({})", rel.name(), rendered.join(", "));
                }
            }
        };
        out.push_str("source data:\n");
        render_data(&mut out, self.mapping.source(), &self.source, &self.pool);
        out.push_str("target data:\n");
        render_data(&mut out, self.mapping.target(), &self.target, &self.pool);
        out
    }

    fn parse_value_token(&self, token: &str) -> Result<Value, String> {
        if let Ok(n) = token.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Some(sym) = self.pool.lookup(token) {
            return Ok(Value::Str(sym));
        }
        // Null labels are registered in the pool; search them.
        for k in 0..self.pool.num_nulls() as u32 {
            if self.pool.null_label(routes_model::NullId(k)) == token {
                return Ok(Value::Null(routes_model::NullId(k)));
            }
        }
        Err(format!("unknown value `{token}`"))
    }

    fn show_schemas(&self) -> String {
        let mut out = String::from("source schema:\n");
        for (_, rel) in self.mapping.source().iter() {
            let _ = writeln!(out, "  {}({})", rel.name(), rel.attrs().join(", "));
        }
        out.push_str("target schema:\n");
        for (_, rel) in self.mapping.target().iter() {
            let _ = writeln!(out, "  {}({})", rel.name(), rel.attrs().join(", "));
        }
        out
    }

    fn show_mapping(&self) -> String {
        let mut out = String::new();
        for tgd in self.mapping.st_tgds() {
            let _ = writeln!(
                out,
                "  {}",
                tgd_to_string(
                    &self.pool,
                    self.mapping.source(),
                    self.mapping.target(),
                    tgd
                )
            );
        }
        for tgd in self.mapping.target_tgds() {
            let _ = writeln!(
                out,
                "  {}",
                tgd_to_string(
                    &self.pool,
                    self.mapping.target(),
                    self.mapping.target(),
                    tgd
                )
            );
        }
        for egd in self.mapping.egds() {
            let _ = writeln!(
                out,
                "  {}",
                egd_to_string(&self.pool, self.mapping.target(), egd)
            );
        }
        out
    }

    fn list(&self, source_side: bool, rel_filter: Option<&str>) -> String {
        let (schema, inst, labels, prefix) = if source_side {
            (
                self.mapping.source(),
                &self.source,
                &self.source_labels,
                's',
            )
        } else {
            (
                self.mapping.target(),
                &self.target,
                &self.target_labels,
                't',
            )
        };
        let filter = rel_filter.and_then(|name| schema.rel_id(name));
        let mut out = String::new();
        for (k, &id) in labels.iter().enumerate() {
            if let Some(rel) = filter {
                if id.rel != rel {
                    continue;
                }
            }
            let _ = writeln!(
                out,
                "  {prefix}{}: {}",
                k + 1,
                tuple_to_string(&self.pool, schema, inst, id)
            );
        }
        if out.is_empty() {
            out.push_str("  (none)\n");
        }
        out
    }
}

const HELP: &str = "commands:
  schema                     show both schemas
  mapping                    show the dependencies
  source [Rel]               list source tuples (labels s1, s2, ...)
  target [Rel]               list target tuples (labels t1, t2, ...)
  probe t<k> [t<k> ...]      one route for the selected tuples
  routes t<k> [limit]        all routes (NaivePrint, capped)
  forest t<k> [t<k> ...]     print the route forest
  alt t<k> [count]           alternative routes, one per witness
  minimal t<k>               a minimal route
  strat t<k>                 stratified interpretation of a route
  trace t<k> [break <tgd>]   single-step a route (optional breakpoint)
  why t<k>                   trace the *computation* of the route
  plan <tgd>                 EXPLAIN the tgd's LHS evaluation plan
  save <file>                write the session back out as a scenario file
  exports s<k> [depth]       which tgds export a source tuple, and where to
  history <value>            egd merge history of a value (after chase)
  xml                        render a hierarchical target as XML
  dot t<k> [t<k> ...]        route forest as Graphviz DOT
  impact <file>              diff the solution against an edited mapping
  chase                      (re)materialize the target with the chase
  help                       this text
  quit                       exit
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load_scenario_str;

    const TOY: &str = "source schema:\n S(a)\ntarget schema:\n T(a)\n U(a)\ndependencies:\n \
                       m1: S(x) -> T(x)\n m2: T(x) -> U(x)\nsource data:\n S(1)\n S(2)\n";

    fn repl() -> Repl {
        Repl::new(load_scenario_str(TOY).unwrap()).unwrap()
    }

    #[test]
    fn listing_and_probing() {
        let mut r = repl();
        let targets = r.execute("target").unwrap();
        assert!(targets.contains("t1: T(1)"));
        assert!(targets.contains("U(1)"));
        let filtered = r.execute("target U").unwrap();
        assert!(filtered.contains("U(") && !filtered.contains("T(1)"));

        // U(1) is t3 (T-tuples list first).
        let probe = r.execute("probe t3").unwrap();
        assert!(probe.contains("--m1-->"));
        assert!(probe.contains("--m2-->"));
    }

    #[test]
    fn routes_forest_strat_trace() {
        let mut r = repl();
        let routes = r.execute("routes t3").unwrap();
        assert!(routes.contains("route #1 (minimal):"));
        let dot = r.execute("dot t3").unwrap();
        assert!(dot.starts_with("digraph route_forest"));
        let forest = r.execute("forest t3").unwrap();
        assert!(forest.contains("[m2]") && forest.contains("(source)"));
        let strat = r.execute("strat t3").unwrap();
        assert!(strat.starts_with("rank 2"));
        let plan = r.execute("plan m2").unwrap();
        assert!(
            plan.contains("scan") || plan.contains("index probe"),
            "{plan}"
        );
        assert!(r.execute("plan nope").is_err());
        let why = r.execute("why t3").unwrap();
        assert!(why.contains("explore"));
        assert!(why.contains("=> route with"));
        let trace = r.execute("trace t3 break m2").unwrap();
        assert!(trace.contains("*** breakpoint"));
        assert!(trace.contains("watch: 2 tuple(s) produced"));
        let minimal = r.execute("minimal t1").unwrap();
        assert_eq!(minimal.lines().count(), 1);
    }

    #[test]
    fn exports_and_errors() {
        let mut r = repl();
        let exports = r.execute("exports s1").unwrap();
        assert!(exports.contains("exported by: m1"));
        assert!(exports.contains("t1"));
        assert!(r.execute("probe t99").is_err());
        assert!(r.execute("probe s1").is_err());
        assert!(r.execute("bogus").is_err());
        assert!(r.execute("help").unwrap().contains("probe"));
        assert!(r.execute("schema").unwrap().contains("source schema"));
        assert!(r.execute("mapping").unwrap().contains("m1:"));
    }

    #[test]
    fn explicit_target_with_orphan() {
        let text = "source schema:\n S(a)\ntarget schema:\n T(a)\ndependencies:\n \
                    m1: S(x) -> T(x)\nsource data:\n S(1)\ntarget data:\n T(1)\n T(99)\n";
        let mut r = Repl::new(load_scenario_str(text).unwrap()).unwrap();
        let out = r.execute("probe t2").unwrap();
        assert!(out.contains("no route exists for t2"));
        // Re-chasing replaces the hand-crafted target.
        let out = r.execute("chase").unwrap();
        assert!(out.contains("1 target tuple(s)"));
        assert!(r.execute("probe t2").is_err()); // t2 no longer exists
    }

    #[test]
    fn impact_of_an_edited_mapping() {
        let mut r = repl();
        // Edited mapping: m2 removed — all U tuples disappear.
        let edited = "source schema:\n S(a)\ntarget schema:\n T(a)\n U(a)\ndependencies:\n \
                      m1: S(x) -> T(x)\nsource data:\n";
        let out = r.impact_from_text(edited).unwrap();
        assert!(out.contains("2 removed"), "{out}");
        assert!(out.contains("- U(1)"));
        assert!(out.contains("- U(2)"));
        // Identical mapping: no-op.
        let same = "source schema:\n S(a)\ntarget schema:\n T(a)\n U(a)\ndependencies:\n \
                    m1: S(x) -> T(x)\n m2: T(x) -> U(x)\nsource data:\n";
        let out = r.impact_from_text(same).unwrap();
        assert!(out.contains("0 removed, 0 added"), "{out}");
    }

    #[test]
    fn egd_history_through_chase() {
        let text =
            "source schema:\n S(a, b)\n S2(a, b)\ntarget schema:\n T(a, b)\ndependencies:\n \
                    m1: S(x, y) -> exists Z: T(x, Z)\n m2: S2(x, y) -> T(x, y)\n \
                    k: T(x, y) & T(x, z) -> y = z\nsource data:\n S(1, 0)\n S2(1, 9)\n";
        let mut r = Repl::new(load_scenario_str(text).unwrap()).unwrap();
        let out = r.execute("history 9").unwrap();
        assert!(out.contains("egd k equated"), "{out}");
        let out = r.execute("history 12345").unwrap();
        assert!(out.contains("never touched"));
    }
}
