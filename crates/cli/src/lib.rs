//! `spider` — a command-line schema-mapping debugger in the spirit of the
//! paper's companion demo (Alexe, Chiticariu & Tan, *SPIDER: a Schema
//! mapPIng DEbuggeR*, VLDB 2006 demo).
//!
//! A *scenario file* declares the schemas, the dependencies (in the paper's
//! tgd/egd syntax), the source instance, and optionally a target instance
//! (otherwise the chase materializes one). The REPL then supports probing
//! tuples for one route, all routes, alternatives, stratification, forward
//! (source-side) routes, single-step tracing, egd history, and mapping-edit
//! impact analysis. Every command is line-oriented, so the debugger is
//! scriptable (`spider scenario.sdl -c "probe t5" -c quit`).

pub mod loader;
pub mod prepare;
pub mod repl;

pub use loader::{
    is_pipeline_scenario, load_pipeline_str, load_scenario_str, LoadedPipeline, LoadedScenario,
    LoaderError,
};
pub use prepare::{prepare_pipeline, prepare_scenario, prepare_scenario_with, PreparedScenario};
pub use repl::Repl;
