//! `spider` — interactive schema-mapping debugger.
//!
//! ```text
//! spider <scenario-file> [-c <command>]...
//! ```
//!
//! With `-c` flags the commands run in order and the program exits
//! (scriptable mode); otherwise an interactive prompt reads from stdin.

use std::io::{BufRead, Write};

use routes_cli::{load_scenario_str, Repl};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-c" | "--command" => match it.next() {
                Some(cmd) => commands.push(cmd),
                None => usage("-c requires a command"),
            },
            "-h" | "--help" => usage(""),
            other if file.is_none() => file = Some(other.to_owned()),
            other => usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(file) = file else {
        usage("a scenario file is required");
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            std::process::exit(1);
        }
    };
    let loaded = match load_scenario_str(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            std::process::exit(1);
        }
    };
    let had_target = loaded.target.is_some();
    let mut repl = match Repl::new(loaded) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if !had_target {
        println!("(no target data in scenario — materialized a solution with the chase)");
    }

    if !commands.is_empty() {
        for cmd in commands {
            if cmd.trim() == "quit" {
                break;
            }
            println!("spider> {cmd}");
            match repl.execute(&cmd) {
                Ok(out) => print!("{out}"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        return;
    }

    println!("spider — schema-mapping debugger (type `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("spider> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: {e}");
                break;
            }
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        if cmd == "quit" || cmd == "exit" {
            break;
        }
        match repl.execute(cmd) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: spider <scenario-file> [-c <command>]...");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
