//! Turning a parsed scenario into a debuggable `(I, J)` pair.
//!
//! Both front-ends — the `spider` REPL and the `spiderd` HTTP service —
//! need the same post-load step: materialize a solution with the chase when
//! the scenario file did not supply a `target data:` section, and keep the
//! chase's provenance (egd log, statistics) for later probing. This module
//! is that shared step.

use std::time::{Duration, Instant};

use routes_chase::{chase_with_pool, ChaseError, ChaseOptions, ChaseStats, EgdLog};
use routes_mapping::{is_weakly_acyclic, SchemaMapping};
use routes_model::{Instance, ValuePool};
use routes_pool::Pool;

use routes_pipeline::{chase_pipeline, PipelineError, PreparedPipeline};

use crate::loader::{LoadedPipeline, LoadedScenario};

/// A scenario ready for route debugging: mapping, source, and a concrete
/// solution `J` (supplied or chased), plus chase provenance. `Clone` lets
/// store benchmarks and tests stamp out many sessions from one prototype.
#[derive(Clone)]
pub struct PreparedScenario {
    /// The value pool (extended with any nulls the chase invented).
    pub pool: ValuePool,
    /// The mapping `M = (S, T, Σst ∪ Σt)`.
    pub mapping: SchemaMapping,
    /// The source instance `I`.
    pub source: Instance,
    /// The solution `J`.
    pub target: Instance,
    /// Egd merge provenance (empty when the file supplied `J`).
    pub egd_log: EgdLog,
    /// Statistics of the materializing chase; `None` when the file
    /// supplied `J` and no chase ran.
    pub chase_stats: Option<ChaseStats>,
    /// Target nesting structure, when the scenario used an xml schema.
    pub nested_target: Option<routes_nested::NestedSchema>,
    /// Whether `Σt` is weakly acyclic (front-ends warn when it is not).
    pub weakly_acyclic: bool,
    /// Wall time of the materializing chase; `None` when no chase ran.
    pub chase_wall: Option<Duration>,
}

/// Chase a solution if the scenario did not supply one, with the given
/// options (front-ends default to [`ChaseOptions::fresh`], the standard
/// chase, whose result is a universal solution). Runs sequentially; use
/// [`prepare_scenario_with`] to fan the chase out over a worker pool.
pub fn prepare_scenario(
    loaded: LoadedScenario,
    options: ChaseOptions,
) -> Result<PreparedScenario, ChaseError> {
    prepare_scenario_with(loaded, options, &Pool::sequential())
}

/// [`prepare_scenario`] with tgd premise evaluation fanned out over
/// `workers`; the produced solution is byte-identical to the sequential one
/// at any worker count (see [`routes_chase::chase_with_pool`]).
pub fn prepare_scenario_with(
    loaded: LoadedScenario,
    options: ChaseOptions,
    workers: &Pool,
) -> Result<PreparedScenario, ChaseError> {
    let LoadedScenario {
        mut pool,
        mapping,
        source,
        target,
        nested_source: _,
        nested_target,
    } = loaded;
    let (target, egd_log, chase_stats, chase_wall) = match target {
        Some(t) => (t, EgdLog::new(), None, None),
        None => {
            let start = Instant::now();
            let result = chase_with_pool(&mapping, &source, &mut pool, options, workers)?;
            let wall = start.elapsed();
            let stats = result.stats();
            (result.target, result.egd_log, Some(stats), Some(wall))
        }
    };
    let weakly_acyclic = is_weakly_acyclic(&mapping);
    Ok(PreparedScenario {
        pool,
        mapping,
        source,
        target,
        egd_log,
        chase_stats,
        nested_target,
        weakly_acyclic,
        chase_wall,
    })
}

/// Chase a pipeline scenario stage by stage and package its final hop as a
/// [`PreparedScenario`], so every single-mapping front-end feature (route
/// probes, forests, metrics) works on the last hop unchanged, while the
/// full [`PreparedPipeline`] remains available for stitched end-to-end
/// routes.
pub fn prepare_pipeline(
    loaded: LoadedPipeline,
    options: ChaseOptions,
    workers: &Pool,
) -> Result<(PreparedScenario, PreparedPipeline), PipelineError> {
    let LoadedPipeline {
        pool,
        pipeline,
        source,
    } = loaded;
    let prepared = chase_pipeline(pipeline, source, pool, options, workers)?;
    let last = prepared.final_stage();
    let mut stats = last.stats.clone();
    // Core mode shrinks the final instance after the chase ran; report the
    // surviving tuple count, matching what probes will see.
    stats.target_tuples = last.target.total_tuples();
    let scenario = PreparedScenario {
        pool: prepared.pool.clone(),
        mapping: prepared.pipeline.stages()[prepared.hops() - 1]
            .mapping
            .clone(),
        source: last.source.clone(),
        target: last.target.clone(),
        egd_log: last.egd_log.clone(),
        chase_stats: Some(stats),
        nested_target: None,
        weakly_acyclic: prepared.weakly_acyclic,
        chase_wall: Some(prepared.chase_wall),
    };
    Ok((scenario, prepared))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load_pipeline_str, load_scenario_str};

    const WITH_TARGET: &str = "\
source schema:
  S(a)
target schema:
  T(a)
dependencies:
  m: S(x) -> T(x)
source data:
  S(1)
target data:
  T(1)
";

    #[test]
    fn supplied_target_skips_the_chase() {
        let loaded = load_scenario_str(WITH_TARGET).unwrap();
        let prepared = prepare_scenario(loaded, ChaseOptions::fresh()).unwrap();
        assert!(prepared.chase_stats.is_none());
        assert!(prepared.egd_log.is_empty());
        assert_eq!(prepared.target.total_tuples(), 1);
        assert!(prepared.weakly_acyclic);
    }

    #[test]
    fn missing_target_is_chased_with_stats() {
        let text = WITH_TARGET.split("target data:").next().unwrap();
        let loaded = load_scenario_str(text).unwrap();
        let prepared = prepare_scenario(loaded, ChaseOptions::fresh()).unwrap();
        let stats = prepared.chase_stats.expect("chase ran");
        assert_eq!(stats.target_tuples, 1);
        assert!(stats.rounds >= 1);
        assert_eq!(prepared.target.total_tuples(), 1);
    }

    const PIPELINE: &str = "\
stage clean:
  source schema:
    S(a, b)
  target schema:
    T(a, b)
  dependencies:
    m1: S(x, y) -> T(x, y)
stage publish:
  source schema:
    T(a, b)
  target schema:
    U(a)
  dependencies:
    m2: T(x, y) -> U(x)
source data:
  S(1, 2)
  S(3, 4)
";

    #[test]
    fn pipeline_prepares_both_views() {
        let loaded = load_pipeline_str(PIPELINE).unwrap();
        let (scenario, prepared) =
            prepare_pipeline(loaded, ChaseOptions::fresh(), &Pool::sequential()).unwrap();
        assert_eq!(prepared.hops(), 2);
        // The flat view is the final hop: T → U.
        assert!(scenario.mapping.source().rel_id("T").is_some());
        assert_eq!(scenario.target.total_tuples(), 2);
        let stats = scenario.chase_stats.expect("chase ran");
        assert_eq!(stats.target_tuples, 2);
        assert!(scenario.weakly_acyclic);
        assert!(scenario.chase_wall.is_some());
    }
}
