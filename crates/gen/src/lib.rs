//! Workload generators for the paper's experimental evaluation (§4).
//!
//! * [`tpch`] — a seeded, scale-factored generator of TPC-H-shaped data
//!   (the paper's synthetic scenarios conform to the TPC-H schema).
//! * [`relational`] — the four relational scenarios `M0..M3` (§4.1): a TPC-H
//!   source, a target of six schema "copies" (groups), copying tgds whose
//!   join structure follows paper Figure 9, giving M/T factors 1–6.
//! * [`hierarchy`] — the flat-hierarchy (depth-1 nested) and deep-hierarchy
//!   (`Region/Nation/Customer/Orders/Lineitem`) scenarios.
//! * [`real`] — synthetic stand-ins for the paper's real datasets (Table 1):
//!   DBLP₁+DBLP₂ → Amalgam₁ (10 s-t / 14 target tgds) and Mondial₁ →
//!   Mondial₂ (13 s-t / 25 target tgds). The real data is not distributable;
//!   these generators reproduce the *shape* (schema sizes, nesting depths,
//!   dependency counts, instance sizes) that drives the measurements.
//! * [`random`] — seeded random mapping/instance scenarios for property and
//!   fuzz-style tests (Theorems 3.7 / 3.10).
//! * [`edits`] — seeded, replayable edit-op campaigns for the live-mutation
//!   subsystem (`routes-incr`): valid-by-construction batches reused by the
//!   differential tests and the `micro edit` bench.
//! * [`pipeline`] — seeded multi-hop pipeline scenarios (`routes-pipeline`),
//!   with an optional redundancy knob that gives core minimization null
//!   rows to remove; reused by the differential gate and `micro pipeline`.
//! * [`rng`] — the deterministic SplitMix64 generator every module above
//!   draws from (the workspace builds offline, with no external crates).

pub mod edits;
pub mod hierarchy;
pub mod paper;
pub mod pipeline;
pub mod random;
pub mod real;
pub mod relational;
pub mod rng;
pub mod scenario;
pub mod tpch;

pub use edits::{edit_campaign, sized_edit_campaign, EditCampaign};
pub use hierarchy::{deep_scenario, flat_scenario, DeepScenario, FlatScenario};
pub use paper::{fargo_scenario, toy_scenario_3_5, FargoScenario};
pub use pipeline::{pipeline_scenario, PipelineScenario};
pub use random::random_scenario;
pub use real::{dblp_scenario, mondial_scenario, RealScenario};
pub use relational::{relational_scenario, RelationalScenario, GROUPS};
pub use rng::Rng;
pub use scenario::Scenario;
pub use tpch::TpchRows;
