//! Seeded edit-op campaigns for the live-mutation (`routes-incr`) subsystem.
//!
//! A campaign is a base scenario plus a sequence of [`EditOp`] batches that
//! are **valid by construction**: every `delete_tuple` names a row that
//! exists at that point of the replay, every `drop_tgd` names a dependency
//! the campaign itself added earlier, and inserted rows never duplicate a
//! live row (duplicates would merge with the existing distinct tuple and
//! shift row-id accounting). The generator mirrors the editor's distinct-row
//! bookkeeping exactly, so a campaign can be replayed through
//! `routes_incr::apply_edits` / `apply_batch` without ever tripping a
//! validation error — the differential tests and the `micro edit` bench
//! replay the *same* pinned streams.
//!
//! Determinism: all randomness comes from the workspace [`Rng`]
//! (SplitMix64), so a `(seed, sources, degree, batches, ops_per_batch)`
//! tuple pins the scenario text and every op bit-for-bit, forever.
//!
//! The base scenario exercises every delta path the incremental chase has:
//! a binary join (`j`), a self-join triangle (`tri`, expensive to
//! re-enumerate from scratch — this is what the bench measures), a copy
//! (`cp`), an existential (`ex`, labeled-null churn), and a target tgd
//! (`tt`, second-round derivations).

use std::collections::HashMap;

use routes_store::EditOp;

use crate::rng::Rng;

/// A replayable mutation workload: a scenario and valid op batches.
#[derive(Debug, Clone)]
pub struct EditCampaign {
    /// The base scenario text (loader syntax).
    pub scenario: String,
    /// Op batches, to be applied in order; each batch is one `/edit` call.
    pub batches: Vec<Vec<EditOp>>,
}

impl EditCampaign {
    /// Total ops across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// The default differential-test campaign: a small scenario (24 sources,
/// out-degree 3) with `batches × ops_per_batch` ops.
pub fn edit_campaign(seed: u64, batches: usize, ops_per_batch: usize) -> EditCampaign {
    sized_edit_campaign(seed, 24, 3, batches, ops_per_batch)
}

/// A campaign over a sized base instance: `sources` nodes each with
/// `degree` out-edges in `S`, plus proportionally sized `R` and `M`.
/// Larger sizes drive the bench's incremental-vs-full comparison.
pub fn sized_edit_campaign(
    seed: u64,
    sources: usize,
    degree: usize,
    batches: usize,
    ops_per_batch: usize,
) -> EditCampaign {
    let n = sources.max(4);
    let d = degree.clamp(1, n - 1);
    let mut tracker = Tracker::default();
    let scenario = base_scenario(n, d, &mut tracker);

    let mut rng = Rng::seed_from_u64(seed);
    // Fresh constants for non-interacting inserts, disjoint from 0..n.
    let mut fresh: i64 = 1_000_000;
    // Dependencies the campaign added (and has not yet dropped).
    let mut added: Vec<String> = Vec::new();
    let mut next_tgd = 0usize;

    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = Vec::with_capacity(ops_per_batch);
        for _ in 0..ops_per_batch {
            let roll = rng.gen_range(0..100u32);
            let op = if roll < 55 {
                insert_op(&mut rng, n, &mut fresh, &mut tracker)
            } else if roll < 75 {
                delete_op(&mut rng, &mut tracker)
                    .unwrap_or_else(|| insert_op(&mut rng, n, &mut fresh, &mut tracker))
            } else if roll < 85 {
                add_tgd_op(&mut rng, &mut added, &mut next_tgd)
            } else {
                drop_tgd_op(&mut rng, &mut added)
                    .unwrap_or_else(|| add_tgd_op(&mut rng, &mut added, &mut next_tgd))
            };
            batch.push(op);
        }
        out.push(batch);
    }
    EditCampaign {
        scenario,
        batches: out,
    }
}

/// Mirrors the editor's per-relation *distinct row* bookkeeping: rows in
/// first-occurrence order, exactly the ids `delete_tuple` addresses.
#[derive(Debug, Default)]
struct Tracker {
    rows: HashMap<&'static str, Vec<String>>,
}

impl Tracker {
    /// Record a row if it is new; `true` when it was actually added.
    fn add(&mut self, rel: &'static str, line: String) -> bool {
        let rows = self.rows.entry(rel).or_default();
        if rows.contains(&line) {
            return false;
        }
        rows.push(line);
        true
    }
}

/// Render the base scenario and seed the tracker with its rows.
fn base_scenario(n: usize, d: usize, tracker: &mut Tracker) -> String {
    let mut text = String::from(
        "source schema:\n  S(a, b)\n  R(a, b)\n  M(a)\n\
         target schema:\n  T(a, b)\n  W(a)\n  V(a)\n  U(a, b)\n\
         dependencies:\n\
         \x20 j: S(x, y) & R(y, z) -> T(x, z)\n\
         \x20 tri: S(x, y) & S(y, z) & S(z, x) -> W(x)\n\
         \x20 cp: M(x) -> V(x)\n\
         \x20 ex: S(x, y) -> exists N: U(x, N)\n\
         \x20 tt: T(x, y) -> V(y)\n\
         source data:\n",
    );
    // Out-edges offset by roughly n/2 so a triangle needs three offsets
    // summing to n/2 (mod n): present but rare, which makes `tri` cheap to
    // maintain incrementally and expensive to re-enumerate in full.
    for i in 0..n {
        for k in 1..=d {
            let line = format!("S({i}, {})", (i + n / 2 + k) % n);
            if tracker.add("S", line.clone()) {
                text.push_str("  ");
                text.push_str(&line);
                text.push('\n');
            }
        }
    }
    for i in 0..(n / 4).max(2) {
        let line = format!("R({i}, {})", (i * 7 + 1) % n);
        if tracker.add("R", line.clone()) {
            text.push_str("  ");
            text.push_str(&line);
            text.push('\n');
        }
    }
    for i in 0..(n / 8).max(2) {
        let line = format!("M({i})");
        if tracker.add("M", line.clone()) {
            text.push_str("  ");
            text.push_str(&line);
            text.push('\n');
        }
    }
    text
}

/// An insert that cannot duplicate a live row: interacting values in
/// `0..n` when available, otherwise fresh constants.
fn insert_op(rng: &mut Rng, n: usize, fresh: &mut i64, tracker: &mut Tracker) -> EditOp {
    let rel_roll = rng.gen_range(0..20u32);
    let (rel, arity): (&'static str, usize) = if rel_roll < 12 {
        ("S", 2)
    } else if rel_roll < 17 {
        ("R", 2)
    } else {
        ("M", 1)
    };
    if rng.gen_bool(0.6) {
        // Values inside the base universe create joins, triangles, and
        // second-round `tt` derivations.
        let line = match arity {
            1 => format!("{rel}({})", rng.gen_range(0..n as i64)),
            _ => format!(
                "{rel}({}, {})",
                rng.gen_range(0..n as i64),
                rng.gen_range(0..n as i64)
            ),
        };
        if tracker.add(rel, line.clone()) {
            return EditOp::InsertTuple { line };
        }
    }
    // Fresh constants never collide with anything.
    let line = match arity {
        1 => {
            let v = *fresh;
            *fresh += 1;
            format!("{rel}({v})")
        }
        _ => {
            let (a, b) = (*fresh, *fresh + 1);
            *fresh += 2;
            format!("{rel}({a}, {b})")
        }
    };
    let added = tracker.add(rel, line.clone());
    debug_assert!(added, "fresh constants are disjoint from all live rows");
    EditOp::InsertTuple { line }
}

/// Delete a live distinct row, or `None` when every relation is empty.
fn delete_op(rng: &mut Rng, tracker: &mut Tracker) -> Option<EditOp> {
    let candidates: Vec<&'static str> = ["S", "R", "M"]
        .into_iter()
        .filter(|rel| tracker.rows.get(rel).is_some_and(|r| !r.is_empty()))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let rel = candidates[rng.gen_range(0..candidates.len())];
    let rows = tracker.rows.get_mut(rel).unwrap();
    let row = rng.gen_range(0..rows.len());
    rows.remove(row);
    Some(EditOp::DeleteTuple {
        relation: rel.to_owned(),
        row: row as u32,
    })
}

/// Add a dependency from a fixed template pool under a fresh name.
fn add_tgd_op(rng: &mut Rng, added: &mut Vec<String>, next: &mut usize) -> EditOp {
    const TEMPLATES: [&str; 4] = [
        "S(x, y) -> T(y, x)",
        "R(x, y) -> T(x, y)",
        "M(x) -> W(x)",
        "S(x, y) & M(x) -> V(y)",
    ];
    let body = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
    let name = format!("g{}", *next);
    *next += 1;
    added.push(name.clone());
    EditOp::AddTgd {
        line: format!("{name}: {body}"),
    }
}

/// Drop a campaign-added dependency, or `None` when none are live.
fn drop_tgd_op(rng: &mut Rng, added: &mut Vec<String>) -> Option<EditOp> {
    if added.is_empty() {
        return None;
    }
    let name = added.remove(rng.gen_range(0..added.len()));
    Some(EditOp::DropTgd { name })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_pinned_to_the_seed() {
        let a = edit_campaign(0, 4, 5);
        let b = edit_campaign(0, 4, 5);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(format!("{:?}", a.batches), format!("{:?}", b.batches));
        let c = edit_campaign(1, 4, 5);
        assert_ne!(format!("{:?}", a.batches), format!("{:?}", c.batches));
    }

    #[test]
    fn seed_zero_first_batch_is_bit_for_bit_stable() {
        // Regression pin: if this changes, every recorded campaign shifts.
        let campaign = edit_campaign(0, 1, 4);
        assert_eq!(
            format!("{:?}", campaign.batches[0]),
            "[AddTgd { line: \"g0: R(x, y) -> T(x, y)\" }, \
             InsertTuple { line: \"M(7)\" }, \
             InsertTuple { line: \"R(22, 9)\" }, \
             AddTgd { line: \"g1: M(x) -> W(x)\" }]"
        );
    }

    #[test]
    fn mix_covers_all_four_op_kinds() {
        let campaign = edit_campaign(7, 40, 5);
        let all: Vec<&EditOp> = campaign.batches.iter().flatten().collect();
        assert_eq!(all.len(), 200);
        let count = |f: fn(&&&EditOp) -> bool| all.iter().filter(f).count();
        assert!(count(|op| matches!(op, EditOp::InsertTuple { .. })) > 0);
        assert!(count(|op| matches!(op, EditOp::DeleteTuple { .. })) > 0);
        assert!(count(|op| matches!(op, EditOp::AddTgd { .. })) > 0);
        assert!(count(|op| matches!(op, EditOp::DropTgd { .. })) > 0);
    }

    #[test]
    fn every_batch_replays_cleanly_through_the_editor() {
        // The whole point: validity by construction. Replay a long campaign
        // through the real editor and assert no op is ever rejected.
        let campaign = edit_campaign(3, 50, 4);
        let mut text = campaign.scenario.clone();
        for (i, batch) in campaign.batches.iter().enumerate() {
            let (next, _) = routes_incr::apply_edits(&text, batch)
                .unwrap_or_else(|e| panic!("batch {i} rejected: {e}"));
            text = next;
        }
    }

    #[test]
    fn sized_campaigns_scale_the_instance() {
        let small = sized_edit_campaign(0, 16, 2, 1, 1);
        let big = sized_edit_campaign(0, 256, 4, 1, 1);
        assert!(big.scenario.len() > small.scenario.len() * 4);
    }
}
