//! Seeded TPC-H-shaped data generation.
//!
//! The paper's synthetic source schemas conform to the TPC-H specification;
//! its instance sizes (10 MB–500 MB under DB2) correspond to TPC-H scale
//! factors ~0.01–0.5. [`TpchRows`] carries the per-relation row counts with
//! TPC-H's 5 : 25 : 10k : 200k : 800k : 150k : 1.5M : 6M proportions, so a
//! size sweep preserves the paper's 1 : 5 : 10 : 50 ratios.
//!
//! Schemas here keep each relation's join keys (the columns paper Figure 9
//! joins on) plus representative payload columns.

use crate::rng::Rng;
use routes_model::{Instance, RelId, Schema, Value, ValuePool};

/// Per-relation row counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchRows {
    /// Rows in `Region` (fixed at 5 in TPC-H).
    pub region: usize,
    /// Rows in `Nation` (fixed at 25 in TPC-H).
    pub nation: usize,
    /// Rows in `Supplier`.
    pub supplier: usize,
    /// Rows in `Part`.
    pub part: usize,
    /// Rows in `Partsupp`.
    pub partsupp: usize,
    /// Rows in `Customer`.
    pub customer: usize,
    /// Rows in `Orders`.
    pub orders: usize,
    /// Rows in `Lineitem`.
    pub lineitem: usize,
}

impl TpchRows {
    /// Row counts for a TPC-H scale factor (SF 1 = 10k suppliers, 6M
    /// lineitems). Every count is at least 1; Region/Nation stay at their
    /// TPC-H constants.
    pub fn scale(sf: f64) -> Self {
        let n = |base: f64| ((base * sf).round() as usize).max(1);
        TpchRows {
            region: 5,
            nation: 25,
            supplier: n(10_000.0),
            part: n(200_000.0),
            partsupp: n(800_000.0),
            customer: n(150_000.0),
            orders: n(1_500_000.0),
            lineitem: n(6_000_000.0),
        }
    }

    /// Total rows across all eight relations.
    pub fn total(&self) -> usize {
        self.region
            + self.nation
            + self.supplier
            + self.part
            + self.partsupp
            + self.customer
            + self.orders
            + self.lineitem
    }
}

/// The eight TPC-H relation base names, in declaration order.
pub const TABLES: [&str; 8] = [
    "Region", "Nation", "Supplier", "Part", "Partsupp", "Customer", "Orders", "Lineitem",
];

/// Attribute lists per table (first columns are the Figure 9 join keys).
pub fn table_attrs(base: &str) -> &'static [&'static str] {
    match base {
        "Region" => &["regionkey", "rname"],
        "Nation" => &["nationkey", "nname", "regionkey"],
        "Supplier" => &["suppkey", "sname", "nationkey", "sacctbal"],
        "Part" => &["partkey", "pname", "brand", "retailprice"],
        "Partsupp" => &["partkey", "suppkey", "availqty", "supplycost"],
        "Customer" => &["custkey", "cname", "nationkey", "cacctbal"],
        "Orders" => &["orderkey", "custkey", "totalprice", "odate"],
        "Lineitem" => &[
            "orderkey",
            "linenumber",
            "partkey",
            "suppkey",
            "quantity",
            "extendedprice",
        ],
        other => panic!("unknown TPC-H table `{other}`"),
    }
}

/// Add the eight TPC-H relations to `schema`, each name suffixed (the
/// paper's source uses one copy, the target six).
pub fn add_tpch_relations(schema: &mut Schema, suffix: &str) -> Vec<RelId> {
    TABLES
        .iter()
        .map(|base| schema.rel(&format!("{base}{suffix}"), table_attrs(base)))
        .collect()
}

/// Populate a TPC-H instance: dense primary keys, uniformly random foreign
/// keys, small-cardinality string payloads. Deterministic for a given seed.
///
/// `rels` must be the result of [`add_tpch_relations`] on the instance's
/// schema.
pub fn populate(
    inst: &mut Instance,
    pool: &mut ValuePool,
    rels: &[RelId],
    rows: &TpchRows,
    seed: u64,
) {
    let mut rng = Rng::seed_from_u64(seed);
    let [region, nation, supplier, part, partsupp, customer, orders, lineitem] = [
        rels[0], rels[1], rels[2], rels[3], rels[4], rels[5], rels[6], rels[7],
    ];
    let int = Value::Int;
    let region_names = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

    for k in 0..rows.region {
        let name = pool.str(region_names[k % region_names.len()]);
        inst.insert_ok(region, &[int(k as i64 + 1), name]);
    }
    for k in 0..rows.nation {
        let name = pool.str(&format!("Nation#{k:03}"));
        let rk = rng.gen_range(1..=rows.region as i64);
        inst.insert_ok(nation, &[int(k as i64 + 1), name, int(rk)]);
    }
    for k in 0..rows.supplier {
        let name = pool.str(&format!("Supplier#{k:06}"));
        let nk = rng.gen_range(1..=rows.nation as i64);
        let bal = rng.gen_range(-99_999..999_999);
        inst.insert_ok(supplier, &[int(k as i64 + 1), name, int(nk), int(bal)]);
    }
    let brands = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
    for k in 0..rows.part {
        let name = pool.str(&format!("Part#{k:06}"));
        let brand = pool.str(brands[k % brands.len()]);
        let price = 900 + (k as i64 % 20_000);
        inst.insert_ok(part, &[int(k as i64 + 1), name, brand, int(price)]);
    }
    for k in 0..rows.partsupp {
        // TPC-H pairs each part with 4 suppliers; approximate with a
        // deterministic spread plus random supplier.
        let pk = (k % rows.part) as i64 + 1;
        let sk = rng.gen_range(1..=rows.supplier as i64);
        let qty = rng.gen_range(1..10_000);
        let cost = rng.gen_range(100..100_000);
        inst.insert_ok(partsupp, &[int(pk), int(sk), int(qty), int(cost)]);
    }
    for k in 0..rows.customer {
        let name = pool.str(&format!("Customer#{k:06}"));
        let nk = rng.gen_range(1..=rows.nation as i64);
        let bal = rng.gen_range(-99_999..999_999);
        inst.insert_ok(customer, &[int(k as i64 + 1), name, int(nk), int(bal)]);
    }
    for k in 0..rows.orders {
        let ck = rng.gen_range(1..=rows.customer as i64);
        let total = rng.gen_range(1_000..500_000);
        let date = 19_920_101 + rng.gen_range(0..2_555i64);
        inst.insert_ok(orders, &[int(k as i64 + 1), int(ck), int(total), int(date)]);
    }
    for k in 0..rows.lineitem {
        let ok = rng.gen_range(1..=rows.orders as i64);
        let line = (k % 7) as i64 + 1;
        let pk = rng.gen_range(1..=rows.part as i64);
        let sk = rng.gen_range(1..=rows.supplier as i64);
        let qty = rng.gen_range(1..50);
        let price = rng.gen_range(900..100_000);
        inst.insert_ok(
            lineitem,
            &[int(ok), int(line), int(pk), int(sk), int(qty), int(price)],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_preserves_proportions() {
        let r = TpchRows::scale(0.01);
        assert_eq!(r.region, 5);
        assert_eq!(r.nation, 25);
        assert_eq!(r.supplier, 100);
        assert_eq!(r.lineitem, 60_000);
        let big = TpchRows::scale(0.1);
        assert_eq!(big.lineitem, 10 * r.lineitem);
        // Everything at least 1 even at tiny scales.
        let tiny = TpchRows::scale(0.000_001);
        assert!(tiny.supplier >= 1 && tiny.lineitem >= 1);
    }

    #[test]
    fn populate_is_deterministic_and_fk_consistent() {
        let rows = TpchRows::scale(0.001);
        let mut schema = Schema::new();
        let rels = add_tpch_relations(&mut schema, "0");
        let mut pool1 = ValuePool::new();
        let mut inst1 = Instance::new(&schema);
        populate(&mut inst1, &mut pool1, &rels, &rows, 7);
        let mut pool2 = ValuePool::new();
        let mut inst2 = Instance::new(&schema);
        populate(&mut inst2, &mut pool2, &rels, &rows, 7);
        assert_eq!(inst1.total_tuples(), inst2.total_tuples());
        assert!(inst1.contained_in(&inst2) && inst2.contained_in(&inst1));

        // FK check: every lineitem's orderkey exists in Orders.
        let orders = rels[6];
        let lineitem = rels[7];
        let mut order_keys = std::collections::HashSet::new();
        for (_, vals) in inst1.rel_tuples(orders) {
            order_keys.insert(vals[0]);
        }
        for (_, vals) in inst1.rel_tuples(lineitem) {
            assert!(order_keys.contains(&vals[0]));
        }
    }

    #[test]
    fn dedup_may_shrink_partsupp_but_core_counts_hold() {
        let rows = TpchRows::scale(0.001);
        let mut schema = Schema::new();
        let rels = add_tpch_relations(&mut schema, "0");
        let mut pool = ValuePool::new();
        let mut inst = Instance::new(&schema);
        populate(&mut inst, &mut pool, &rels, &rows, 3);
        assert_eq!(inst.rel_len(rels[0]) as usize, rows.region);
        assert_eq!(inst.rel_len(rels[2]) as usize, rows.supplier);
        assert_eq!(inst.rel_len(rels[6]) as usize, rows.orders);
        // Lineitems may collide (set semantics) but stay close to target.
        assert!(inst.rel_len(rels[7]) as usize >= rows.lineitem * 9 / 10);
    }
}
