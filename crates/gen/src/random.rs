//! Seeded random scenarios for property and fuzz-style testing of the route
//! algorithms (Theorems 3.7 and 3.10 are tested over these).
//!
//! The generated dependency sets are restricted so the standard chase
//! terminates: target tgds never introduce existential variables (only s-t
//! tgds may), which makes every dependency set weakly acyclic.

use crate::rng::Rng;
use routes_mapping::{SchemaMapping, Tgd};
use routes_model::{Atom, Instance, RelId, Schema, Term, Value, ValuePool, Var};

use crate::scenario::Scenario;

/// Remap the variables occurring in `atoms` to a dense `0..n` space,
/// returning the rewritten atoms and the names of the surviving variables.
fn compact_vars(atoms: Vec<Atom>, var_names: &[String]) -> (Vec<Atom>, Vec<String>) {
    let mut remap: Vec<Option<Var>> = vec![None; var_names.len()];
    let mut names = Vec::new();
    let rewritten = atoms
        .into_iter()
        .map(|atom| {
            let terms = atom
                .terms
                .iter()
                .map(|term| match term {
                    Term::Var(v) => {
                        let slot = &mut remap[v.0 as usize];
                        let nv = match slot {
                            Some(nv) => *nv,
                            None => {
                                let nv = Var(names.len() as u32);
                                names.push(var_names[v.0 as usize].clone());
                                *slot = Some(nv);
                                nv
                            }
                        };
                        Term::Var(nv)
                    }
                    c => *c,
                })
                .collect();
            Atom::new(atom.rel, terms)
        })
        .collect();
    (rewritten, names)
}

/// Build a small random scenario. For a fixed seed the scenario is fully
/// deterministic.
pub fn random_scenario(seed: u64) -> Scenario {
    let mut rng = Rng::seed_from_u64(seed);
    let pool = ValuePool::new();

    let n_source = rng.gen_range(1..=3usize);
    let n_target = rng.gen_range(2..=4usize);
    let mut source_schema = Schema::new();
    let source_rels: Vec<(RelId, usize)> = (0..n_source)
        .map(|k| {
            let arity = rng.gen_range(1..=2usize);
            let attrs: Vec<&str> = ["a", "b"][..arity].to_vec();
            (source_schema.rel(&format!("S{k}"), &attrs), arity)
        })
        .collect();
    let mut target_schema = Schema::new();
    let target_rels: Vec<(RelId, usize)> = (0..n_target)
        .map(|k| {
            let arity = rng.gen_range(1..=2usize);
            let attrs: Vec<&str> = ["a", "b"][..arity].to_vec();
            (target_schema.rel(&format!("T{k}"), &attrs), arity)
        })
        .collect();

    let mut mapping = SchemaMapping::new(source_schema.clone(), target_schema.clone());

    // Random atoms over a small shared variable space.
    let var_names: Vec<String> = (0..4).map(|i| format!("v{i}")).collect();
    let rand_atoms = |rng: &mut Rng,
                      rels: &[(RelId, usize)],
                      count: usize,
                      allow_fresh_vars: bool,
                      used: &mut Vec<Var>|
     -> Vec<Atom> {
        (0..count)
            .map(|_| {
                let (rel, arity) = rels[rng.gen_range(0..rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        // Mostly variables, occasionally a constant.
                        if rng.gen_bool(0.15) {
                            Term::Const(Value::Int(rng.gen_range(0..3)))
                        } else {
                            let v = if allow_fresh_vars || used.is_empty() {
                                Var(rng.gen_range(0..4))
                            } else {
                                used[rng.gen_range(0..used.len())]
                            };
                            if !used.contains(&v) {
                                used.push(v);
                            }
                            Term::Var(v)
                        }
                    })
                    .collect();
                Atom::new(rel, terms)
            })
            .collect()
    };

    // 1–3 s-t tgds (existentials allowed on the RHS).
    for k in 0..rng.gen_range(1..=3usize) {
        let mut used = Vec::new();
        let lhs_n = rng.gen_range(1..=2);
        let lhs = rand_atoms(&mut rng, &source_rels, lhs_n, true, &mut used);
        let mut rhs_used = used.clone();
        let rhs_n = rng.gen_range(1..=2);
        let rhs = rand_atoms(&mut rng, &target_rels, rhs_n, true, &mut rhs_used);
        let split = lhs.len();
        let (mut both, names) = {
            let mut all = lhs;
            all.extend(rhs);
            compact_vars(all, &var_names)
        };
        let rhs = both.split_off(split);
        if let Ok(tgd) = Tgd::new(format!("st{k}"), both, rhs, names) {
            let _ = mapping.add_st_tgd(tgd);
        }
    }
    // 0–3 target tgds; RHS variables restricted to LHS variables (full tgds,
    // no existentials) so the chase terminates.
    for k in 0..rng.gen_range(0..=3usize) {
        let mut used = Vec::new();
        let lhs_n = rng.gen_range(1..=2);
        let lhs = rand_atoms(&mut rng, &target_rels, lhs_n, true, &mut used);
        if used.is_empty() {
            continue;
        }
        let mut rhs_used = used.clone();
        let rhs = rand_atoms(&mut rng, &target_rels, 1, false, &mut rhs_used);
        let split = lhs.len();
        let (mut both, names) = {
            let mut all = lhs;
            all.extend(rhs);
            compact_vars(all, &var_names)
        };
        let rhs = both.split_off(split);
        if let Ok(tgd) = Tgd::new(format!("tt{k}"), both, rhs, names) {
            let _ = mapping.add_target_tgd(tgd);
        }
    }

    // Small random source instance over domain {0, 1, 2}.
    let mut source = Instance::new(&source_schema);
    for &(rel, arity) in &source_rels {
        for _ in 0..rng.gen_range(0..6usize) {
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::Int(rng.gen_range(0..3)))
                .collect();
            source.insert_ok(rel, &values);
        }
    }

    Scenario {
        name: format!("random-{seed}"),
        pool,
        mapping,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_chase::{chase, ChaseOptions};
    use routes_mapping::satisfy::is_solution;

    #[test]
    fn random_scenarios_chase_to_solutions() {
        for seed in 0..60 {
            let mut sc = random_scenario(seed);
            let result = chase(&sc.mapping, &sc.source, &mut sc.pool, ChaseOptions::fresh());
            let result = result.unwrap_or_else(|e| panic!("seed {seed}: chase failed: {e}"));
            assert!(
                is_solution(&sc.mapping, &sc.source, &result.target),
                "seed {seed}: chase output must be a solution"
            );
        }
    }

    #[test]
    fn random_scenarios_are_deterministic() {
        let a = random_scenario(123);
        let b = random_scenario(123);
        assert_eq!(a.source.total_tuples(), b.source.total_tuples());
        assert_eq!(a.mapping.st_tgds().len(), b.mapping.st_tgds().len());
        assert_eq!(a.mapping.target_tgds().len(), b.mapping.target_tgds().len());
    }
}
