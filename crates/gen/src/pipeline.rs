//! Seeded multi-hop pipeline scenarios for the `routes-pipeline` subsystem:
//! differential tests and the `micro pipeline` bench.
//!
//! The generated chain has the same schema shape at every level — `Ak(a, b)`
//! carrying pairs and `Bk(a)` carrying a projection — so any hop count
//! chains correctly. With `redundancy` on, every hop gains an existential
//! tgd *before* the copying tgd, so the deterministic Fresh chase
//! materializes `Ak(x, N)` null rows that the copy rows subsume: core
//! minimization then strictly shrinks every intermediate instance, which is
//! exactly the workload the core-mode differential gate needs.

use routes_mapping::{parse_dependency, SchemaMapping};
use routes_model::{Instance, Schema, Value, ValuePool};
use routes_pipeline::{Pipeline, PipelineStage};

use crate::rng::Rng;

/// A complete pipeline scenario: the validated chain and the instance that
/// feeds its first hop.
#[derive(Debug, Clone)]
pub struct PipelineScenario {
    /// Scenario name (used in benchmark output).
    pub name: String,
    /// Shared value pool.
    pub pool: ValuePool,
    /// The validated stage chain.
    pub pipeline: Pipeline,
    /// The source instance of the first hop.
    pub source: Instance,
}

/// The schema at chain level `k`: `Ak(a, b)` and `Bk(a)`. Level 0 is the
/// original source; level `k` is hop `k`'s target.
fn level_schema(k: usize) -> Schema {
    let mut s = Schema::new();
    s.rel(&format!("A{k}"), &["a", "b"]);
    s.rel(&format!("B{k}"), &["a"]);
    s
}

/// Build a seeded `hops`-stage pipeline over `rows` source tuples. Fully
/// deterministic for fixed arguments, so the same call with `core` flipped
/// yields byte-identical stages and source — the property the differential
/// gate relies on. With `redundancy`, each hop's chase output contains null
/// rows the core can remove; without it, every chased instance is already a
/// core.
pub fn pipeline_scenario(
    hops: usize,
    rows: usize,
    seed: u64,
    redundancy: bool,
    core: bool,
) -> PipelineScenario {
    assert!(hops >= 1, "a pipeline needs at least one hop");
    let mut rng = Rng::seed_from_u64(seed);
    let mut pool = ValuePool::new();
    let mut stages = Vec::with_capacity(hops);
    for k in 1..=hops {
        let src = level_schema(k - 1);
        let dst = level_schema(k);
        let mut mapping = SchemaMapping::new(src.clone(), dst.clone());
        let p = k - 1;
        let mut deps = Vec::new();
        if redundancy {
            // Fired before the copy below, this leaves subsumable null rows
            // in the Fresh chase's output.
            deps.push(format!("r{k}: A{p}(x, y) -> exists Z: A{k}(x, Z)"));
        }
        deps.push(format!("c{k}: A{p}(x, y) -> A{k}(x, y)"));
        deps.push(format!("p{k}: A{p}(x, y) -> B{k}(x)"));
        deps.push(format!("b{k}: B{p}(x) -> B{k}(x)"));
        for dep in &deps {
            let parsed =
                parse_dependency(&src, &dst, &mut pool, dep).expect("generated dependencies parse");
            mapping
                .add_dependency(parsed)
                .expect("generated dependencies are well-formed");
        }
        stages.push(PipelineStage {
            name: format!("hop{k}"),
            mapping,
        });
    }
    let pipeline = Pipeline::new(stages, core).expect("generated chain is valid");

    let source_schema = level_schema(0);
    let a0 = source_schema.rel_id("A0").unwrap();
    let b0 = source_schema.rel_id("B0").unwrap();
    let mut source = Instance::new(&source_schema);
    for _ in 0..rows {
        let x = rng.gen_range(0..1_000) as i64;
        let y = rng.gen_range(0..1_000) as i64;
        source.insert_ok(a0, &[Value::Int(x), Value::Int(y)]);
    }
    for _ in 0..rows.div_ceil(4) {
        let x = rng.gen_range(0..1_000) as i64;
        source.insert_ok(b0, &[Value::Int(x)]);
    }
    PipelineScenario {
        name: format!(
            "pipeline-h{hops}-r{rows}-s{seed}{}{}",
            if redundancy { "-red" } else { "" },
            if core { "-core" } else { "" }
        ),
        pool,
        pipeline,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_chase::ChaseOptions;
    use routes_pipeline::chase_pipeline;
    use routes_pool::Pool;

    #[test]
    fn generated_pipelines_chase_end_to_end() {
        let sc = pipeline_scenario(3, 8, 42, false, false);
        assert_eq!(sc.pipeline.hops(), 3);
        let prepared = chase_pipeline(
            sc.pipeline,
            sc.source,
            sc.pool,
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        assert!(prepared.weakly_acyclic);
        assert!(prepared.final_stage().target.total_tuples() > 0);
        let (before, after) = prepared.core_shrink();
        assert_eq!(before, after, "no redundancy, nothing to shrink");
    }

    #[test]
    fn redundancy_gives_the_core_something_to_remove() {
        let sc = pipeline_scenario(2, 6, 7, true, true);
        let prepared = chase_pipeline(
            sc.pipeline,
            sc.source,
            sc.pool,
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        let (before, after) = prepared.core_shrink();
        assert!(after < before, "core must shrink: {before} -> {after}");
    }

    #[test]
    fn generation_is_deterministic_and_core_flag_neutral() {
        let a = pipeline_scenario(2, 10, 99, true, false);
        let b = pipeline_scenario(2, 10, 99, true, true);
        assert_eq!(a.source.total_tuples(), b.source.total_tuples());
        assert_eq!(a.pipeline.hops(), b.pipeline.hops());
        assert!(!a.pipeline.core_mode());
        assert!(b.pipeline.core_mode());
        for (sa, sb) in a.pipeline.stages().iter().zip(b.pipeline.stages()) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.mapping.st_tgds().len(), sb.mapping.st_tgds().len());
        }
    }
}
