//! The scenario container: a mapping plus a source instance plus the value
//! pool they share.

use routes_chase::{chase, ChaseError, ChaseOptions, ChaseResult};
use routes_mapping::SchemaMapping;
use routes_model::{Instance, TupleId, ValuePool};

use crate::rng::Rng;

/// A complete debugging scenario: everything needed to chase a solution and
/// compute routes.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in benchmark output).
    pub name: String,
    /// Shared value pool.
    pub pool: ValuePool,
    /// The schema mapping.
    pub mapping: SchemaMapping,
    /// The source instance `I`.
    pub source: Instance,
}

impl Scenario {
    /// Produce a solution `J` with the Skolemized chase (how the paper's
    /// Clio-generated transforms materialize targets).
    pub fn solution(&mut self) -> Result<ChaseResult, ChaseError> {
        let pool = &mut self.pool;
        chase(&self.mapping, &self.source, pool, ChaseOptions::skolem())
    }

    /// Produce a solution with explicit chase options.
    pub fn solution_with(&mut self, options: ChaseOptions) -> Result<ChaseResult, ChaseError> {
        chase(&self.mapping, &self.source, &mut self.pool, options)
    }
}

/// Pick `n` distinct random tuples from the given relations of an instance
/// (used to select probe tuples for the benchmarks). Returns fewer than `n`
/// if the relations are too small.
pub fn random_tuples(
    inst: &Instance,
    rels: &[routes_model::RelId],
    n: usize,
    seed: u64,
) -> Vec<TupleId> {
    let mut rng = Rng::seed_from_u64(seed);
    let total: u64 = rels.iter().map(|&r| u64::from(inst.rel_len(r))).sum();
    let mut picked = std::collections::HashSet::new();
    let mut out = Vec::new();
    let budget = (n * 20).max(100);
    for _ in 0..budget {
        if out.len() == n || total == 0 {
            break;
        }
        let mut k = rng.gen_range(0..total);
        for &rel in rels {
            let len = u64::from(inst.rel_len(rel));
            if k < len {
                let id = TupleId { rel, row: k as u32 };
                if picked.insert(id) {
                    out.push(id);
                }
                break;
            }
            k -= len;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::{Schema, Value};

    #[test]
    fn random_tuples_are_distinct_and_deterministic() {
        let mut s = Schema::new();
        let r = s.rel("R", &["a"]);
        let mut inst = Instance::new(&s);
        for i in 0..50 {
            inst.insert_ok(r, &[Value::Int(i)]);
        }
        let a = random_tuples(&inst, &[r], 10, 42);
        let b = random_tuples(&inst, &[r], 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10);
        // Asking for more than available returns what exists.
        let all = random_tuples(&inst, &[r], 200, 7);
        assert!(all.len() <= 50);
    }
}
