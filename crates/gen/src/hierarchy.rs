//! The hierarchical synthetic scenarios (paper §4.1): *flat-hierarchy*
//! (depth-1 nesting: a root record with the eight TPC-H sets underneath)
//! and *deep-hierarchy* (`Region/Nation/Customer/Orders/Lineitem`, Figure
//! 11).
//!
//! Both scenarios run through the relational encoding of `routes-nested`:
//! each record relation carries `(self, parent)` id columns, and the copy
//! tgds carry those columns along — which is precisely why selection depth
//! affects `findHom` cost in the deep scenario.

use crate::rng::Rng;
use routes_mapping::{parse_st_tgd, parse_target_tgd, SchemaMapping};
use routes_model::{Instance, RelId, TupleId, Value, ValuePool};
use routes_nested::{
    copy_tree_tgd, encode_instance, encode_schema, EncodedSchema, NestedInstance, NestedSchema,
};

use crate::relational::{copy_tgd_text_nested, join_patterns, GROUPS};
use crate::scenario::{random_tuples, Scenario};
use crate::tpch::{table_attrs, TpchRows, TABLES};

/// The flat-hierarchy scenario: depth-1 nested schemas.
#[derive(Debug, Clone)]
pub struct FlatScenario {
    /// Mapping + encoded source instance.
    pub scenario: Scenario,
    /// Nested source schema (root + eight sets).
    pub src_nested: NestedSchema,
    /// Nested target schema (six copies).
    pub dst_nested: NestedSchema,
    /// The target encoding (for decoding solutions back to trees).
    pub dst_encoded: EncodedSchema,
    /// Target table relations per group (Root relations excluded).
    pub target_groups: Vec<Vec<RelId>>,
}

impl FlatScenario {
    /// Select `n` random elements from group `group` of a solution.
    pub fn select_from_group(
        &self,
        j: &Instance,
        group: usize,
        n: usize,
        seed: u64,
    ) -> Vec<TupleId> {
        random_tuples(j, &self.target_groups[group - 1], n, seed)
    }
}

/// Build the flat-hierarchy scenario: nested (depth-1) version of the
/// relational scenario with the same Figure 9 join structure.
pub fn flat_scenario(joins: usize, rows: &TpchRows, seed: u64) -> FlatScenario {
    // Nested source: Root0 with the eight TPC-H sets underneath.
    let mut src_nested = NestedSchema::new();
    let root0 = src_nested.add_root("Root0", &[]);
    for base in TABLES {
        src_nested.add_child(root0, &format!("{base}0"), table_attrs(base));
    }
    // Nested target: six copies.
    let mut dst_nested = NestedSchema::new();
    for g in 1..=GROUPS {
        let root = dst_nested.add_root(&format!("Root{g}"), &[]);
        for base in TABLES {
            dst_nested.add_child(root, &format!("{base}{g}"), table_attrs(base));
        }
    }
    let src_encoded = encode_schema(&src_nested);
    let dst_encoded = encode_schema(&dst_nested);

    // Source data: one root node, TPC-H rows as its children.
    let mut pool = ValuePool::new();
    let mut tree = NestedInstance::new();
    let root = tree.add_root(&src_nested, root0, &[]);
    populate_children(&mut tree, &src_nested, &mut pool, root, "0", rows, seed);
    let encoded_src = encode_instance(&src_nested, &src_encoded, &tree);

    // Tgds: root copy plus the per-group join-pattern copies.
    let mut mapping = SchemaMapping::new(src_encoded.schema.clone(), dst_encoded.schema.clone());
    let root_copy_rhs: Vec<String> = (1..=GROUPS)
        .map(|g| format!("Root{g}(r_self, r_par)"))
        .collect();
    let root_copy = format!(
        "root_copy: Root0(r_self, r_par) -> {}",
        root_copy_rhs.join(" & ")
    );
    mapping
        .add_st_tgd(
            parse_st_tgd(
                &src_encoded.schema,
                &dst_encoded.schema,
                &mut pool,
                &root_copy,
            )
            .expect("root copy parses"),
        )
        .expect("root copy valid");
    let patterns = join_patterns(joins);
    for (gi, group) in patterns.iter().enumerate() {
        let text = copy_tgd_text_nested(&format!("st{gi}"), group, 0, 1);
        let tgd = parse_st_tgd(&src_encoded.schema, &dst_encoded.schema, &mut pool, &text)
            .unwrap_or_else(|e| panic!("generated nested s-t tgd must parse: {e}"));
        mapping.add_st_tgd(tgd).expect("valid");
    }
    for to in 2..=GROUPS {
        for (gi, group) in patterns.iter().enumerate() {
            let text = copy_tgd_text_nested(&format!("t{}_{gi}", to - 1), group, to - 1, to);
            let tgd = parse_target_tgd(&dst_encoded.schema, &mut pool, &text)
                .unwrap_or_else(|e| panic!("generated nested target tgd must parse: {e}"));
            mapping.add_target_tgd(tgd).expect("valid");
        }
    }

    // Group table relations (excluding roots) for selection.
    let target_groups: Vec<Vec<RelId>> = (1..=GROUPS)
        .map(|g| {
            TABLES
                .iter()
                .map(|base| {
                    dst_encoded
                        .schema
                        .rel_id(&format!("{base}{g}"))
                        .expect("target table exists")
                })
                .collect()
        })
        .collect();

    FlatScenario {
        scenario: Scenario {
            name: format!("flat-hierarchy-M{joins}"),
            pool,
            mapping,
            source: encoded_src.instance,
        },
        src_nested,
        dst_nested,
        dst_encoded,
        target_groups,
    }
}

/// Populate TPC-H-shaped children under `root` in a nested instance. Mirrors
/// [`crate::tpch::populate`] but emits tree nodes.
fn populate_children(
    tree: &mut NestedInstance,
    schema: &NestedSchema,
    pool: &mut ValuePool,
    root: routes_nested::NodeId,
    suffix: &str,
    rows: &TpchRows,
    seed: u64,
) {
    // Generate into a scratch flat instance, then lift tuples to children.
    let mut scratch_schema = routes_model::Schema::new();
    let rels = crate::tpch::add_tpch_relations(&mut scratch_schema, suffix);
    let mut scratch = Instance::new(&scratch_schema);
    crate::tpch::populate(&mut scratch, pool, &rels, rows, seed);
    for (base, &rel) in TABLES.iter().zip(&rels) {
        let ty = schema
            .type_by_name(&format!("{base}{suffix}"))
            .expect("set type exists");
        for (_, values) in scratch.rel_tuples(rel) {
            tree.add_child(schema, root, ty, &values);
        }
    }
}

/// Row-count knobs for the deep-hierarchy scenario.
#[derive(Debug, Clone, Copy)]
pub struct DeepRows {
    /// Number of regions (the paper's TPC-H instance has 5 — and notes that
    /// depth-1 selections are capped at 5 for exactly this reason).
    pub regions: usize,
    /// Nations per region.
    pub nations_per: usize,
    /// Customers per nation.
    pub customers_per: usize,
    /// Orders per customer.
    pub orders_per: usize,
    /// Lineitems per order.
    pub lineitems_per: usize,
}

impl Default for DeepRows {
    /// Approximates the paper's 700 KB instance (~4k nodes).
    fn default() -> Self {
        DeepRows {
            regions: 5,
            nations_per: 5,
            customers_per: 8,
            orders_per: 5,
            lineitems_per: 3,
        }
    }
}

impl DeepRows {
    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        let r = self.regions;
        let n = r * self.nations_per;
        let c = n * self.customers_per;
        let o = c * self.orders_per;
        let l = o * self.lineitems_per;
        r + n + c + o + l
    }
}

/// The deep-hierarchy scenario (paper Figure 11).
#[derive(Debug, Clone)]
pub struct DeepScenario {
    /// Mapping + encoded source instance.
    pub scenario: Scenario,
    /// Nested source schema (the 5-level chain).
    pub src_nested: NestedSchema,
    /// Nested target schema (identical chain, suffix 1).
    pub dst_nested: NestedSchema,
    /// The target encoding.
    pub dst_encoded: EncodedSchema,
    /// Target relation per depth (index 0 = depth 1 = `Region1`).
    pub depth_rels: Vec<RelId>,
}

impl DeepScenario {
    /// Select `n` random target elements at nesting depth `depth` (1..=5).
    pub fn select_at_depth(&self, j: &Instance, depth: usize, n: usize, seed: u64) -> Vec<TupleId> {
        random_tuples(j, &[self.depth_rels[depth - 1]], n, seed)
    }

    /// Maximum depth (5).
    pub fn max_depth(&self) -> usize {
        self.depth_rels.len()
    }
}

const DEEP_LEVELS: [(&str, &[&str]); 5] = [
    ("Region", &["rname"]),
    ("Nation", &["nname"]),
    ("Customer", &["cname", "acctbal"]),
    ("Orders", &["totalprice"]),
    ("Lineitem", &["quantity", "extendedprice"]),
];

/// Build the deep-hierarchy scenario: identical 5-level source and target
/// schemas, one s-t tgd copying the source into the target, no target tgds.
pub fn deep_scenario(rows: &DeepRows, seed: u64) -> DeepScenario {
    let build_nested = |suffix: &str| -> NestedSchema {
        let mut s = NestedSchema::new();
        let mut parent = None;
        for (base, attrs) in DEEP_LEVELS {
            let name = format!("{base}{suffix}");
            parent = Some(match parent {
                None => s.add_root(&name, attrs),
                Some(p) => s.add_child(p, &name, attrs),
            });
        }
        s
    };
    let src_nested = build_nested("0");
    let dst_nested = build_nested("1");
    let src_encoded = encode_schema(&src_nested);
    let dst_encoded = encode_schema(&dst_nested);

    // Source tree.
    let mut pool = ValuePool::new();
    let mut tree = NestedInstance::new();
    let mut rng = Rng::seed_from_u64(seed);
    let region_ty = src_nested.type_by_name("Region0").unwrap();
    let nation_ty = src_nested.type_by_name("Nation0").unwrap();
    let customer_ty = src_nested.type_by_name("Customer0").unwrap();
    let orders_ty = src_nested.type_by_name("Orders0").unwrap();
    let lineitem_ty = src_nested.type_by_name("Lineitem0").unwrap();
    for r in 0..rows.regions {
        let rname = pool.str(&format!("Region#{r}"));
        let rnode = tree.add_root(&src_nested, region_ty, &[rname]);
        for n in 0..rows.nations_per {
            let nname = pool.str(&format!("Nation#{r}-{n}"));
            let nnode = tree.add_child(&src_nested, rnode, nation_ty, &[nname]);
            for c in 0..rows.customers_per {
                let cname = pool.str(&format!("Cust#{r}-{n}-{c}"));
                let bal = Value::Int(rng.gen_range(-999..9_999));
                let cnode = tree.add_child(&src_nested, nnode, customer_ty, &[cname, bal]);
                for _ in 0..rows.orders_per {
                    let total = Value::Int(rng.gen_range(100..99_999));
                    let onode = tree.add_child(&src_nested, cnode, orders_ty, &[total]);
                    for _ in 0..rows.lineitems_per {
                        let qty = Value::Int(rng.gen_range(1..50));
                        let price = Value::Int(rng.gen_range(100..9_999));
                        tree.add_child(&src_nested, onode, lineitem_ty, &[qty, price]);
                    }
                }
            }
        }
    }
    let encoded_src = encode_instance(&src_nested, &src_encoded, &tree);

    // The single copying s-t tgd over the full path.
    let leaf = src_nested.type_by_name("Lineitem0").unwrap();
    let path = src_nested.path_to(leaf);
    let dst_names: Vec<String> = DEEP_LEVELS.iter().map(|(b, _)| format!("{b}1")).collect();
    let dst_name_refs: Vec<&str> = dst_names.iter().map(String::as_str).collect();
    let text = copy_tree_tgd("copy", &src_nested, &path, &dst_name_refs);
    let mut mapping = SchemaMapping::new(src_encoded.schema.clone(), dst_encoded.schema.clone());
    mapping
        .add_st_tgd(
            parse_st_tgd(&src_encoded.schema, &dst_encoded.schema, &mut pool, &text)
                .expect("copy tgd parses"),
        )
        .expect("copy tgd valid");

    let depth_rels: Vec<RelId> = dst_names
        .iter()
        .map(|n| dst_encoded.schema.rel_id(n).expect("depth relation"))
        .collect();

    DeepScenario {
        scenario: Scenario {
            name: "deep-hierarchy".into(),
            pool,
            mapping,
            source: encoded_src.instance,
        },
        src_nested,
        dst_nested,
        dst_encoded,
        depth_rels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::satisfy::is_solution;

    #[test]
    fn flat_scenario_chases_to_a_solution() {
        let mut sc = flat_scenario(1, &TpchRows::scale(0.0002), 5);
        let result = sc.scenario.solution().unwrap();
        assert!(is_solution(
            &sc.scenario.mapping,
            &sc.scenario.source,
            &result.target
        ));
        // Every group's Root relation has the copied root.
        for g in 1..=GROUPS {
            let root = sc.dst_encoded.schema.rel_id(&format!("Root{g}")).unwrap();
            assert_eq!(result.target.rel_len(root), 1);
        }
        let picks = sc.select_from_group(&result.target, 2, 5, 1);
        assert_eq!(picks.len(), 5);
    }

    #[test]
    fn deep_scenario_preserves_tree_shape() {
        let rows = DeepRows {
            regions: 2,
            nations_per: 2,
            customers_per: 2,
            orders_per: 2,
            lineitems_per: 2,
        };
        let mut sc = deep_scenario(&rows, 5);
        assert_eq!(sc.scenario.source.total_tuples(), rows.total_nodes());
        let result = sc.scenario.solution().unwrap();
        assert!(is_solution(
            &sc.scenario.mapping,
            &sc.scenario.source,
            &result.target
        ));
        // Identity copy: the target has the same number of tuples per level.
        for (d, &rel) in sc.depth_rels.iter().enumerate() {
            let src_rel = sc
                .scenario
                .mapping
                .source()
                .rel_id(&format!("{}0", DEEP_LEVELS[d].0))
                .unwrap();
            assert_eq!(
                result.target.rel_len(rel),
                sc.scenario.source.rel_len(src_rel),
                "level {d} copied 1:1"
            );
        }
        // Depth selection picks from the right relation.
        let deep = sc.select_at_depth(&result.target, 5, 3, 9);
        assert_eq!(deep.len(), 3);
        assert!(deep.iter().all(|t| t.rel == sc.depth_rels[4]));
        // Decode the target back into a tree: structure intact.
        let tree = routes_nested::decode_instance(&sc.dst_nested, &sc.dst_encoded, &result.target);
        assert_eq!(tree.roots().len(), rows.regions);
        assert_eq!(tree.len(), rows.total_nodes());
    }

    #[test]
    fn deep_rows_total() {
        let d = DeepRows::default();
        assert_eq!(d.total_nodes(), 5 + 25 + 200 + 1000 + 3000);
    }
}
