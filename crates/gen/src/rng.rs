//! A small deterministic PRNG so the workspace builds with no external
//! dependencies (the build environment has no crates.io access).
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014): a 64-bit state advanced by
//! a Weyl sequence and finalized with an avalanching mix. It passes BigCrush
//! when used as a stream, is trivially seedable from a `u64`, and — the
//! property every generator and test in this workspace relies on — is fully
//! deterministic for a fixed seed, forever, on every platform.
//!
//! The API mirrors the subset of `rand` the workspace used
//! (`seed_from_u64`, `gen_range` over integer ranges, `gen_bool`), so the
//! generators ported from `rand::StdRng` read identically.

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a 64-bit seed. Distinct seeds yield
    /// independent-looking streams (the mix function avalanches).
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via the widening-multiply reduction
    /// (Lemire); `bound` must be nonzero.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// A uniform value from an integer range (`lo..hi` or `lo..=hi`).
    /// Panics on empty ranges, like `rand::Rng::gen_range`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Integer ranges [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Known first output of SplitMix64 with seed 0 (reference value from
        // the published algorithm).
        assert_eq!(Rng::seed_from_u64(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = Rng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
        for _ in 0..500 {
            let v = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
        }
        let mut hit_hi = false;
        for _ in 0..200 {
            if rng.gen_range(1..=2usize) == 2 {
                hit_hi = true;
            }
        }
        assert!(hit_hi, "inclusive upper endpoint reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(1);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.15)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.15).abs() < 0.02, "observed {frac}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 20-element shuffle is a non-identity w.h.p.");
    }
}
