//! The paper's running examples as ready-made scenarios:
//!
//! * [`fargo_scenario`] — Figures 1 and 2: the Manhattan Credit / Fargo Bank
//!   → Fargo Finance mapping with the exact source instance `I` and solution
//!   `J` of Figure 2 (including its labeled nulls `N1`, `M1..M5`, `I1`,
//!   `A1`). This is the playground for the §2.1 debugging scenarios.
//! * [`toy_scenario_3_5`] — Example 3.5's mapping σ1..σ8 with
//!   `I = {S1(a), S2(a)}` and `J = {T1(a)..T7(a)}` (Figure 5's route tree).

use routes_mapping::{parse_egd, parse_st_tgd, parse_target_tgd, SchemaMapping};
use routes_model::{Instance, Schema, TupleId, Value, ValuePool};

use crate::scenario::Scenario;

/// The Figure 1/2 scenario with its hand-crafted solution and the paper's
/// tuple labels.
#[derive(Debug, Clone)]
pub struct FargoScenario {
    /// Mapping and source instance `I`.
    pub scenario: Scenario,
    /// The solution `J` of Figure 2 (as produced by Clio in the paper —
    /// hand-crafted here, not chased).
    pub solution: Instance,
    /// Source tuples `s1..s6` in paper order.
    pub s: [TupleId; 6],
    /// Target tuples `t1..t10` in paper order.
    pub t: [TupleId; 10],
}

/// Build the Manhattan Credit / Fargo Bank → Fargo Finance scenario
/// (paper Figures 1 and 2).
pub fn fargo_scenario() -> FargoScenario {
    let mut pool = ValuePool::new();
    let mut s = Schema::new();
    let cards = s.rel(
        "Cards",
        &[
            "cardNo",
            "limit",
            "ssn",
            "name",
            "maidenName",
            "salary",
            "location",
        ],
    );
    let supp = s.rel("SupplementaryCards", &["accNo", "ssn", "name", "address"]);
    let fba = s.rel(
        "FBAccounts",
        &["bankNo", "ssn", "name", "income", "address"],
    );
    let cc = s.rel("CreditCards", &["cardNo", "creditLimit", "custSSN"]);
    let mut t = Schema::new();
    let accounts = t.rel("Accounts", &["accNo", "limit", "accHolder"]);
    let clients = t.rel(
        "Clients",
        &["ssn", "name", "maidenName", "income", "address"],
    );

    let mut mapping = SchemaMapping::new(s.clone(), t.clone());
    let st = [
        "m1: Cards(cn, l, s, n, m, sal, loc) -> exists A: Accounts(cn, l, s) & Clients(s, m, m, sal, A)",
        "m2: SupplementaryCards(an, s, n, a) -> exists M, I: Clients(s, n, M, I, a)",
        "m3: FBAccounts(bn, s, n, i, a) & CreditCards(cn, cl, cs) -> \
           exists M: Accounts(cn, cl, cs) & Clients(cs, n, M, i, a)",
    ];
    for text in st {
        mapping
            .add_st_tgd(parse_st_tgd(&s, &t, &mut pool, text).expect("paper tgd parses"))
            .expect("paper tgd valid");
    }
    mapping
        .add_target_tgd(
            parse_target_tgd(
                &t,
                &mut pool,
                "m4: Accounts(a, l, s) -> exists N, M, I, A: Clients(s, N, M, I, A)",
            )
            .expect("m4 parses"),
        )
        .expect("m4 valid");
    mapping
        .add_target_tgd(
            parse_target_tgd(
                &t,
                &mut pool,
                "m5: Clients(s, n, m, i, a) -> exists N, L: Accounts(N, L, s)",
            )
            .expect("m5 parses"),
        )
        .expect("m5 valid");
    mapping
        .add_egd(
            parse_egd(
                &t,
                &mut pool,
                "m6: Accounts(a, l, s) & Accounts(a2, l2, s) -> l = l2",
            )
            .expect("m6 parses"),
        )
        .expect("m6 valid");

    // Source instance I (Figure 2). Money values are strings like "15K" to
    // match the paper's rendering; keys and SSNs are integers.
    let v = |pool: &mut ValuePool, text: &str| pool.str(text);
    let (jlong, smith, seattle) = (
        v(&mut pool, "J. Long"),
        v(&mut pool, "Smith"),
        v(&mut pool, "Seattle"),
    );
    let (along, california) = (v(&mut pool, "A. Long"), v(&mut pool, "California"));
    let (cdon, newyork) = (v(&mut pool, "C. Don"), v(&mut pool, "New York"));
    let (k15, k50, k30, k900, k2, k40) = (
        v(&mut pool, "15K"),
        v(&mut pool, "50K"),
        v(&mut pool, "30K"),
        v(&mut pool, "900K"),
        v(&mut pool, "2K"),
        v(&mut pool, "40K"),
    );
    let mut i = Instance::new(&s);
    let s1 = i.insert_ok(
        cards,
        &[
            Value::Int(6689),
            k15,
            Value::Int(434),
            jlong,
            smith,
            k50,
            seattle,
        ],
    );
    let s2 = i.insert_ok(
        supp,
        &[Value::Int(6689), Value::Int(234), along, california],
    );
    let s3 = i.insert_ok(
        fba,
        &[Value::Int(1001), Value::Int(234), along, k30, california],
    );
    let s4 = i.insert_ok(
        fba,
        &[Value::Int(4341), Value::Int(153), cdon, k900, newyork],
    );
    let s5 = i.insert_ok(cc, &[Value::Int(2252), k2, Value::Int(234)]);
    let s6 = i.insert_ok(cc, &[Value::Int(5539), k40, Value::Int(153)]);

    // Solution J (Figure 2), with its labeled nulls.
    let n1 = pool.named_null("N1");
    let (m1n, m2n, m3n, m4n, m5n) = (
        pool.named_null("M1"),
        pool.named_null("M2"),
        pool.named_null("M3"),
        pool.named_null("M4"),
        pool.named_null("M5"),
    );
    let i1 = pool.named_null("I1");
    let a1 = pool.named_null("A1");
    let mut j = Instance::new(&t);
    let t1 = j.insert_ok(accounts, &[Value::Int(6689), k15, Value::Int(434)]);
    let t2 = j.insert_ok(accounts, &[n1, k2, Value::Int(234)]);
    let t3 = j.insert_ok(accounts, &[Value::Int(2252), k2, Value::Int(234)]);
    let t4 = j.insert_ok(accounts, &[Value::Int(5539), k40, Value::Int(153)]);
    let t5 = j.insert_ok(clients, &[Value::Int(434), smith, smith, k50, a1]);
    let t6 = j.insert_ok(clients, &[Value::Int(234), along, m1n, i1, california]);
    let t7 = j.insert_ok(clients, &[Value::Int(153), along, m2n, k30, california]);
    let t8 = j.insert_ok(clients, &[Value::Int(234), along, m3n, k30, california]);
    let t9 = j.insert_ok(clients, &[Value::Int(153), cdon, m4n, k900, newyork]);
    let t10 = j.insert_ok(clients, &[Value::Int(234), cdon, m5n, k900, newyork]);

    FargoScenario {
        scenario: Scenario {
            name: "fargo".into(),
            pool,
            mapping,
            source: i,
        },
        solution: j,
        s: [s1, s2, s3, s4, s5, s6],
        t: [t1, t2, t3, t4, t5, t6, t7, t8, t9, t10],
    }
}

/// The toy scenario of Example 3.5 / Figure 5, with the tuples of
/// `J = {T1(a)..T7(a)}` returned in order.
pub fn toy_scenario_3_5() -> (Scenario, Instance, Vec<TupleId>) {
    let mut s = Schema::new();
    for r in ["S1", "S2", "S3"] {
        s.rel(r, &["x"]);
    }
    let mut t = Schema::new();
    for r in ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"] {
        t.rel(r, &["x"]);
    }
    let mut pool = ValuePool::new();
    let mut mapping = SchemaMapping::new(s.clone(), t.clone());
    for (name, text) in [("s1", "S1(x) -> T1(x)"), ("s2", "S2(x) -> T2(x)")] {
        let tgd = parse_st_tgd(&s, &t, &mut pool, &format!("{name}: {text}")).unwrap();
        mapping.add_st_tgd(tgd).unwrap();
    }
    for (name, text) in [
        ("s3", "T2(x) -> T3(x)"),
        ("s4", "T3(x) -> T4(x)"),
        ("s5", "T4(x) & T1(x) -> T5(x)"),
        ("s6", "T4(x) & T6(x) -> T7(x)"),
        ("s7", "T5(x) -> T3(x)"),
        ("s8", "T5(x) -> T6(x)"),
    ] {
        let tgd = parse_target_tgd(&t, &mut pool, &format!("{name}: {text}")).unwrap();
        mapping.add_target_tgd(tgd).unwrap();
    }
    let a = pool.str("a");
    let mut i = Instance::new(&s);
    i.insert_ok(s.rel_id("S1").unwrap(), &[a]);
    i.insert_ok(s.rel_id("S2").unwrap(), &[a]);
    let mut j = Instance::new(&t);
    let tuples: Vec<TupleId> = ["T1", "T2", "T3", "T4", "T5", "T6", "T7"]
        .iter()
        .map(|r| j.insert_ok(t.rel_id(r).unwrap(), &[a]))
        .collect();
    (
        Scenario {
            name: "example-3.5".into(),
            pool,
            mapping,
            source: i,
        },
        j,
        tuples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::satisfy::is_solution;

    #[test]
    fn figure_2_solution_satisfies_the_mapping() {
        let fargo = fargo_scenario();
        assert!(is_solution(
            &fargo.scenario.mapping,
            &fargo.scenario.source,
            &fargo.solution
        ));
        assert_eq!(fargo.scenario.source.total_tuples(), 6);
        assert_eq!(fargo.solution.total_tuples(), 10);
    }

    #[test]
    fn toy_scenario_matches_example_3_5() {
        let (sc, j, tuples) = toy_scenario_3_5();
        assert_eq!(sc.mapping.st_tgds().len(), 2);
        assert_eq!(sc.mapping.target_tgds().len(), 6);
        assert_eq!(j.total_tuples(), 7);
        assert_eq!(tuples.len(), 7);
        assert!(is_solution(&sc.mapping, &sc.source, &j));
    }
}
