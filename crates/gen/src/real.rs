//! Synthetic stand-ins for the paper's real datasets (§4.2, Table 1).
//!
//! The actual DBLP, Amalgam, and Mondial data cannot be redistributed here,
//! so these builders reproduce what the experiment actually measures: the
//! *shape* of the schemas (element counts, nesting depths), the dependency
//! counts (DBLP: 10 s-t / 14 target tgds; Mondial: 13 s-t / 25 target tgds),
//! and instance sizes in the same range (~0.6–1.2 MB). Exact schema element
//! counts are approximations of Table 1 and are reported side by side with
//! the paper's numbers by the benchmark harness.
//!
//! Both dependency sets are *weakly acyclic and Skolem-safe* (no cyclic
//! existential creation), so they terminate under either chase mode; the
//! Table 1 benchmark uses the standard (`Fresh`) chase, which produces the
//! cleanest solutions, mirroring how Clio materialized these targets.

use crate::rng::Rng;
use routes_mapping::{parse_egd, parse_st_tgd, parse_target_tgd, SchemaMapping};
use routes_model::{Instance, Schema, Value, ValuePool};
use routes_nested::{encode_instance, encode_schema, NestedInstance, NestedSchema};

use crate::scenario::Scenario;

/// Schema-shape statistics for the Table 1 report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaStats {
    /// Display name (e.g. `DBLP1(XML)`).
    pub name: String,
    /// Total elements (record types + attributes for nested schemas;
    /// relations + attributes for relational ones).
    pub total_elems: usize,
    /// Atomic elements (attributes).
    pub atomic_elems: usize,
    /// Nesting depth (1 for relational).
    pub depth: usize,
    /// Source-instance tuple count (a size proxy; the paper reports KB).
    pub tuples: usize,
}

/// A built real-dataset scenario with its Table 1 statistics.
#[derive(Debug, Clone)]
pub struct RealScenario {
    /// Mapping + source instance.
    pub scenario: Scenario,
    /// Per-schema statistics (sources then target).
    pub stats: Vec<SchemaStats>,
    /// The nested target schema, when the target is hierarchical (Mondial2);
    /// `None` for relational targets (Amalgam1).
    pub nested_target: Option<NestedSchema>,
}

// ---------------------------------------------------------------------------
// DBLP (+DBLP2) → Amalgam1: XML sources, relational target; 10 / 14 tgds.
// ---------------------------------------------------------------------------

/// Row counts for the DBLP sources at `scale` = 1.0 (≈ the paper's 640 KB +
/// 850 KB instances).
#[derive(Debug, Clone, Copy)]
struct DblpRows {
    article: usize,
    inproceedings: usize,
    book: usize,
    incollection: usize,
    phd: usize,
    masters: usize,
    www: usize,
    proceedings: usize,
    authorship: usize,
    conferences: usize,
    editions_per: usize,
    papers_per: usize,
    authors_per: usize,
}

impl DblpRows {
    fn scale(s: f64) -> Self {
        let n = |base: f64| ((base * s).round() as usize).max(1);
        DblpRows {
            article: n(2_000.0),
            inproceedings: n(2_500.0),
            book: n(300.0),
            incollection: n(300.0),
            phd: n(100.0),
            masters: n(100.0),
            www: n(200.0),
            proceedings: n(300.0),
            authorship: n(5_000.0),
            conferences: n(80.0),
            editions_per: 5,
            papers_per: 8,
            authors_per: 2,
        }
    }
}

/// Build the DBLP scenario: two XML sources (flat DBLP1, depth-4 DBLP2)
/// mapped into the relational Amalgam1 schema with 10 s-t and 14 target
/// tgds.
pub fn dblp_scenario(scale: f64, seed: u64) -> RealScenario {
    let rows = DblpRows::scale(scale);
    let mut pool = ValuePool::new();
    let mut rng = Rng::seed_from_u64(seed);

    // --- Source: DBLP1 (flat XML, depth 1) -------------------------------
    let mut dblp1 = NestedSchema::new();
    let root1 = dblp1.add_root("D1Root", &[]);
    let d1_article = dblp1.add_child(
        root1,
        "D1Article",
        &[
            "key", "title", "journal", "volume", "number", "year", "month", "pages", "ee",
        ],
    );
    let d1_inproc = dblp1.add_child(
        root1,
        "D1Inproceedings",
        &[
            "key",
            "title",
            "booktitle",
            "year",
            "pages",
            "author",
            "crossref",
        ],
    );
    let d1_book = dblp1.add_child(
        root1,
        "D1Book",
        &["key", "title", "publisher", "isbn", "year", "author"],
    );
    let d1_incoll = dblp1.add_child(
        root1,
        "D1Incollection",
        &["key", "title", "booktitle", "year", "pages", "publisher"],
    );
    let d1_phd = dblp1.add_child(
        root1,
        "D1Phdthesis",
        &["key", "title", "school", "year", "author"],
    );
    let d1_masters = dblp1.add_child(
        root1,
        "D1Mastersthesis",
        &["key", "title", "school", "year", "author"],
    );
    let d1_www = dblp1.add_child(root1, "D1Www", &["key", "title", "url", "year"]);
    let d1_proc = dblp1.add_child(
        root1,
        "D1Proceedings",
        &["key", "title", "booktitle", "publisher", "year", "isbn"],
    );
    let d1_authorship = dblp1.add_child(root1, "D1Authorship", &["pubkey", "author", "position"]);

    // --- Source: DBLP2 (nested XML, depth 4) ------------------------------
    let mut dblp2 = NestedSchema::new();
    let d2_conf = dblp2.add_root("D2Conference", &["name", "acronym", "publisher"]);
    let d2_edition = dblp2.add_child(d2_conf, "D2Edition", &["year", "location", "isbn"]);
    let d2_paper = dblp2.add_child(d2_edition, "D2Paper", &["title", "pages", "url"]);
    let d2_author = dblp2.add_child(d2_paper, "D2PaperAuthor", &["name"]);

    // Both sources live in one flat source schema (two encodings merged).
    let enc1 = encode_schema(&dblp1);
    let enc2 = encode_schema(&dblp2);
    let mut source_schema = Schema::new();
    for (_, rel) in enc1.schema.iter().chain(enc2.schema.iter()) {
        let attrs: Vec<&str> = rel.attrs().iter().map(String::as_str).collect();
        source_schema.rel(rel.name(), &attrs);
    }

    // --- Target: Amalgam1 (relational) ------------------------------------
    let mut target = Schema::new();
    for (name, attrs) in [
        (
            "TArticle",
            vec![
                "id", "key", "title", "journal", "volume", "number", "year", "month", "pages",
            ],
        ),
        (
            "TBook",
            vec!["id", "key", "title", "publisher", "isbn", "year"],
        ),
        (
            "TInCollection",
            vec![
                "id",
                "key",
                "title",
                "booktitle",
                "year",
                "pages",
                "publisher",
            ],
        ),
        (
            "TInProceedings",
            vec!["id", "key", "title", "conf", "year", "pages"],
        ),
        ("TMisc", vec!["id", "key", "title", "howpublished", "year"]),
        (
            "TManual",
            vec!["id", "key", "title", "organization", "year"],
        ),
        (
            "TMastersThesis",
            vec!["id", "key", "title", "school", "year"],
        ),
        ("TPhDThesis", vec!["id", "key", "title", "school", "year"]),
        (
            "TProceedings",
            vec!["id", "key", "title", "conf", "publisher", "year", "isbn"],
        ),
        (
            "TTechReport",
            vec!["id", "key", "title", "institution", "number", "year"],
        ),
        ("TUnpublished", vec!["id", "key", "title", "note", "year"]),
        ("TWWW", vec!["id", "key", "title", "url", "year"]),
        ("TAuthor", vec!["aid", "name"]),
        ("TJournal", vec!["jid", "name"]),
        ("TConference", vec!["cid", "name"]),
        ("TArticlePublished", vec!["aid", "pubid", "position"]),
        ("TBookPublished", vec!["aid", "pubid", "position"]),
        ("TInProcPublished", vec!["aid", "pubid", "position"]),
        ("TProcEditor", vec!["aid", "procid"]),
        ("TCite", vec!["citing", "cited"]),
    ] {
        target.rel(name, &attrs.to_vec());
    }

    // --- Dependencies ------------------------------------------------------
    let mut mapping = SchemaMapping::new(source_schema.clone(), target.clone());
    let st = [
        "d_art: D1Article(s, p, key, title, journal, vol, num, year, month, pages, ee) -> \
           exists ID, JID: TArticle(ID, key, title, JID, vol, num, year, month, pages) & TJournal(JID, journal)",
        "d_inproc: D1Inproceedings(s, p, key, title, booktitle, year, pages, author, cr) -> \
           exists ID, AID, CID: TInProceedings(ID, key, title, CID, year, pages) & TConference(CID, booktitle) \
           & TAuthor(AID, author) & TInProcPublished(AID, ID, 1)",
        "d_book: D1Book(s, p, key, title, publisher, isbn, year, author) -> \
           exists ID, AID: TBook(ID, key, title, publisher, isbn, year) & TAuthor(AID, author) \
           & TBookPublished(AID, ID, 1)",
        "d_incoll: D1Incollection(s, p, key, title, booktitle, year, pages, publisher) -> \
           exists ID: TInCollection(ID, key, title, booktitle, year, pages, publisher)",
        "d_phd: D1Phdthesis(s, p, key, title, school, year, author) -> \
           exists ID, AID: TPhDThesis(ID, key, title, school, year) & TAuthor(AID, author)",
        "d_masters: D1Mastersthesis(s, p, key, title, school, year, author) -> \
           exists ID, AID: TMastersThesis(ID, key, title, school, year) & TAuthor(AID, author)",
        "d_www: D1Www(s, p, key, title, url, year) -> exists ID: TWWW(ID, key, title, url, year)",
        "d_proc: D1Proceedings(s, p, key, title, booktitle, publisher, year, isbn) -> \
           exists ID, CID: TProceedings(ID, key, title, CID, publisher, year, isbn) & TConference(CID, booktitle)",
        "d_auth: D1Authorship(s, p, pubkey, author, pos) -> \
           exists AID, PID, T, J, V, N, Y, M, PG: TAuthor(AID, author) & TArticlePublished(AID, PID, pos) \
           & TArticle(PID, pubkey, T, J, V, N, Y, M, PG)",
        "d_d2: D2Conference(c, cp, cname, acr, publ) & D2Edition(e, c, year, loc, isbn) & \
           D2Paper(pp, e, title, pages, url) & D2PaperAuthor(a, pp, aname) -> \
           exists ID, AID, CID, K: TInProceedings(ID, K, title, CID, year, pages) & TConference(CID, cname) \
           & TAuthor(AID, aname) & TInProcPublished(AID, ID, 1)",
    ];
    for text in st {
        let tgd = parse_st_tgd(&source_schema, &target, &mut pool, text)
            .unwrap_or_else(|e| panic!("DBLP s-t tgd must parse: {e}\n{text}"));
        mapping.add_st_tgd(tgd).expect("valid DBLP s-t tgd");
    }
    let tt = [
        // Junction inclusions.
        "fk1: TArticlePublished(a, p, pos) -> exists N: TAuthor(a, N)",
        "fk2: TArticlePublished(a, p, pos) -> exists K, T, J, V, N, Y, M, PG: TArticle(p, K, T, J, V, N, Y, M, PG)",
        "fk3: TBookPublished(a, b, pos) -> exists N: TAuthor(a, N)",
        "fk4: TBookPublished(a, b, pos) -> exists K, T, P, I, Y: TBook(b, K, T, P, I, Y)",
        "fk5: TInProcPublished(a, i, pos) -> exists N: TAuthor(a, N)",
        "fk6: TInProcPublished(a, i, pos) -> exists K, T, C, Y, P: TInProceedings(i, K, T, C, Y, P)",
        // Entity references.
        "fk7: TArticle(id, k, t, j, v, n, y, m, p) -> exists N: TJournal(j, N)",
        "fk8: TInProceedings(id, k, t, c, y, p) -> exists N: TConference(c, N)",
        "fk9: TProceedings(id, k, t, c, pub, y, i) -> exists N: TConference(c, N)",
        "fk10: TInCollection(id, k, t, bt, y, p, pub) -> exists B, K2, I, Y2: TBook(B, K2, bt, pub, I, Y2)",
        // Editors and citations.
        "fk11: TProcEditor(a, pr) -> exists N: TAuthor(a, N)",
        "fk12: TProcEditor(a, pr) -> exists K, T, C, P, Y, I: TProceedings(pr, K, T, C, P, Y, I)",
        "fk13: TCite(x, y) -> exists K, T, J, V, N, Y, M, P: TArticle(x, K, T, J, V, N, Y, M, P)",
        "fk14: TCite(x, y) -> exists K, T, J, V, N, Y, M, P: TArticle(y, K, T, J, V, N, Y, M, P)",
    ];
    for text in tt {
        let tgd = parse_target_tgd(&target, &mut pool, text)
            .unwrap_or_else(|e| panic!("DBLP target tgd must parse: {e}\n{text}"));
        mapping.add_target_tgd(tgd).expect("valid DBLP target tgd");
    }

    // --- Data --------------------------------------------------------------
    let mut tree1 = NestedInstance::new();
    let root = tree1.add_root(&dblp1, root1, &[]);
    let journals: Vec<Value> = (0..40).map(|k| pool.str(&format!("Journal#{k}"))).collect();
    let venues: Vec<Value> = (0..60).map(|k| pool.str(&format!("Conf#{k}"))).collect();
    let publishers: Vec<Value> = (0..20).map(|k| pool.str(&format!("Pub#{k}"))).collect();
    let schools: Vec<Value> = (0..30).map(|k| pool.str(&format!("School#{k}"))).collect();
    let mut authors: Vec<Value> = Vec::new();
    for k in 0..(rows.article / 2).max(8) {
        authors.push(pool.str(&format!("Author#{k}")));
    }
    let pick = |rng: &mut Rng, v: &[Value]| v[rng.gen_range(0..v.len())];
    for k in 0..rows.article {
        let key = pool.str(&format!("journals/a{k}"));
        let title = pool.str(&format!("Article Title {k}"));
        let j = pick(&mut rng, &journals);
        let ee = pool.str(&format!("db/journals/a{k}.html"));
        tree1.add_child(
            &dblp1,
            root,
            d1_article,
            &[
                key,
                title,
                j,
                Value::Int((k % 40) as i64 + 1),
                Value::Int((k % 12) as i64 + 1),
                Value::Int(1990 + (k % 16) as i64),
                Value::Int((k % 12) as i64 + 1),
                Value::Int((k % 30) as i64 + 1),
                ee,
            ],
        );
    }
    for k in 0..rows.inproceedings {
        let key = pool.str(&format!("conf/ip{k}"));
        let title = pool.str(&format!("InProc Title {k}"));
        let bt = pick(&mut rng, &venues);
        let a = pick(&mut rng, &authors);
        let cr = pool.str(&format!("conf/cr{}", k % rows.proceedings.max(1)));
        tree1.add_child(
            &dblp1,
            root,
            d1_inproc,
            &[
                key,
                title,
                bt,
                Value::Int(1990 + (k % 16) as i64),
                Value::Int((k % 20) as i64 + 1),
                a,
                cr,
            ],
        );
    }
    for k in 0..rows.book {
        let key = pool.str(&format!("books/b{k}"));
        let title = pool.str(&format!("Book Title {k}"));
        let p = pick(&mut rng, &publishers);
        let isbn = pool.str(&format!("0-000-{k:05}"));
        let a = pick(&mut rng, &authors);
        tree1.add_child(
            &dblp1,
            root,
            d1_book,
            &[key, title, p, isbn, Value::Int(1985 + (k % 20) as i64), a],
        );
    }
    for k in 0..rows.incollection {
        let key = pool.str(&format!("books/ic{k}"));
        let title = pool.str(&format!("InColl Title {k}"));
        let bt = pool.str(&format!("Book Title {}", k % rows.book.max(1)));
        let p = pick(&mut rng, &publishers);
        tree1.add_child(
            &dblp1,
            root,
            d1_incoll,
            &[
                key,
                title,
                bt,
                Value::Int(1990 + (k % 15) as i64),
                Value::Int((k % 25) as i64 + 1),
                p,
            ],
        );
    }
    for (ty, count, prefix) in [(d1_phd, rows.phd, "phd"), (d1_masters, rows.masters, "ms")] {
        for k in 0..count {
            let key = pool.str(&format!("thesis/{prefix}{k}"));
            let title = pool.str(&format!("Thesis Title {prefix}{k}"));
            let school = pick(&mut rng, &schools);
            let a = pick(&mut rng, &authors);
            tree1.add_child(
                &dblp1,
                root,
                ty,
                &[key, title, school, Value::Int(1995 + (k % 10) as i64), a],
            );
        }
    }
    for k in 0..rows.www {
        let key = pool.str(&format!("www/w{k}"));
        let title = pool.str(&format!("Web Page {k}"));
        let url = pool.str(&format!("http://example.org/{k}"));
        tree1.add_child(
            &dblp1,
            root,
            d1_www,
            &[key, title, url, Value::Int(2000 + (k % 6) as i64)],
        );
    }
    for k in 0..rows.proceedings {
        let key = pool.str(&format!("conf/cr{k}"));
        let title = pool.str(&format!("Proceedings {k}"));
        let bt = pick(&mut rng, &venues);
        let p = pick(&mut rng, &publishers);
        let isbn = pool.str(&format!("1-111-{k:05}"));
        tree1.add_child(
            &dblp1,
            root,
            d1_proc,
            &[key, title, bt, p, Value::Int(1990 + (k % 16) as i64), isbn],
        );
    }
    for k in 0..rows.authorship {
        let pubkey = pool.str(&format!("journals/a{}", k % rows.article.max(1)));
        let a = pick(&mut rng, &authors);
        tree1.add_child(
            &dblp1,
            root,
            d1_authorship,
            &[pubkey, a, Value::Int((k % 5) as i64 + 1)],
        );
    }

    let mut tree2 = NestedInstance::new();
    for c in 0..rows.conferences {
        let cname = pick(&mut rng, &venues);
        let acr = pool.str(&format!("ACR{c}"));
        let publ = pick(&mut rng, &publishers);
        let cnode = tree2.add_root(&dblp2, d2_conf, &[cname, acr, publ]);
        for e in 0..rows.editions_per {
            let loc = pool.str(&format!("City#{}", (c + e) % 25));
            let isbn = pool.str(&format!("2-222-{c:03}{e:02}"));
            let enode = tree2.add_child(
                &dblp2,
                cnode,
                d2_edition,
                &[Value::Int(2000 + e as i64), loc, isbn],
            );
            for p in 0..rows.papers_per {
                let title = pool.str(&format!("D2 Paper {c}-{e}-{p}"));
                let url = pool.str(&format!("http://conf{c}.org/{e}/{p}"));
                let pnode = tree2.add_child(
                    &dblp2,
                    enode,
                    d2_paper,
                    &[title, Value::Int((p % 20) as i64 + 1), url],
                );
                for _ in 0..rows.authors_per {
                    let a = pick(&mut rng, &authors);
                    tree2.add_child(&dblp2, pnode, d2_author, &[a]);
                }
            }
        }
    }

    // Merge encodings into the combined source instance.
    let enc1_data = encode_instance(&dblp1, &enc1, &tree1);
    let enc2_data = encode_instance(&dblp2, &enc2, &tree2);
    let mut source = Instance::new(&source_schema);
    copy_into(
        &enc1.schema,
        &enc1_data.instance,
        &source_schema,
        &mut source,
    );
    copy_into(
        &enc2.schema,
        &enc2_data.instance,
        &source_schema,
        &mut source,
    );

    let stats = vec![
        SchemaStats {
            name: "DBLP1(XML)".into(),
            total_elems: dblp1.total_elements(),
            atomic_elems: dblp1.atomic_elements(),
            depth: dblp1.max_depth() - 1, // exclude the synthetic root record
            tuples: tree1.len(),
        },
        SchemaStats {
            name: "DBLP2(XML)".into(),
            total_elems: dblp2.total_elements(),
            atomic_elems: dblp2.atomic_elements(),
            depth: dblp2.max_depth(),
            tuples: tree2.len(),
        },
        SchemaStats {
            name: "Amalgam1(Rel)".into(),
            total_elems: target.len() + target.total_attrs(),
            atomic_elems: target.total_attrs(),
            depth: 1,
            tuples: 0,
        },
    ];

    RealScenario {
        scenario: Scenario {
            name: "dblp-amalgam".into(),
            pool,
            mapping,
            source,
        },
        stats,
        nested_target: None,
    }
}

/// Copy tuples from one instance to another across schemas with matching
/// relation names.
fn copy_into(from_schema: &Schema, from: &Instance, to_schema: &Schema, to: &mut Instance) {
    for (rel_id, rel) in from_schema.iter() {
        let dst = to_schema
            .rel_id(rel.name())
            .expect("merged schema contains all relations");
        for (_, values) in from.rel_tuples(rel_id) {
            to.insert(dst, &values).expect("same arity");
        }
    }
}

// ---------------------------------------------------------------------------
// Mondial: relational source → nested XML target; 13 / 25 tgds.
// ---------------------------------------------------------------------------

/// Build the Mondial scenario: relational geographic source mapped into a
/// depth-4 nested target with 13 s-t tgds and 25 target tgds.
pub fn mondial_scenario(scale: f64, seed: u64) -> RealScenario {
    let n = |base: f64| ((base * scale).round() as usize).max(1);
    let counts_countries = n(240.0);
    let counts_provinces_per = 6;
    let counts_cities_per = 2;
    let counts_pop_per = 2;
    let counts_langs = n(600.0);
    let counts_religions = n(600.0);
    let counts_ethnic = n(400.0);
    let counts_borders = n(600.0);
    let counts_orgs = n(150.0);
    let counts_members = n(2_000.0);
    let counts_geo = n(250.0); // per geographic feature kind
    let mut pool = ValuePool::new();
    let mut rng = Rng::seed_from_u64(seed);

    // --- Source: Mondial1 (relational) ------------------------------------
    let mut source_schema = Schema::new();
    let s_country = source_schema.rel(
        "Country",
        &["code", "name", "capital", "area", "population"],
    );
    let s_province = source_schema.rel(
        "Province",
        &["name", "country", "capital", "area", "population"],
    );
    let s_city = source_schema.rel(
        "City",
        &[
            "name",
            "country",
            "province",
            "population",
            "longitude",
            "latitude",
        ],
    );
    let s_citypop = source_schema.rel("CityPop", &["city", "country", "year", "population"]);
    let s_language = source_schema.rel("Language", &["country", "name", "percentage"]);
    let s_religion = source_schema.rel("Religion", &["country", "name", "percentage"]);
    let s_ethnic = source_schema.rel("EthnicGroup", &["country", "name", "percentage"]);
    let s_border = source_schema.rel("Border", &["country1", "country2", "length"]);
    let s_continent = source_schema.rel("Continent", &["name", "area"]);
    let s_encompasses = source_schema.rel("Encompasses", &["country", "continent", "percentage"]);
    let s_org = source_schema.rel("Organization", &["abbrev", "name", "city", "established"]);
    let s_member = source_schema.rel("IsMember", &["organization", "country", "type"]);
    let s_mountain = source_schema.rel("Mountain", &["name", "height", "country"]);
    let s_river = source_schema.rel("River", &["name", "length", "country"]);
    let s_lake = source_schema.rel("Lake", &["name", "area", "country"]);
    let s_sea = source_schema.rel("Sea", &["name", "depth", "country"]);
    let s_desert = source_schema.rel("Desert", &["name", "area", "country"]);
    let s_island = source_schema.rel("Island", &["name", "area", "country"]);
    // Relations present in the real Mondial schema but not used by the 13
    // s-t tgds (the paper's mapping covers a subset too); they contribute
    // to the Table 1 element counts and give `findHom` realistic negative
    // search space.
    let s_airport = source_schema.rel(
        "Airport",
        &["iata", "name", "country", "city", "elevation", "gmtOffset"],
    );
    let s_economy = source_schema.rel(
        "Economy",
        &[
            "country",
            "gdp",
            "agriculture",
            "industry",
            "services",
            "inflation",
        ],
    );
    let s_popdata = source_schema.rel(
        "PopulationData",
        &["country", "year", "population", "growth"],
    );
    let s_located = source_schema.rel("Located", &["city", "country", "river", "lake", "sea"]);
    let s_merges = source_schema.rel("MergesWith", &["sea1", "sea2"]);
    let s_islandin = source_schema.rel("IslandIn", &["island", "river", "lake", "sea"]);
    let s_politics = source_schema.rel(
        "Politics",
        &["country", "independence", "dependent", "government"],
    );
    let s_riverthrough = source_schema.rel("RiverThrough", &["river", "lake"]);
    let s_springof = source_schema.rel("SpringOf", &["river", "country", "longitude", "latitude"]);

    // --- Target: Mondial2 (nested, depth 4) --------------------------------
    let mut dst_nested = NestedSchema::new();
    let m_country = dst_nested.add_root(
        "MCountry",
        &["code", "name", "capital", "area", "population"],
    );
    let m_province = dst_nested.add_child(
        m_country,
        "MProvince",
        &["name", "capital", "area", "population"],
    );
    let m_city = dst_nested.add_child(m_province, "MCity", &["name", "longitude", "latitude"]);
    let _m_citypop = dst_nested.add_child(m_city, "MCityPop", &["year", "population"]);
    let _m_language = dst_nested.add_child(m_country, "MLanguage", &["name", "percentage"]);
    let _m_religion = dst_nested.add_child(m_country, "MReligion", &["name", "percentage"]);
    let _m_ethnic = dst_nested.add_child(m_country, "MEthnic", &["name", "percentage"]);
    let _m_border = dst_nested.add_child(m_country, "MBorder", &["othercode", "length"]);
    let m_org = dst_nested.add_root("MOrganization", &["abbrev", "name", "established"]);
    let _m_member = dst_nested.add_child(m_org, "MMember", &["countrycode", "type"]);
    let _m_continent = dst_nested.add_root("MContinent", &["name", "area"]);
    let _m_mountain = dst_nested.add_root("MMountain", &["name", "height", "countrycode"]);
    let _m_river = dst_nested.add_root("MRiver", &["name", "length", "countrycode"]);
    let _m_lake = dst_nested.add_root("MLake", &["name", "area", "countrycode"]);
    let _m_sea = dst_nested.add_root("MSea", &["name", "depth", "countrycode"]);
    let _m_desert = dst_nested.add_root("MDesert", &["name", "area", "countrycode"]);
    let _m_island = dst_nested.add_root("MIsland", &["name", "area", "countrycode"]);
    // Record types of the real Mondial XML schema that the 13 s-t tgds do
    // not populate (kept for Table 1 schema-shape fidelity; their relations
    // stay empty in the solution).
    let _m_economy = dst_nested.add_child(
        m_country,
        "MEconomy",
        &["gdp", "agriculture", "industry", "services", "inflation"],
    );
    let _m_politics = dst_nested.add_child(
        m_country,
        "MPolitics",
        &["independence", "dependent", "government"],
    );
    let _m_popgrowth = dst_nested.add_child(
        m_country,
        "MPopGrowth",
        &["year", "rate", "births", "deaths", "infantMortality"],
    );
    let _m_airport = dst_nested.add_child(
        m_city,
        "MAirport",
        &["iata", "name", "elevation", "gmtOffset"],
    );
    let _m_citycoord = dst_nested.add_child(
        m_city,
        "MCityCoord",
        &["longitude", "latitude", "elevation"],
    );
    let _m_estuary = dst_nested.add_root("MEstuary", &["river", "longitude", "latitude"]);
    let _m_spring = dst_nested.add_root("MSpring", &["river", "longitude", "latitude"]);
    let _m_archipelago = dst_nested.add_root("MArchipelago", &["name", "area", "islands"]);
    let _m_located = dst_nested.add_root("MLocated", &["city", "river", "lake", "sea"]);
    let dst_encoded = encode_schema(&dst_nested);
    let target = dst_encoded.schema.clone();

    // --- Dependencies ------------------------------------------------------
    let mut mapping = SchemaMapping::new(source_schema.clone(), target.clone());
    let st = [
        "m_country: Country(code, name, cap, area, pop) -> exists C: MCountry(C, 0, code, name, cap, area, pop)",
        "m_province: Country(code, cn, ccap, car, cpop) & Province(pn, code, pcap, par, ppop) -> \
           exists C, P: MCountry(C, 0, code, cn, ccap, car, cpop) & MProvince(P, C, pn, pcap, par, ppop)",
        "m_city: Country(code, cn, ccap, car, cpop) & Province(pn, code, pcap, par, ppop) & \
           City(name, code, pn, pop, lon, lat) -> \
           exists C, P, T: MCountry(C, 0, code, cn, ccap, car, cpop) & MProvince(P, C, pn, pcap, par, ppop) \
           & MCity(T, P, name, lon, lat)",
        "m_citypop: Country(code, cn, ccap, car, cpop) & Province(pn, code, pcap, par, ppop) & \
           City(name, code, pn, pop, lon, lat) & CityPop(name, code, year, p2) -> \
           exists C, P, T, Q: MCountry(C, 0, code, cn, ccap, car, cpop) & MProvince(P, C, pn, pcap, par, ppop) \
           & MCity(T, P, name, lon, lat) & MCityPop(Q, T, year, p2)",
        "m_language: Country(code, cn, cap, ar, pop) & Language(code, name, pct) -> \
           exists C, L: MCountry(C, 0, code, cn, cap, ar, pop) & MLanguage(L, C, name, pct)",
        "m_religion: Country(code, cn, cap, ar, pop) & Religion(code, name, pct) -> \
           exists C, R: MCountry(C, 0, code, cn, cap, ar, pop) & MReligion(R, C, name, pct)",
        "m_ethnic: Country(code, cn, cap, ar, pop) & EthnicGroup(code, name, pct) -> \
           exists C, E: MCountry(C, 0, code, cn, cap, ar, pop) & MEthnic(E, C, name, pct)",
        "m_border: Country(c1, cn, cap, ar, pop) & Border(c1, c2, len) -> \
           exists C, B: MCountry(C, 0, c1, cn, cap, ar, pop) & MBorder(B, C, c2, len)",
        "m_org: Organization(abbrev, name, city, est) -> exists O: MOrganization(O, 0, abbrev, name, est)",
        "m_member: Organization(abbrev, oname, city, est) & IsMember(abbrev, code, type) -> \
           exists O, M: MOrganization(O, 0, abbrev, oname, est) & MMember(M, O, code, type)",
        "m_continent: Continent(name, area) -> exists K: MContinent(K, 0, name, area)",
        "m_mountain: Mountain(name, height, code) -> exists G: MMountain(G, 0, name, height, code)",
        "m_water: River(name, len, code) -> exists G: MRiver(G, 0, name, len, code)",
    ];
    assert_eq!(st.len(), 13);
    for text in st {
        let tgd = parse_st_tgd(&source_schema, &target, &mut pool, text)
            .unwrap_or_else(|e| panic!("Mondial s-t tgd must parse: {e}\n{text}"));
        mapping.add_st_tgd(tgd).expect("valid Mondial s-t tgd");
    }
    // The 25 target tgds form a *layered* creation graph (junction/child
    // relations are only ever read, entity relations created by them are
    // never read by a creating tgd), so both chase modes terminate.
    let tt = [
        // Child → parent inclusions (the nested schema's structural fks).
        "n1: MProvince(p, c, n, cap, ar, pop) -> exists CO, NA, CA, AR, PO: MCountry(c, 0, CO, NA, CA, AR, PO)",
        "n2: MCity(t, p, n, lon, lat) -> exists PP, NA, CA, AR, PO: MProvince(p, PP, NA, CA, AR, PO)",
        "n3: MCityPop(q, t, y, p2) -> exists PP, NA, LO, LA: MCity(t, PP, NA, LO, LA)",
        "n4: MLanguage(l, c, n, pct) -> exists CO, NA, CA, AR, PO: MCountry(c, 0, CO, NA, CA, AR, PO)",
        "n5: MReligion(r, c, n, pct) -> exists CO, NA, CA, AR, PO: MCountry(c, 0, CO, NA, CA, AR, PO)",
        "n6: MEthnic(e, c, n, pct) -> exists CO, NA, CA, AR, PO: MCountry(c, 0, CO, NA, CA, AR, PO)",
        "n7: MBorder(b, c, oc, len) -> exists CO, NA, CA, AR, PO: MCountry(c, 0, CO, NA, CA, AR, PO)",
        "n8: MMember(m, o, cc, ty) -> exists AB, NA, ES: MOrganization(o, 0, AB, NA, ES)",
        // Cross references by country code.
        "n9: MBorder(b, c, oc, len) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, oc, NA, CA, AR, PO)",
        "n10: MMember(m, o, cc, ty) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, cc, NA, CA, AR, PO)",
        "n11: MMountain(g, p, n, h, cc) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, cc, NA, CA, AR, PO)",
        "n12: MRiver(g, p, n, len, cc) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, cc, NA, CA, AR, PO)",
        "n13: MLake(g, p, n, ar, cc) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, cc, NA, CA, AR, PO)",
        "n14: MSea(g, p, n, d, cc) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, cc, NA, CA, AR, PO)",
        "n15: MDesert(g, p, n, ar, cc) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, cc, NA, CA, AR, PO)",
        "n16: MIsland(g, p, n, ar, cc) -> exists C2, NA, CA, AR, PO: MCountry(C2, 0, cc, NA, CA, AR, PO)",
        // Transitive structural inclusions (join flavours).
        "n17: MCityPop(q, t, y, p2) & MCity(t, p, n, lo, la) -> \
           exists PP, NA, CA, AR, PO: MProvince(p, PP, NA, CA, AR, PO)",
        "n18: MCity(t, p, n, lo, la) & MProvince(p, c, pn, pc, pa, pp) -> \
           exists CO, NA, CA, AR, PO: MCountry(c, 0, CO, NA, CA, AR, PO)",
        "n19: MMember(m, o, cc, ty) & MOrganization(o, z, ab, na, es) -> \
           exists C2, NA2, CA, AR, PO: MCountry(C2, 0, cc, NA2, CA, AR, PO)",
        "n20: MBorder(b, c, oc, len) & MBorder(b2, c2, oc, len2) -> \
           exists C3, NA, CA, AR, PO: MCountry(C3, 0, oc, NA, CA, AR, PO)",
        // Geographic co-presence (waterways and landforms share names).
        "n21: MLake(g, p, n, ar, cc) -> exists G2, LN: MRiver(G2, 0, n, LN, cc)",
        "n22: MDesert(g, p, n, ar, cc) -> exists G2: MIsland(G2, 0, n, ar, cc)",
        "n23: MIsland(g, p, n, ar, cc) -> exists G2, D2: MSea(G2, 0, n, D2, cc)",
        "n24: MRiver(g, p, n, len, cc) & MLake(g2, p2, n2, ar, cc) -> \
           exists C2, NA, CA, AR2, PO: MCountry(C2, 0, cc, NA, CA, AR2, PO)",
        "n25: MEthnic(e, c, n, pct) & MLanguage(l, c, n2, pct2) -> \
           exists CO, NA, CA, AR, PO: MCountry(c, 0, CO, NA, CA, AR, PO)",
    ];
    assert_eq!(tt.len(), 25);
    for text in tt {
        let tgd = parse_target_tgd(&target, &mut pool, text)
            .unwrap_or_else(|e| panic!("Mondial target tgd must parse: {e}\n{text}"));
        mapping
            .add_target_tgd(tgd)
            .expect("valid Mondial target tgd");
    }
    // Key egds on the nested entities (the paper's Scenario 2 suggests
    // exactly this: "enforce ssn as a key ... which can be expressed as
    // egds"). They merge the per-tgd labeled nulls so each country,
    // province, city, and organization exists once in the solution — Clio
    // could not execute egds (paper §2); our chase can.
    let egds = [
        "k_c: MCountry(c1, p1, co, n1, ca1, a1, po1) & MCountry(c2, p2, co, n2, ca2, a2, po2) -> c1 = c2",
        "k_c_name: MCountry(c, p1, co, n1, ca1, a1, po1) & MCountry(c, p2, co, n2, ca2, a2, po2) -> n1 = n2",
        "k_c_cap: MCountry(c, p1, co, n1, ca1, a1, po1) & MCountry(c, p2, co, n2, ca2, a2, po2) -> ca1 = ca2",
        "k_c_area: MCountry(c, p1, co, n1, ca1, a1, po1) & MCountry(c, p2, co, n2, ca2, a2, po2) -> a1 = a2",
        "k_c_pop: MCountry(c, p1, co, n1, ca1, a1, po1) & MCountry(c, p2, co, n2, ca2, a2, po2) -> po1 = po2",
        "k_p: MProvince(p1, c, n, ca1, a1, po1) & MProvince(p2, c, n, ca2, a2, po2) -> p1 = p2",
        "k_p_cap: MProvince(p, c, n, ca1, a1, po1) & MProvince(p, c, n, ca2, a2, po2) -> ca1 = ca2",
        "k_p_area: MProvince(p, c, n, ca1, a1, po1) & MProvince(p, c, n, ca2, a2, po2) -> a1 = a2",
        "k_p_pop: MProvince(p, c, n, ca1, a1, po1) & MProvince(p, c, n, ca2, a2, po2) -> po1 = po2",
        "k_t: MCity(t1, p, n, lo1, la1) & MCity(t2, p, n, lo2, la2) -> t1 = t2",
        "k_t_lon: MCity(t, p, n, lo1, la1) & MCity(t, p, n, lo2, la2) -> lo1 = lo2",
        "k_t_lat: MCity(t, p, n, lo1, la1) & MCity(t, p, n, lo2, la2) -> la1 = la2",
        "k_o: MOrganization(o1, p1, ab, n1, e1) & MOrganization(o2, p2, ab, n2, e2) -> o1 = o2",
        "k_o_name: MOrganization(o, p1, ab, n1, e1) & MOrganization(o, p2, ab, n2, e2) -> n1 = n2",
        "k_o_est: MOrganization(o, p1, ab, n1, e1) & MOrganization(o, p2, ab, n2, e2) -> e1 = e2",
    ];
    for text in egds {
        let egd = parse_egd(&target, &mut pool, text)
            .unwrap_or_else(|e| panic!("Mondial egd must parse: {e}\n{text}"));
        mapping.add_egd(egd).expect("valid Mondial egd");
    }

    // --- Data --------------------------------------------------------------
    let mut source = Instance::new(&source_schema);
    let mut codes = Vec::new();
    for k in 0..counts_countries {
        let code = pool.str(&format!("C{k:03}"));
        codes.push(code);
        let name = pool.str(&format!("Country {k}"));
        let cap = pool.str(&format!("Capital {k}"));
        source.insert_ok(
            s_country,
            &[
                code,
                name,
                cap,
                Value::Int(rng.gen_range(1_000..2_000_000)),
                Value::Int(rng.gen_range(100_000..900_000_000)),
            ],
        );
        for p in 0..counts_provinces_per {
            let pn = pool.str(&format!("Prov {k}-{p}"));
            let pcap = pool.str(&format!("PCap {k}-{p}"));
            source.insert_ok(
                s_province,
                &[
                    pn,
                    code,
                    pcap,
                    Value::Int(rng.gen_range(100..90_000)),
                    Value::Int(rng.gen_range(1_000..9_000_000)),
                ],
            );
            for c in 0..counts_cities_per {
                let cn = pool.str(&format!("City {k}-{p}-{c}"));
                source.insert_ok(
                    s_city,
                    &[
                        cn,
                        code,
                        pn,
                        Value::Int(rng.gen_range(1_000..9_000_000)),
                        Value::Int(rng.gen_range(-180..180)),
                        Value::Int(rng.gen_range(-90..90)),
                    ],
                );
                for y in 0..counts_pop_per {
                    source.insert_ok(
                        s_citypop,
                        &[
                            cn,
                            code,
                            Value::Int(1990 + 10 * y as i64),
                            Value::Int(rng.gen_range(1_000..9_000_000)),
                        ],
                    );
                }
            }
        }
    }
    let langs: Vec<Value> = (0..40).map(|k| pool.str(&format!("Lang{k}"))).collect();
    let religions: Vec<Value> = (0..20).map(|k| pool.str(&format!("Rel{k}"))).collect();
    let groups: Vec<Value> = (0..30).map(|k| pool.str(&format!("Eth{k}"))).collect();
    let pick_code = |rng: &mut Rng| codes[rng.gen_range(0..codes.len())];
    for (rel, names, count) in [
        (s_language, &langs, counts_langs),
        (s_religion, &religions, counts_religions),
        (s_ethnic, &groups, counts_ethnic),
    ] {
        for _ in 0..count {
            let code = pick_code(&mut rng);
            let n2 = names[rng.gen_range(0..names.len())];
            source.insert_ok(rel, &[code, n2, Value::Int(rng.gen_range(1..100))]);
        }
    }
    for _ in 0..counts_borders {
        let a = pick_code(&mut rng);
        let b = pick_code(&mut rng);
        if a != b {
            source.insert_ok(s_border, &[a, b, Value::Int(rng.gen_range(10..5_000))]);
        }
    }
    let continents = ["Africa", "America", "Asia", "Australia", "Europe"];
    for (k, c) in continents.iter().enumerate() {
        let name = pool.str(c);
        source.insert_ok(s_continent, &[name, Value::Int(10_000_000 + k as i64)]);
        for _ in 0..counts_countries / continents.len() {
            let code = pick_code(&mut rng);
            source.insert_ok(s_encompasses, &[code, name, Value::Int(100)]);
        }
    }
    let mut orgs = Vec::new();
    for k in 0..counts_orgs {
        let ab = pool.str(&format!("ORG{k}"));
        orgs.push(ab);
        let name = pool.str(&format!("Organization {k}"));
        let city = pool.str(&format!("City {}-0-0", k % counts_countries));
        source.insert_ok(
            s_org,
            &[ab, name, city, Value::Int(1900 + (k % 100) as i64)],
        );
    }
    let mtypes = ["member", "observer", "applicant"];
    for k in 0..counts_members {
        let o = orgs[rng.gen_range(0..orgs.len())];
        let c = pick_code(&mut rng);
        let ty = pool.str(mtypes[k % mtypes.len()]);
        source.insert_ok(s_member, &[o, c, ty]);
    }
    for (rel, prefix, lo, hi) in [
        (s_mountain, "Mount", 500, 8_848),
        (s_river, "River", 50, 6_650),
        (s_lake, "Lake", 10, 400_000),
        (s_sea, "Sea", 100, 11_000),
        (s_desert, "Desert", 1_000, 9_000_000),
        (s_island, "Island", 5, 2_000_000),
    ] {
        for k in 0..counts_geo {
            let name = pool.str(&format!("{prefix} {k}"));
            let code = pick_code(&mut rng);
            source.insert_ok(rel, &[name, Value::Int(rng.gen_range(lo..hi)), code]);
        }
    }

    // Populate the unmapped relations at modest cardinalities.
    {
        let govs = ["republic", "monarchy", "federation"];
        for k in 0..counts_orgs {
            let iata = pool.str(&format!("AP{k:03}"));
            let name = pool.str(&format!("Airport {k}"));
            let code = pick_code(&mut rng);
            let city = pool.str(&format!("City {}-0-0", k % counts_countries));
            source.insert_ok(
                s_airport,
                &[
                    iata,
                    name,
                    code,
                    city,
                    Value::Int(rng.gen_range(0..4_000)),
                    Value::Int(rng.gen_range(-11..13)),
                ],
            );
        }
        for &code in &codes {
            source.insert_ok(
                s_economy,
                &[
                    code,
                    Value::Int(rng.gen_range(1_000..2_000_000)),
                    Value::Int(rng.gen_range(1..60)),
                    Value::Int(rng.gen_range(1..60)),
                    Value::Int(rng.gen_range(1..60)),
                    Value::Int(rng.gen_range(0..25)),
                ],
            );
            for y in [1990i64, 2000] {
                source.insert_ok(
                    s_popdata,
                    &[
                        code,
                        Value::Int(y),
                        Value::Int(rng.gen_range(100_000..900_000_000)),
                        Value::Int(rng.gen_range(-2..5)),
                    ],
                );
            }
            let gov = pool.str(govs[(code.is_constant() as usize + rng.gen_range(0..3usize)) % 3]);
            let dep = pool.str("none");
            source.insert_ok(
                s_politics,
                &[code, Value::Int(1800 + rng.gen_range(0..200i64)), dep, gov],
            );
        }
        for k in 0..counts_geo {
            let city = pool.str(&format!("City {}-0-0", k % counts_countries));
            let code = pick_code(&mut rng);
            let river = pool.str(&format!("River {}", k % counts_geo));
            let lake = pool.str(&format!("Lake {}", k % counts_geo));
            let sea = pool.str(&format!("Sea {}", k % counts_geo));
            source.insert_ok(s_located, &[city, code, river, lake, sea]);
            source.insert_ok(
                s_islandin,
                &[pool.str(&format!("Island {k}")), river, lake, sea],
            );
            source.insert_ok(s_riverthrough, &[river, lake]);
            source.insert_ok(
                s_springof,
                &[
                    river,
                    code,
                    Value::Int(rng.gen_range(-180..180)),
                    Value::Int(rng.gen_range(-90..90)),
                ],
            );
            if k + 1 < counts_geo {
                let sea2 = pool.str(&format!("Sea {}", k + 1));
                source.insert_ok(s_merges, &[sea, sea2]);
            }
        }
    }

    let stats = vec![
        SchemaStats {
            name: "Mondial1(Rel)".into(),
            total_elems: source_schema.len() + source_schema.total_attrs(),
            atomic_elems: source_schema.total_attrs(),
            depth: 1,
            tuples: source.total_tuples(),
        },
        SchemaStats {
            name: "Mondial2(XML)".into(),
            total_elems: dst_nested.total_elements(),
            atomic_elems: dst_nested.atomic_elements(),
            depth: dst_nested.max_depth(),
            tuples: 0,
        },
    ];

    RealScenario {
        scenario: Scenario {
            name: "mondial".into(),
            pool,
            mapping,
            source,
        },
        stats,
        nested_target: Some(dst_nested),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_chase::ChaseOptions;
    use routes_mapping::satisfy::is_solution;

    #[test]
    fn real_scenarios_are_weakly_acyclic() {
        assert!(routes_mapping::is_weakly_acyclic(
            &dblp_scenario(0.02, 1).scenario.mapping
        ));
        assert!(routes_mapping::is_weakly_acyclic(
            &mondial_scenario(0.02, 1).scenario.mapping
        ));
    }

    #[test]
    fn dblp_tgd_counts_match_table_1() {
        let sc = dblp_scenario(0.02, 1);
        assert_eq!(sc.scenario.mapping.st_tgds().len(), 10);
        assert_eq!(sc.scenario.mapping.target_tgds().len(), 14);
        assert_eq!(sc.stats.len(), 3);
        assert_eq!(sc.stats[1].depth, 4);
    }

    #[test]
    fn dblp_chases_to_a_solution() {
        let mut sc = dblp_scenario(0.02, 2);
        let result = sc.scenario.solution_with(ChaseOptions::fresh()).unwrap();
        assert!(is_solution(
            &sc.scenario.mapping,
            &sc.scenario.source,
            &result.target
        ));
        assert!(result.target.total_tuples() > 0);
    }

    #[test]
    fn mondial_tgd_counts_match_table_1() {
        let sc = mondial_scenario(0.02, 3);
        assert_eq!(sc.scenario.mapping.st_tgds().len(), 13);
        assert_eq!(sc.scenario.mapping.target_tgds().len(), 25);
        assert_eq!(sc.stats[1].depth, 4);
    }

    #[test]
    fn mondial_chases_to_a_solution() {
        let mut sc = mondial_scenario(0.02, 4);
        let result = sc.scenario.solution_with(ChaseOptions::fresh()).unwrap();
        assert!(is_solution(
            &sc.scenario.mapping,
            &sc.scenario.source,
            &result.target
        ));
    }
}
