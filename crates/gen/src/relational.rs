//! The relational synthetic scenarios `M0..M3` (paper §4.1).
//!
//! Source: the TPC-H schema (suffix `0`). Target: six "copies" of it
//! (suffixes `1..6`). The s-t tgds copy group 0 into group 1; a target tgd
//! chain copies group *i* into group *i+1*, so a tuple in group *g* needs
//! `g` satisfaction steps — the paper's **M/T factor**. Every tgd in `Mk`
//! has *k* joins on both sides, following paper Figure 9:
//!
//! ```text
//! 1 join : S ⋈ L (suppkey), O ⋈ C (custkey), PS ⋈ P (partkey), N ⋈ R (regionkey)
//! 2 joins: S ⋈ L ⋈ O, S ⋈ PS ⋈ P, C ⋈ N ⋈ R
//! 3 joins: S ⋈ L ⋈ PS ⋈ P (partkey+suppkey), O ⋈ C ⋈ N ⋈ R
//! ```
//!
//! (The paper writes the Nation–Region join as `⋈nationkey`; the shared
//! column between those tables is `regionkey`, which is what we join on.)

use routes_mapping::{parse_st_tgd, parse_target_tgd, SchemaMapping};
use routes_model::{Instance, RelId, Schema, TupleId, ValuePool};

use crate::scenario::{random_tuples, Scenario};
use crate::tpch::{add_tpch_relations, populate, table_attrs, TpchRows, TABLES};

/// Number of target copy groups (and hence the maximum M/T factor).
pub const GROUPS: usize = 6;

/// One side of a join equality: (table index, attribute name).
pub(crate) type JoinCol = (usize, &'static str);

/// A join group: tables plus equality constraints between their columns.
pub(crate) struct JoinGroup {
    pub(crate) tables: &'static [&'static str],
    /// Equalities between columns of the group's tables.
    pub(crate) eqs: &'static [(JoinCol, JoinCol)],
}

pub(crate) fn join_patterns(joins: usize) -> Vec<JoinGroup> {
    match joins {
        0 => TABLES
            .iter()
            .map(|t| JoinGroup {
                tables: std::slice::from_ref(t),
                eqs: &[],
            })
            .collect(),
        1 => vec![
            JoinGroup {
                tables: &["Supplier", "Lineitem"],
                eqs: &[((0, "suppkey"), (1, "suppkey"))],
            },
            JoinGroup {
                tables: &["Orders", "Customer"],
                eqs: &[((0, "custkey"), (1, "custkey"))],
            },
            JoinGroup {
                tables: &["Partsupp", "Part"],
                eqs: &[((0, "partkey"), (1, "partkey"))],
            },
            JoinGroup {
                tables: &["Nation", "Region"],
                eqs: &[((0, "regionkey"), (1, "regionkey"))],
            },
        ],
        2 => vec![
            JoinGroup {
                tables: &["Supplier", "Lineitem", "Orders"],
                eqs: &[
                    ((0, "suppkey"), (1, "suppkey")),
                    ((1, "orderkey"), (2, "orderkey")),
                ],
            },
            JoinGroup {
                tables: &["Supplier", "Partsupp", "Part"],
                eqs: &[
                    ((0, "suppkey"), (1, "suppkey")),
                    ((1, "partkey"), (2, "partkey")),
                ],
            },
            JoinGroup {
                tables: &["Customer", "Nation", "Region"],
                eqs: &[
                    ((0, "nationkey"), (1, "nationkey")),
                    ((1, "regionkey"), (2, "regionkey")),
                ],
            },
        ],
        3 => vec![
            JoinGroup {
                tables: &["Supplier", "Lineitem", "Partsupp", "Part"],
                eqs: &[
                    ((0, "suppkey"), (1, "suppkey")),
                    ((1, "partkey"), (2, "partkey")),
                    ((1, "suppkey"), (2, "suppkey")),
                    ((2, "partkey"), (3, "partkey")),
                ],
            },
            JoinGroup {
                tables: &["Orders", "Customer", "Nation", "Region"],
                eqs: &[
                    ((0, "custkey"), (1, "custkey")),
                    ((1, "nationkey"), (2, "nationkey")),
                    ((2, "regionkey"), (3, "regionkey")),
                ],
            },
        ],
        other => panic!("join count {other} not in the paper's 0..=3 range"),
    }
}

/// Build the tgd text for copying a join group from suffix `from` to
/// suffix `to`.
pub(crate) fn copy_tgd_text(name: &str, group: &JoinGroup, from: usize, to: usize) -> String {
    // Canonical variable per (table index, attr): start with `t{i}_{attr}`,
    // then merge across equalities (smallest participant wins).
    let canon = |i: usize, attr: &str| -> String {
        let mut cur = (i, attr.to_owned());
        loop {
            let mut changed = false;
            for ((ai, aa), (bi, ba)) in group.eqs {
                let a = (*ai, (*aa).to_owned());
                let b = (*bi, (*ba).to_owned());
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if cur == hi {
                    cur = lo;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        format!("t{}_{}", cur.0, cur.1)
    };
    let atoms = |suffix: usize| -> String {
        group
            .tables
            .iter()
            .enumerate()
            .map(|(i, base)| {
                let vars: Vec<String> = table_attrs(base)
                    .iter()
                    .map(|attr| canon(i, attr))
                    .collect();
                format!("{base}{suffix}({})", vars.join(", "))
            })
            .collect::<Vec<_>>()
            .join(" & ")
    };
    format!("{name}: {} -> {}", atoms(from), atoms(to))
}

/// Variant of [`copy_tgd_text`] for the nested encoding: every atom carries
/// leading `(self, parent)` columns. Self ids are table-unique variables
/// (identity-copied to the target); parents all reference the single root
/// via the shared variable `rp`.
pub(crate) fn copy_tgd_text_nested(
    name: &str,
    group: &JoinGroup,
    from: usize,
    to: usize,
) -> String {
    let canon = |i: usize, attr: &str| -> String {
        let mut cur = (i, attr.to_owned());
        loop {
            let mut changed = false;
            for ((ai, aa), (bi, ba)) in group.eqs {
                let a = (*ai, (*aa).to_owned());
                let b = (*bi, (*ba).to_owned());
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if cur == hi {
                    cur = lo;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        format!("t{}_{}", cur.0, cur.1)
    };
    let atoms = |suffix: usize| -> String {
        group
            .tables
            .iter()
            .enumerate()
            .map(|(i, base)| {
                let mut vars: Vec<String> = vec![format!("t{i}_self"), "rp".to_owned()];
                vars.extend(table_attrs(base).iter().map(|attr| canon(i, attr)));
                format!("{base}{suffix}({})", vars.join(", "))
            })
            .collect::<Vec<_>>()
            .join(" & ")
    };
    format!("{name}: {} -> {}", atoms(from), atoms(to))
}

/// A built relational scenario plus the metadata the benchmarks select with.
#[derive(Debug, Clone)]
pub struct RelationalScenario {
    /// The mapping + source instance.
    pub scenario: Scenario,
    /// Joins per tgd (0..=3).
    pub joins: usize,
    /// Source relation ids in [`TABLES`] order.
    pub source_rels: Vec<RelId>,
    /// Target relation ids per group; index 0 is group 1 (M/T factor 1).
    pub target_groups: Vec<Vec<RelId>>,
}

impl RelationalScenario {
    /// Select `n` random tuples from group `group` (1-based, = M/T factor)
    /// of a solution `j`.
    pub fn select_from_group(
        &self,
        j: &Instance,
        group: usize,
        n: usize,
        seed: u64,
    ) -> Vec<TupleId> {
        random_tuples(j, &self.target_groups[group - 1], n, seed)
    }
}

/// Build scenario `M{joins}`: TPC-H source at the given size, six target
/// copy groups, copy tgds with `joins` joins per side (paper Figure 9).
pub fn relational_scenario(joins: usize, rows: &TpchRows, seed: u64) -> RelationalScenario {
    let mut pool = ValuePool::new();
    let mut source_schema = Schema::new();
    let source_rels = add_tpch_relations(&mut source_schema, "0");
    let mut target_schema = Schema::new();
    let target_groups: Vec<Vec<RelId>> = (1..=GROUPS)
        .map(|g| add_tpch_relations(&mut target_schema, &g.to_string()))
        .collect();

    let mut mapping = SchemaMapping::new(source_schema.clone(), target_schema.clone());
    let patterns = join_patterns(joins);
    for (gi, group) in patterns.iter().enumerate() {
        let tgd = parse_st_tgd(
            &source_schema,
            &target_schema,
            &mut pool,
            &copy_tgd_text(&format!("st{gi}"), group, 0, 1),
        )
        .unwrap_or_else(|e| panic!("generated s-t tgd must parse: {e}"));
        mapping.add_st_tgd(tgd).expect("generated s-t tgd is valid");
    }
    for to in 2..=GROUPS {
        for (gi, group) in patterns.iter().enumerate() {
            let tgd = parse_target_tgd(
                &target_schema,
                &mut pool,
                &copy_tgd_text(&format!("t{}_{gi}", to - 1), group, to - 1, to),
            )
            .unwrap_or_else(|e| panic!("generated target tgd must parse: {e}"));
            mapping
                .add_target_tgd(tgd)
                .expect("generated target tgd is valid");
        }
    }

    let mut source = Instance::new(&source_schema);
    populate(&mut source, &mut pool, &source_rels, rows, seed);

    RelationalScenario {
        scenario: Scenario {
            name: format!("relational-M{joins}"),
            pool,
            mapping,
            source,
        },
        joins,
        source_rels,
        target_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::satisfy::is_solution;

    #[test]
    fn tgd_counts_match_the_construction() {
        for joins in 0..=3 {
            let sc = relational_scenario(joins, &TpchRows::scale(0.0001), 1);
            let per_group = join_patterns(joins).len();
            assert_eq!(sc.scenario.mapping.st_tgds().len(), per_group);
            assert_eq!(
                sc.scenario.mapping.target_tgds().len(),
                per_group * (GROUPS - 1)
            );
            for tgd in sc.scenario.mapping.st_tgds() {
                assert_eq!(tgd.join_count(), joins, "M{joins} s-t tgd join count");
            }
        }
    }

    #[test]
    fn relational_scenarios_are_weakly_acyclic() {
        for joins in 0..=3 {
            let sc = relational_scenario(joins, &TpchRows::scale(0.0001), 1);
            assert!(routes_mapping::is_weakly_acyclic(&sc.scenario.mapping));
        }
    }

    #[test]
    fn chase_produces_a_solution_with_six_groups() {
        let mut sc = relational_scenario(1, &TpchRows::scale(0.0005), 2);
        let result = sc.scenario.solution().unwrap();
        assert!(is_solution(
            &sc.scenario.mapping,
            &sc.scenario.source,
            &result.target
        ));
        // Every group has data; copying preserves per-group tuple counts
        // for the joined relations.
        for g in 1..=GROUPS {
            let total: u32 = sc.target_groups[g - 1]
                .iter()
                .map(|&r| result.target.rel_len(r))
                .sum();
            assert!(total > 0, "group {g} is populated");
        }
        // Group sizes are equal down the chain (copying tgds).
        let size = |g: usize| -> u32 {
            sc.target_groups[g - 1]
                .iter()
                .map(|&r| result.target.rel_len(r))
                .sum()
        };
        for g in 2..=GROUPS {
            assert_eq!(size(g), size(1));
        }
    }

    #[test]
    fn selection_yields_group_tuples() {
        let mut sc = relational_scenario(0, &TpchRows::scale(0.0005), 3);
        let result = sc.scenario.solution().unwrap();
        let picks = sc.select_from_group(&result.target, 3, 5, 11);
        assert_eq!(picks.len(), 5);
        for t in &picks {
            assert!(sc.target_groups[2].contains(&t.rel));
        }
    }

    #[test]
    fn copy_tgd_text_shares_join_variables() {
        let patterns = join_patterns(1);
        let text = copy_tgd_text("x", &patterns[0], 0, 1);
        // Supplier and Lineitem share the suppkey variable: t0_suppkey
        // appears in all four atoms.
        assert_eq!(text.matches("t0_suppkey").count(), 4);
        assert!(text.contains("Supplier0("));
        assert!(text.contains("Lineitem1("));
    }
}
