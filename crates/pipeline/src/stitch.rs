//! End-to-end routes through a pipeline.
//!
//! A route for a tuple of the final target is stitched backwards: compute a
//! route at the last hop (paper Figure 7 via `routes_core::compute_one_route`),
//! collect the source-side facts its s-t steps consumed, translate them to
//! the previous hop's target tuples (the two instances differ only in
//! relation numbering), and recurse. The result shows, hop by hop, which
//! tgd with which assignment produced every tuple on the way from the
//! original source to the selected tuples.

use std::collections::BTreeSet;
use std::fmt;

use routes_core::{compute_one_route, OneRouteError, Route, RouteError};
use routes_model::{Side, TupleId};

use crate::{source_tuple_upstream, PreparedPipeline};

/// One hop of a stitched route: the tuples this hop had to justify and the
/// route that justifies them.
#[derive(Debug, Clone)]
pub struct StageRoute {
    /// Hop index (0-based).
    pub stage: usize,
    /// The stage's name.
    pub name: String,
    /// The tuples of this hop's target the route must produce: the final
    /// selection for the last hop, otherwise the upstream images of the
    /// source facts consumed by the next hop's route.
    pub selection: Vec<TupleId>,
    /// A route for `selection` in this hop's `(source, target)` pair.
    pub route: Route,
}

/// An end-to-end route: one [`StageRoute`] per hop, in hop order.
#[derive(Debug, Clone)]
pub struct StitchedRoute {
    /// Per-hop routes, index 0 = first hop.
    pub stages: Vec<StageRoute>,
}

impl StitchedRoute {
    /// Total satisfaction steps across all hops.
    pub fn total_steps(&self) -> usize {
        self.stages.iter().map(|s| s.route.len()).sum()
    }

    /// Replay every hop's route against its `(source, target)` pair
    /// (Definition 3.3 at each hop). This is the proof obligation of a
    /// stitched route: each hop's selection is produced by its route, and
    /// each hop's consumed source facts are exactly what the previous hop
    /// justified.
    pub fn validate(&self, prepared: &PreparedPipeline) -> Result<(), RouteError> {
        for stage in &self.stages {
            let env = prepared.stage_env(stage.stage);
            stage.route.validate(&env, &stage.selection)?;
        }
        Ok(())
    }
}

/// Why stitching failed.
#[derive(Debug)]
pub enum StitchError {
    /// The selection was empty.
    EmptySelection,
    /// A hop had no route for its selection (the tuple is not derivable —
    /// exactly the debugging signal the paper's single-hop algorithms give).
    NoRoute {
        /// The failing hop's name.
        stage: String,
        /// The underlying one-route failure.
        source: OneRouteError,
    },
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::EmptySelection => write!(f, "empty selection"),
            StitchError::NoRoute { stage, source } => {
                write!(f, "no route at stage `{stage}`: {source}")
            }
        }
    }
}

impl std::error::Error for StitchError {}

/// Stitch an end-to-end route for `selection` (tuples of the final hop's
/// target). Deterministic: `compute_one_route` is deterministic and the
/// per-hop upstream selections are accumulated in sorted order.
pub fn stitch_route(
    prepared: &PreparedPipeline,
    selection: &[TupleId],
) -> Result<StitchedRoute, StitchError> {
    if selection.is_empty() {
        return Err(StitchError::EmptySelection);
    }
    let hops = prepared.hops();
    let mut stages: Vec<StageRoute> = Vec::with_capacity(hops);
    let mut sel: Vec<TupleId> = selection.to_vec();
    for k in (0..hops).rev() {
        let stage = &prepared.stages[k];
        let env = prepared.stage_env(k);
        let route = compute_one_route(env, &sel).map_err(|source| StitchError::NoRoute {
            stage: stage.name.clone(),
            source,
        })?;
        // The source facts this hop's route consumed become the previous
        // hop's proof obligation.
        let mut upstream: BTreeSet<TupleId> = BTreeSet::new();
        for step in route.steps() {
            if let Some(facts) = step.lhs_facts(&env) {
                for fact in facts {
                    if fact.side == Side::Source {
                        upstream.insert(fact.id);
                    }
                }
            }
        }
        stages.push(StageRoute {
            stage: k,
            name: stage.name.clone(),
            selection: sel.clone(),
            route,
        });
        if k > 0 {
            let source_schema = prepared.pipeline.stages()[k].mapping.source();
            let upstream_target = prepared.pipeline.stages()[k - 1].mapping.target();
            sel = upstream
                .into_iter()
                .map(|id| source_tuple_upstream(source_schema, upstream_target, id))
                .collect();
            sel.sort_unstable();
        }
    }
    stages.reverse();
    Ok(StitchedRoute { stages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chase_pipeline, Pipeline, PipelineStage};
    use routes_chase::ChaseOptions;
    use routes_mapping::{parse_dependency, SchemaMapping};
    use routes_model::{Instance, Schema, Value, ValuePool};
    use routes_pool::Pool;

    fn three_hop(core_mode: bool) -> crate::PreparedPipeline {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t1 = Schema::new();
        t1.rel("T", &["a", "b"]);
        let mut t2 = Schema::new();
        t2.rel("U", &["a", "b"]);
        t2.rel("V", &["a"]);
        let mut t3 = Schema::new();
        t3.rel("W", &["a"]);
        let mut pool = ValuePool::new();
        let mk = |name: &str, src: &Schema, dst: &Schema, deps: &[&str], pool: &mut ValuePool| {
            let mut mapping = SchemaMapping::new(src.clone(), dst.clone());
            for dep in deps {
                mapping
                    .add_dependency(parse_dependency(src, dst, pool, dep).unwrap())
                    .unwrap();
            }
            PipelineStage {
                name: name.to_owned(),
                mapping,
            }
        };
        let one = mk("one", &s, &t1, &["m1: S(x, y) -> T(x, y)"], &mut pool);
        let two = mk(
            "two",
            &t1,
            &t2,
            &[
                "m2: T(x, y) -> exists Z: U(x, Z)",
                "m3: T(x, y) -> U(x, y)",
                "m4: U(x, y) -> V(x)",
            ],
            &mut pool,
        );
        let three = mk("three", &t2, &t3, &["m5: V(x) -> W(x)"], &mut pool);
        let pipeline = Pipeline::new(vec![one, two, three], core_mode).unwrap();
        let mut source = Instance::new(&s);
        source.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1), Value::Int(2)]);
        source.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(3), Value::Int(4)]);
        chase_pipeline(
            pipeline,
            source,
            pool,
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap()
    }

    #[test]
    fn stitches_through_three_hops() {
        let prepared = three_hop(false);
        let final_target = &prepared.final_stage().target;
        let w = prepared.pipeline.stages()[2]
            .mapping
            .target()
            .rel_id("W")
            .unwrap();
        let selected: Vec<TupleId> = final_target.rel_rows(w).collect();
        assert!(!selected.is_empty());
        let stitched = stitch_route(&prepared, &selected).unwrap();
        assert_eq!(stitched.stages.len(), 3);
        stitched.validate(&prepared).unwrap();
        // Hop order is first-to-last and hop names carry through.
        assert_eq!(stitched.stages[0].name, "one");
        assert_eq!(stitched.stages[2].selection, selected);
        assert!(stitched.total_steps() >= 3);
    }

    #[test]
    fn core_mode_shrinks_and_still_stitches() {
        let full = three_hop(false);
        let cored = three_hop(true);
        let (before, after) = cored.core_shrink();
        assert!(after < before, "core must shrink: {before} -> {after}");
        let (fb, fa) = full.core_shrink();
        assert_eq!(fb, fa);
        // Every final tuple of the minimized pipeline still has a stitched,
        // replayable route.
        let w = cored.pipeline.stages()[2]
            .mapping
            .target()
            .rel_id("W")
            .unwrap();
        for id in cored.final_stage().target.rel_rows(w) {
            let stitched = stitch_route(&cored, &[id]).unwrap();
            stitched.validate(&cored).unwrap();
        }
    }

    #[test]
    fn empty_selection_is_rejected() {
        let prepared = three_hop(false);
        assert!(matches!(
            stitch_route(&prepared, &[]),
            Err(StitchError::EmptySelection)
        ));
    }
}
