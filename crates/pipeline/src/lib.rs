//! Mapping pipelines: a chain of schema mappings `S → T₁ → … → Tₙ` treated
//! as one debuggable object.
//!
//! The paper debugs a single mapping; real data-exchange deployments are
//! multi-hop ETL chains. Following the composition literature
//! (Arenas–Fagin–Nash, *Composition with Target Constraints*), a pipeline
//! here is an explicit chain of stages, each a full `SchemaMapping` whose
//! source schema is the previous stage's target schema. The chain is chased
//! stage by stage with the deterministic engine of `routes-chase`, and a
//! route for a final-target tuple is *stitched* from per-stage routes
//! through the intermediate instances ([`stitch_route`]): the debugger can
//! show exactly which source tuple and which tgd at which hop produced any
//! final tuple.
//!
//! The crate also implements **core minimization** of chased instances
//! ([`core_minimize`]), after ten Cate–Chiticariu–Kolaitis–Tan, *Laconic
//! Schema Mappings*: greedy endomorphism shrinking removes every tuple `t`
//! such that a homomorphism `J → J∖{t}` exists, which for a finite instance
//! reaches exactly the core. With [`Pipeline::core_mode`] on, every
//! intermediate instance is minimized before the next hop, shrinking the
//! data every downstream hot path touches. Values of surviving tuples are
//! never rewritten, so every route computed on the core replays verbatim on
//! the unminimized instance — the invariant the differential gate in
//! `tests/pipeline_routes.rs` enforces.

pub mod core;
pub mod stitch;

use std::fmt;
use std::time::{Duration, Instant};

use routes_chase::{chase_with_pool, ChaseError, ChaseOptions, ChaseStats, EgdLog};
use routes_core::RouteEnv;
use routes_mapping::{
    check_stage_compatibility, is_weakly_acyclic, validate_stage_names, MappingError, SchemaMapping,
};
use routes_model::{Instance, TupleId, ValuePool};
use routes_pool::Pool;

pub use crate::core::{core_minimize, frozen_nulls, CoreOutcome};
pub use crate::stitch::{stitch_route, StageRoute, StitchError, StitchedRoute};

/// One hop of a pipeline: a named schema mapping.
#[derive(Debug, Clone)]
pub struct PipelineStage {
    /// The stage name (unique within the pipeline).
    pub name: String,
    /// The mapping `Mₖ = (Tₖ₋₁, Tₖ, Σst ∪ Σt)` for this hop.
    pub mapping: SchemaMapping,
}

/// A validated chain of stages plus the per-session core-minimization mode.
#[derive(Debug, Clone)]
pub struct Pipeline {
    stages: Vec<PipelineStage>,
    core_mode: bool,
}

impl Pipeline {
    /// Validate and assemble a chain: stage names must be unique and each
    /// stage's source schema must match the previous stage's target schema
    /// (same relations and arities, in any declaration order).
    pub fn new(stages: Vec<PipelineStage>, core_mode: bool) -> Result<Pipeline, PipelineError> {
        if stages.is_empty() {
            return Err(PipelineError::Empty);
        }
        let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
        validate_stage_names(&names).map_err(PipelineError::Invalid)?;
        for pair in stages.windows(2) {
            check_stage_compatibility(
                &pair[0].name,
                pair[0].mapping.target(),
                &pair[1].name,
                pair[1].mapping.source(),
            )
            .map_err(PipelineError::Invalid)?;
        }
        Ok(Pipeline { stages, core_mode })
    }

    /// The stages, in hop order.
    pub fn stages(&self) -> &[PipelineStage] {
        &self.stages
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.stages.len()
    }

    /// Whether intermediate instances are minimized to their cores.
    pub fn core_mode(&self) -> bool {
        self.core_mode
    }
}

/// Why a pipeline could not be assembled or chased.
#[derive(Debug)]
pub enum PipelineError {
    /// A pipeline needs at least one stage.
    Empty,
    /// Stage names or schemas do not form a valid chain.
    Invalid(MappingError),
    /// The chase failed at a stage.
    Chase {
        /// The failing stage's name.
        stage: String,
        /// The underlying chase error.
        source: ChaseError,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Empty => write!(f, "pipeline has no stages"),
            PipelineError::Invalid(e) => write!(f, "invalid pipeline: {e}"),
            PipelineError::Chase { stage, source } => {
                write!(f, "chase failed at stage `{stage}`: {source}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One chased hop: the instance the stage consumed, the solution it
/// produced (post-core when core mode is on), and the chase provenance.
#[derive(Debug, Clone)]
pub struct StageSolution {
    /// The stage name.
    pub name: String,
    /// The instance this stage chased from: the original source for hop 1,
    /// otherwise the previous hop's (possibly minimized) target rebound
    /// onto this stage's source schema.
    pub source: Instance,
    /// The solution this stage produced. When core mode is on this is the
    /// core; surviving tuples keep their values, only rows are dropped.
    pub target: Instance,
    /// Statistics of the materializing chase (pre-core).
    pub stats: ChaseStats,
    /// Egd merge provenance of the chase.
    pub egd_log: EgdLog,
    /// Target tuples before core minimization (equals the target size when
    /// core mode is off).
    pub tuples_before_core: usize,
    /// Tuples the core removed (0 when core mode is off).
    pub core_removed: usize,
    /// Wall time of this hop's chase, in microseconds. A measurement, not
    /// part of the deterministic result — never compare it across runs.
    pub chase_us: u64,
    /// Wall time of this hop's core minimization, in microseconds (0 when
    /// core mode is off).
    pub core_us: u64,
}

/// A fully chased pipeline: every intermediate instance materialized, ready
/// for stitched-route probes.
#[derive(Debug, Clone)]
pub struct PreparedPipeline {
    /// The validated chain.
    pub pipeline: Pipeline,
    /// The shared value pool (all stages invent nulls in one namespace, so
    /// values render consistently across hops).
    pub pool: ValuePool,
    /// Per-hop solutions, in hop order.
    pub stages: Vec<StageSolution>,
    /// Whether every stage's dependency set is weakly acyclic.
    pub weakly_acyclic: bool,
    /// Total wall time of all stage chases (and core minimizations).
    pub chase_wall: Duration,
}

impl PreparedPipeline {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.stages.len()
    }

    /// The final hop (its target is the pipeline's end-to-end solution).
    pub fn final_stage(&self) -> &StageSolution {
        self.stages.last().expect("pipelines are non-empty")
    }

    /// The route environment of hop `k`: `(Mₖ, source_k, target_k)`.
    pub fn stage_env(&self, k: usize) -> RouteEnv<'_> {
        let stage = &self.stages[k];
        RouteEnv::new(
            &self.pipeline.stages()[k].mapping,
            &stage.source,
            &stage.target,
        )
    }

    /// Total target tuples before and after core minimization, summed over
    /// all hops (equal when core mode is off).
    pub fn core_shrink(&self) -> (usize, usize) {
        let before: usize = self.stages.iter().map(|s| s.tuples_before_core).sum();
        let after: usize = self.stages.iter().map(|s| s.target.total_tuples()).sum();
        (before, after)
    }
}

/// Rebind an instance onto a schema declaring the same relations (possibly
/// in a different order): rows are copied per relation name, preserving row
/// order, so `TupleId { rel-by-name, row }` identities carry over.
fn rebind_instance(
    from: &Instance,
    from_schema: &SchemaRef<'_>,
    to_schema: &SchemaRef<'_>,
) -> Instance {
    let mut out = Instance::new(to_schema.0);
    for (to_rel, rel) in to_schema.0.iter() {
        let from_rel = from_schema
            .0
            .rel_id(rel.name())
            .expect("stage compatibility was validated");
        for (_, values) in from.rel_tuples(from_rel) {
            out.insert(to_rel, &values).expect("same arity");
        }
    }
    out
}

/// Newtype so `rebind_instance` reads clearly at call sites.
struct SchemaRef<'a>(&'a routes_model::Schema);

/// Map a tuple of a stage's source instance to the same tuple in the
/// previous stage's target instance (they differ only in relation
/// numbering). Used when stitching routes backwards through the chain.
pub fn source_tuple_upstream(
    source_schema: &routes_model::Schema,
    upstream_target: &routes_model::Schema,
    id: TupleId,
) -> TupleId {
    let name = source_schema.relation(id.rel).name();
    let rel = upstream_target
        .rel_id(name)
        .expect("stage compatibility was validated");
    TupleId { rel, row: id.row }
}

/// Chase a pipeline stage by stage. Each hop reuses the deterministic
/// engine in `routes-chase` (byte-identical output at every worker count);
/// with core mode on, each hop's solution is minimized before feeding the
/// next. The result is deterministic for a fixed input at any `workers`
/// size — core minimization is a sequential greedy pass.
pub fn chase_pipeline(
    pipeline: Pipeline,
    source: Instance,
    mut pool: ValuePool,
    options: ChaseOptions,
    workers: &Pool,
) -> Result<PreparedPipeline, PipelineError> {
    let started = Instant::now();
    let mut stages: Vec<StageSolution> = Vec::with_capacity(pipeline.hops());
    let mut current = source;
    for (k, stage) in pipeline.stages().iter().enumerate() {
        if k > 0 {
            let prev = &pipeline.stages()[k - 1];
            current = rebind_instance(
                &current,
                &SchemaRef(prev.mapping.target()),
                &SchemaRef(stage.mapping.source()),
            );
        }
        let chase_started = Instant::now();
        let result = chase_with_pool(&stage.mapping, &current, &mut pool, options, workers)
            .map_err(|source| PipelineError::Chase {
                stage: stage.name.clone(),
                source,
            })?;
        let chase_us = chase_started.elapsed().as_micros() as u64;
        let stats = result.stats();
        let before = result.target.total_tuples();
        let (target, core_removed, core_us) = if pipeline.core_mode() {
            let core_started = Instant::now();
            let frozen = core::frozen_nulls(&current);
            let outcome = core_minimize(stage.mapping.target(), &result.target, &frozen);
            let removed = outcome.removed;
            (
                outcome.instance,
                removed,
                core_started.elapsed().as_micros() as u64,
            )
        } else {
            (result.target, 0, 0)
        };
        let next = target.clone();
        stages.push(StageSolution {
            name: stage.name.clone(),
            source: current,
            target,
            stats,
            egd_log: result.egd_log,
            tuples_before_core: before,
            core_removed,
            chase_us,
            core_us,
        });
        current = next;
    }
    let weakly_acyclic = pipeline
        .stages()
        .iter()
        .all(|s| is_weakly_acyclic(&s.mapping));
    Ok(PreparedPipeline {
        pipeline,
        pool,
        stages,
        weakly_acyclic,
        chase_wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::parse_dependency;
    use routes_model::{Schema, Value};

    fn stage(
        name: &str,
        src: &Schema,
        dst: &Schema,
        deps: &[&str],
        pool: &mut ValuePool,
    ) -> PipelineStage {
        let mut mapping = SchemaMapping::new(src.clone(), dst.clone());
        for dep in deps {
            let d = parse_dependency(src, dst, pool, dep).unwrap();
            mapping.add_dependency(d).unwrap();
        }
        PipelineStage {
            name: name.to_owned(),
            mapping,
        }
    }

    fn two_hop() -> (Pipeline, Instance, ValuePool) {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t1 = Schema::new();
        t1.rel("T", &["a", "b"]);
        let mut t2 = Schema::new();
        t2.rel("U", &["a"]);
        let mut pool = ValuePool::new();
        let one = stage("one", &s, &t1, &["m1: S(x, y) -> T(x, y)"], &mut pool);
        let two = stage("two", &t1, &t2, &["m2: T(x, y) -> U(x)"], &mut pool);
        let pipeline = Pipeline::new(vec![one, two], false).unwrap();
        let mut source = Instance::new(&s);
        source.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1), Value::Int(2)]);
        (pipeline, source, pool)
    }

    #[test]
    fn chases_stage_by_stage() {
        let (pipeline, source, pool) = two_hop();
        let prepared = chase_pipeline(
            pipeline,
            source,
            pool,
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        assert_eq!(prepared.hops(), 2);
        assert_eq!(prepared.stages[0].target.total_tuples(), 1);
        assert_eq!(prepared.final_stage().target.total_tuples(), 1);
        assert!(prepared.weakly_acyclic);
        // Hop 2 consumed hop 1's target, rebound by relation name.
        assert_eq!(prepared.stages[1].source.total_tuples(), 1);
    }

    #[test]
    fn incompatible_stages_are_rejected() {
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t1 = Schema::new();
        t1.rel("T", &["a", "b"]);
        let mut t1_narrow = Schema::new();
        t1_narrow.rel("T", &["a"]);
        let mut t2 = Schema::new();
        t2.rel("U", &["a"]);
        let mut pool = ValuePool::new();
        let one = stage(
            "one",
            &s,
            &t1,
            &["m1: S(x) -> exists Y: T(x, Y)"],
            &mut pool,
        );
        let two = stage("two", &t1_narrow, &t2, &["m2: T(x) -> U(x)"], &mut pool);
        let err = Pipeline::new(vec![one, two], false).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Invalid(MappingError::StageSchemaMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let (pipeline, _, mut pool) = two_hop();
        let mut stages = pipeline.stages().to_vec();
        let dst = stages[1].mapping.target().clone();
        stages.push(stage("one", &dst, &dst, &[], &mut pool));
        let err = Pipeline::new(stages, false).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Invalid(MappingError::DuplicateStage { .. })
        ));
    }
}
