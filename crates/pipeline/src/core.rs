//! Core minimization of chased instances (ten Cate–Chiticariu–Kolaitis–Tan,
//! *Laconic Schema Mappings*).
//!
//! The core of a finite instance `J` is its smallest retract: the smallest
//! subinstance `C ⊆ J` with a homomorphism `J → C`. For universal solutions
//! the core is again a universal solution — the minimal one. Greedy
//! single-tuple removal computes it exactly: remove any tuple `t` for which
//! a homomorphism `J → J∖{t}` exists, and repeat to a fixpoint. (If the
//! fixpoint `J'` were not a core, it would have a proper endomorphism whose
//! image misses some tuple `t`, and that endomorphism is a homomorphism
//! `J' → J'∖{t}` — contradicting the fixpoint.)
//!
//! Two properties downstream code depends on:
//!
//! * **Frozen nulls.** In a pipeline, a stage's source instance may itself
//!   contain labeled nulls (it is the previous hop's chased target). Those
//!   nulls are *constants of this hop*: a homomorphism that moved them
//!   would invalidate the s-t steps of routes through the stage. The search
//!   therefore treats every null occurring in the stage source
//!   ([`frozen_nulls`]) as rigid; only nulls invented by this stage's chase
//!   may move. Only tuples containing at least one movable null are removal
//!   candidates (an all-rigid tuple maps to itself under any homomorphism,
//!   so it can never be dropped).
//! * **Values survive verbatim.** Minimization only deletes rows; kept rows
//!   are rebuilt in their original order with unchanged values. Every route
//!   valid on the core is therefore step-for-step valid on the unminimized
//!   instance, which is what makes core mode safe to debug against.
//!
//! The search is backtracking over live rows, modeled on
//! `routes_chase::hom` but extended with the frozen-null set and a
//! forbidden-row set (so no per-candidate instance copies are made).

use std::collections::{HashMap, HashSet};

use routes_model::{Instance, NullId, Schema, TupleId, Value};

/// Result of a [`core_minimize`] run.
#[derive(Debug, Clone)]
pub struct CoreOutcome {
    /// The minimized instance: kept rows only, original relative order,
    /// values unchanged.
    pub instance: Instance,
    /// Old `TupleId`s of the kept rows, in enumeration order.
    pub kept: Vec<TupleId>,
    /// Old-to-new `TupleId` translation for the kept rows.
    pub remap: HashMap<TupleId, TupleId>,
    /// Rows before minimization.
    pub before: usize,
    /// Rows removed.
    pub removed: usize,
}

/// Collect every null occurring in `source` — the nulls a downstream hop
/// must treat as rigid when minimizing its own target.
pub fn frozen_nulls(source: &Instance) -> HashSet<NullId> {
    let mut out = HashSet::new();
    for id in source.all_rows() {
        for v in source.tuple(id) {
            if let Value::Null(n) = v {
                out.insert(n);
            }
        }
    }
    out
}

/// Greedily minimize `target` to its core (relative to `frozen` nulls,
/// which are treated as constants). Deterministic: candidates are visited
/// in row order and the backtracking search is itself deterministic.
pub fn core_minimize(schema: &Schema, target: &Instance, frozen: &HashSet<NullId>) -> CoreOutcome {
    let all: Vec<TupleId> = target.all_rows().collect();
    let mut removed: HashSet<TupleId> = HashSet::new();
    loop {
        let mut changed = false;
        for &cand in &all {
            if removed.contains(&cand) {
                continue;
            }
            let movable = target
                .tuple(cand)
                .into_iter()
                .any(|v| matches!(v, Value::Null(n) if !frozen.contains(&n)));
            if !movable {
                continue;
            }
            removed.insert(cand);
            if retracts_without(target, &all, cand, &removed, frozen) {
                changed = true;
            } else {
                removed.remove(&cand);
            }
        }
        if !changed {
            break;
        }
    }

    let mut instance = Instance::new(schema);
    let mut kept = Vec::with_capacity(all.len() - removed.len());
    let mut remap = HashMap::new();
    for &id in &all {
        if removed.contains(&id) {
            continue;
        }
        let (new_id, fresh) = instance
            .insert(id.rel, &target.tuple(id))
            .expect("same schema");
        debug_assert!(fresh, "chased instances have no duplicate rows");
        kept.push(id);
        remap.insert(id, new_id);
    }
    CoreOutcome {
        instance,
        kept,
        remap,
        before: all.len(),
        removed: removed.len(),
    }
}

/// Whether a homomorphism `J' → J'∖{cand}` exists, where `J'` is the live
/// instance before this removal (`all ∖ dead` plus `cand` itself — the
/// caller has already moved `cand` into `dead`). Frozen nulls are treated
/// as constants; `dead` rows are excluded as images. The candidate is
/// searched first so the search fails fast when it has no alternative
/// image.
fn retracts_without(
    target: &Instance,
    all: &[TupleId],
    cand: TupleId,
    dead: &HashSet<TupleId>,
    frozen: &HashSet<NullId>,
) -> bool {
    let mut tuples = Vec::with_capacity(all.len() - dead.len() + 1);
    tuples.push(cand);
    tuples.extend(all.iter().copied().filter(|t| !dead.contains(t)));
    let mut mapping: HashMap<NullId, Value> = HashMap::new();
    search(target, &tuples, dead, frozen, 0, &mut mapping)
}

fn resolve(v: Value, frozen: &HashSet<NullId>, mapping: &HashMap<NullId, Value>) -> Option<Value> {
    match v {
        Value::Null(n) if !frozen.contains(&n) => mapping.get(&n).copied(),
        rigid => Some(rigid),
    }
}

fn search(
    target: &Instance,
    tuples: &[TupleId],
    dead: &HashSet<TupleId>,
    frozen: &HashSet<NullId>,
    depth: usize,
    mapping: &mut HashMap<NullId, Value>,
) -> bool {
    let Some(&tid) = tuples.get(depth) else {
        return true;
    };
    let values = target.tuple(tid);

    // Probe on the most selective already-determined column, else scan.
    let mut best: Option<(u32, Value, usize)> = None;
    for (col, &v) in values.iter().enumerate() {
        let Some(image) = resolve(v, frozen, mapping) else {
            continue;
        };
        let len = target.probe_len(tid.rel, col as u32, image);
        if best.is_none_or(|(_, _, blen)| len < blen) {
            best = Some((col as u32, image, len));
        }
    }
    let mut candidates = Vec::new();
    match best {
        Some((col, image, _)) => target.probe_into(tid.rel, col, image, &mut candidates),
        None => candidates.extend(0..target.rel_len(tid.rel)),
    }

    'rows: for row in candidates {
        let image_id = TupleId { rel: tid.rel, row };
        if dead.contains(&image_id) {
            continue;
        }
        let image = target.tuple(image_id);
        let mut bound_here: Vec<NullId> = Vec::new();
        for (col, &v) in values.iter().enumerate() {
            match v {
                Value::Null(n) if !frozen.contains(&n) => match mapping.get(&n) {
                    Some(&img) => {
                        if img != image[col] {
                            for b in bound_here.drain(..) {
                                mapping.remove(&b);
                            }
                            continue 'rows;
                        }
                    }
                    None => {
                        mapping.insert(n, image[col]);
                        bound_here.push(n);
                    }
                },
                rigid => {
                    if rigid != image[col] {
                        for b in bound_here.drain(..) {
                            mapping.remove(&b);
                        }
                        continue 'rows;
                    }
                }
            }
        }
        if search(target, tuples, dead, frozen, depth + 1, mapping) {
            return true;
        }
        for b in bound_here {
            mapping.remove(&b);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::ValuePool;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.rel("T", &["a", "b"]);
        s
    }

    #[test]
    fn redundant_null_row_is_removed() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut pool = ValuePool::new();
        let n = pool.named_null("N");
        let mut j = Instance::new(&s);
        // T(1, N) retracts onto T(1, 2); the core is {T(1, 2)}.
        j.insert_ok(t, &[Value::Int(1), n]);
        j.insert_ok(t, &[Value::Int(1), Value::Int(2)]);
        let out = core_minimize(&s, &j, &HashSet::new());
        assert_eq!(out.removed, 1);
        assert_eq!(out.instance.total_tuples(), 1);
        assert_eq!(
            out.instance.tuple(TupleId { rel: t, row: 0 }),
            vec![Value::Int(1), Value::Int(2)]
        );
        // The kept row's old identity is row 1; it remapped to row 0.
        assert_eq!(out.kept, vec![TupleId { rel: t, row: 1 }]);
    }

    #[test]
    fn entangled_nulls_survive() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut pool = ValuePool::new();
        let n = pool.named_null("N");
        let mut j = Instance::new(&s);
        // T(1, N) and T(N, 1): N cannot move anywhere — removing either
        // tuple strands the other.
        j.insert_ok(t, &[Value::Int(1), n]);
        j.insert_ok(t, &[n, Value::Int(1)]);
        let out = core_minimize(&s, &j, &HashSet::new());
        assert_eq!(out.removed, 0);
        assert_eq!(out.instance.total_tuples(), 2);
    }

    #[test]
    fn frozen_nulls_are_rigid() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut pool = ValuePool::new();
        let n = pool.named_null("N");
        let Value::Null(nid) = n else { unreachable!() };
        let mut j = Instance::new(&s);
        j.insert_ok(t, &[Value::Int(1), n]);
        j.insert_ok(t, &[Value::Int(1), Value::Int(2)]);
        // With N frozen (it came from the stage's source), T(1, N) cannot
        // retract onto T(1, 2).
        let out = core_minimize(&s, &j, &HashSet::from([nid]));
        assert_eq!(out.removed, 0);
    }

    #[test]
    fn all_constant_rows_are_never_candidates() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut j = Instance::new(&s);
        j.insert_ok(t, &[Value::Int(1), Value::Int(2)]);
        j.insert_ok(t, &[Value::Int(1), Value::Int(3)]);
        let out = core_minimize(&s, &j, &HashSet::new());
        assert_eq!(out.removed, 0);
        assert_eq!(out.before, 2);
    }

    #[test]
    fn chained_retraction_reaches_the_fixpoint() {
        let s = schema();
        let t = s.rel_id("T").unwrap();
        let mut pool = ValuePool::new();
        let n1 = pool.named_null("N1");
        let n2 = pool.named_null("N2");
        let mut j = Instance::new(&s);
        // Both null rows retract onto the constant row.
        j.insert_ok(t, &[Value::Int(1), n1]);
        j.insert_ok(t, &[Value::Int(1), n2]);
        j.insert_ok(t, &[Value::Int(1), Value::Int(9)]);
        let out = core_minimize(&s, &j, &HashSet::new());
        assert_eq!(out.removed, 2);
        assert_eq!(out.instance.total_tuples(), 1);
    }
}
