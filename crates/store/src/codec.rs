//! The on-disk record format: length-prefixed, CRC32-checksummed frames.
//!
//! Every durable artifact — a WAL record, a snapshot body — travels inside
//! one *frame*:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The checksum covers the payload only; the length field is implicitly
//! validated by the checksum (a corrupted length either reads past a frame
//! boundary, yielding payload bytes whose CRC cannot match, or reads past
//! the end of the file, which is a truncated tail). Integers are
//! little-endian and fixed-width; strings are `u32` length + UTF-8 bytes.
//! The format is versioned through the file magic (see [`crate::snapshot`]),
//! not per frame.
//!
//! Payloads are pure data — ids, stamps, scenario source text, selection
//! keys — never pointers into live state, so a record decoded after a crash
//! means exactly what it meant when written.

use crate::crc::crc32;

/// Frames larger than this are rejected as corruption rather than
/// allocated: no legitimate scenario or snapshot body approaches 256 MiB.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// How the solution `J` of a persisted scenario was (and will again be)
/// materialized. The chase is deterministic at every worker count, so a
/// `(text, mode)` pair is a complete, compact representation of a prepared
/// session: recovery re-runs the chase instead of persisting `J` itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseMode {
    /// Standard chase with fresh labeled nulls.
    Fresh,
    /// Skolemized (oblivious) chase.
    Skolem,
}

impl ChaseMode {
    fn to_u8(self) -> u8 {
        match self {
            ChaseMode::Fresh => 0,
            ChaseMode::Skolem => 1,
        }
    }

    fn from_u8(v: u8) -> Result<ChaseMode, CodecError> {
        match v {
            0 => Ok(ChaseMode::Fresh),
            1 => Ok(ChaseMode::Skolem),
            _ => Err(CodecError::BadEnum("chase mode", v)),
        }
    }
}

/// A forest-cache key: the sorted selected-tuple set, as
/// `(relation id, row)` pairs.
pub type SelectionKey = Vec<(u32, u32)>;

/// One live-mutation operation against a session's scenario. Ops are pure
/// data — relation names, source-text lines, tgd names — never parsed
/// structures, so a decoded op means the same thing against the replayed
/// scenario text that it meant against the live one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Append a source-data line (e.g. `S(1, 2)`).
    InsertTuple { line: String },
    /// Delete the `row`-th distinct tuple of `relation` (instance row
    /// order, i.e. first-occurrence order in the scenario text).
    DeleteTuple { relation: String, row: u32 },
    /// Append a dependency line (e.g. `m9: S(x, y) -> T(x, y)`).
    AddTgd { line: String },
    /// Remove the dependency named `name`.
    DropTgd { name: String },
}

const EDIT_OP_INSERT: u8 = 1;
const EDIT_OP_DELETE: u8 = 2;
const EDIT_OP_ADD_TGD: u8 = 3;
const EDIT_OP_DROP_TGD: u8 = 4;

/// One write-ahead-log record: a single session-store mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A session was created from `scenario` text chased under `chase`.
    Create {
        id: u64,
        chase: ChaseMode,
        scenario: String,
    },
    /// A session was looked up (stamped most-recently-used and promoted to
    /// the protected segment).
    Touch { id: u64 },
    /// A session was deleted by the client.
    Delete { id: u64 },
    /// A session was evicted by the LRU bound (leaves a 410 tombstone).
    Evict { id: u64 },
    /// A route forest was computed and memoized for `selection`.
    Forest { id: u64, selection: SelectionKey },
    /// A batch of live-mutation ops was applied to the session's scenario.
    /// `seq` is the session's edit sequence number *after* the batch; a
    /// record can land in both a checkpoint image and the surviving log,
    /// so replay skips batches whose `seq` the restored entry already
    /// reflects.
    Edit { id: u64, seq: u64, ops: Vec<EditOp> },
}

impl Record {
    /// The session id the record is about.
    pub fn id(&self) -> u64 {
        match *self {
            Record::Create { id, .. }
            | Record::Touch { id }
            | Record::Delete { id }
            | Record::Evict { id }
            | Record::Forest { id, .. }
            | Record::Edit { id, .. } => id,
        }
    }
}

const TAG_CREATE: u8 = 1;
const TAG_TOUCH: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_EVICT: u8 = 4;
const TAG_FOREST: u8 = 5;
const TAG_EDIT: u8 = 6;

/// One persisted session entry: everything needed to rebuild the live
/// [`Session`](../routes_server) byte-identically — identity, recency
/// (stamp + segment), the compact scenario representation, and the
/// memoized forest keys to re-warm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedEntry {
    pub id: u64,
    /// Last-touch stamp from the owning shard's logical clock.
    pub stamp: u64,
    /// Segmented-LRU segment (`true` = protected).
    pub protected: bool,
    pub chase: ChaseMode,
    /// Edit sequence number: how many edit batches `scenario` already
    /// reflects. WAL `Edit` records with `seq <= edit_seq` are skipped on
    /// replay.
    pub edit_seq: u64,
    /// The *current* scenario text (post-edit, when the session was
    /// edited).
    pub scenario: String,
    /// Memoized forest-cache keys (sorted selections) to recompute.
    pub forests: Vec<SelectionKey>,
}

/// One shard's non-entry state: its logical clock and its eviction
/// tombstones in deque order (oldest first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistedShard {
    pub clock: u64,
    pub tombstones: Vec<u64>,
}

/// A point-in-time image of the whole session store, sufficient to restore
/// every shard byte-identically (same shard count) or semantically
/// (different shard count; see the server's restore path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotState {
    /// The store's id counter (the next session id to assign).
    pub next_id: u64,
    /// Per-shard clocks and tombstones, indexed by shard.
    pub shards: Vec<PersistedShard>,
    /// Live sessions, sorted by id.
    pub entries: Vec<PersistedEntry>,
}

/// Decoding failures. All of them mean "stop replaying here": the format
/// never recovers mid-stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended inside a value.
    Short,
    /// An enum byte held an unknown value.
    BadEnum(&'static str, u8),
    /// A string was not UTF-8.
    BadUtf8,
    /// An unknown record tag.
    BadTag(u8),
    /// Trailing bytes after a complete payload.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Short => write!(f, "payload ends inside a value"),
            CodecError::BadEnum(what, v) => write!(f, "invalid {what} byte {v}"),
            CodecError::BadUtf8 => write!(f, "string is not UTF-8"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Primitive writers / readers
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn selection(&mut self, sel: &[(u32, u32)]) {
        self.u32(sel.len() as u32);
        for &(rel, row) in sel {
            self.u32(rel);
            self.u32(row);
        }
    }

    fn edit_ops(&mut self, ops: &[EditOp]) {
        self.u32(ops.len() as u32);
        for op in ops {
            match op {
                EditOp::InsertTuple { line } => {
                    self.u8(EDIT_OP_INSERT);
                    self.str(line);
                }
                EditOp::DeleteTuple { relation, row } => {
                    self.u8(EDIT_OP_DELETE);
                    self.str(relation);
                    self.u32(*row);
                }
                EditOp::AddTgd { line } => {
                    self.u8(EDIT_OP_ADD_TGD);
                    self.str(line);
                }
                EditOp::DropTgd { name } => {
                    self.u8(EDIT_OP_DROP_TGD);
                    self.str(name);
                }
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Short)?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError::Short)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn selection(&mut self) -> Result<SelectionKey, CodecError> {
        let n = self.u32()? as usize;
        // A selection pair is 8 bytes; bound the allocation by what the
        // buffer can actually hold.
        if n > self.buf.len().saturating_sub(self.pos) / 8 {
            return Err(CodecError::Short);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let rel = self.u32()?;
            let row = self.u32()?;
            out.push((rel, row));
        }
        Ok(out)
    }

    fn edit_ops(&mut self) -> Result<Vec<EditOp>, CodecError> {
        let n = self.u32()? as usize;
        // Every op occupies at least 5 bytes (tag + string length); bound
        // the allocation by what the buffer can actually hold.
        if n > self.buf.len().saturating_sub(self.pos) / 5 {
            return Err(CodecError::Short);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8()? {
                EDIT_OP_INSERT => EditOp::InsertTuple { line: self.str()? },
                EDIT_OP_DELETE => EditOp::DeleteTuple {
                    relation: self.str()?,
                    row: self.u32()?,
                },
                EDIT_OP_ADD_TGD => EditOp::AddTgd { line: self.str()? },
                EDIT_OP_DROP_TGD => EditOp::DropTgd { name: self.str()? },
                v => return Err(CodecError::BadEnum("edit op", v)),
            });
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

// ---------------------------------------------------------------------
// Record payloads
// ---------------------------------------------------------------------

/// Encode a record payload (no frame header).
pub fn encode_record_payload(record: &Record) -> Vec<u8> {
    let mut w = Writer::new();
    match record {
        Record::Create {
            id,
            chase,
            scenario,
        } => {
            w.u8(TAG_CREATE);
            w.u64(*id);
            w.u8(chase.to_u8());
            w.str(scenario);
        }
        Record::Touch { id } => {
            w.u8(TAG_TOUCH);
            w.u64(*id);
        }
        Record::Delete { id } => {
            w.u8(TAG_DELETE);
            w.u64(*id);
        }
        Record::Evict { id } => {
            w.u8(TAG_EVICT);
            w.u64(*id);
        }
        Record::Forest { id, selection } => {
            w.u8(TAG_FOREST);
            w.u64(*id);
            w.selection(selection);
        }
        Record::Edit { id, seq, ops } => {
            w.u8(TAG_EDIT);
            w.u64(*id);
            w.u64(*seq);
            w.edit_ops(ops);
        }
    }
    w.buf
}

/// Decode a record payload (no frame header). The whole payload must be
/// consumed.
pub fn decode_record_payload(payload: &[u8]) -> Result<Record, CodecError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let record = match tag {
        TAG_CREATE => {
            let id = r.u64()?;
            let chase = ChaseMode::from_u8(r.u8()?)?;
            let scenario = r.str()?;
            Record::Create {
                id,
                chase,
                scenario,
            }
        }
        TAG_TOUCH => Record::Touch { id: r.u64()? },
        TAG_DELETE => Record::Delete { id: r.u64()? },
        TAG_EVICT => Record::Evict { id: r.u64()? },
        TAG_FOREST => {
            let id = r.u64()?;
            let selection = r.selection()?;
            Record::Forest { id, selection }
        }
        TAG_EDIT => {
            let id = r.u64()?;
            let seq = r.u64()?;
            let ops = r.edit_ops()?;
            Record::Edit { id, seq, ops }
        }
        other => return Err(CodecError::BadTag(other)),
    };
    r.finish()?;
    Ok(record)
}

// ---------------------------------------------------------------------
// Snapshot payloads
// ---------------------------------------------------------------------

/// Encode a snapshot body: the WAL generation the snapshot supersedes up
/// to, plus the full store state.
pub fn encode_snapshot_payload(state: &SnapshotState, wal_gen: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(wal_gen);
    w.u64(state.next_id);
    w.u32(state.shards.len() as u32);
    for shard in &state.shards {
        w.u64(shard.clock);
        w.u32(shard.tombstones.len() as u32);
        for &id in &shard.tombstones {
            w.u64(id);
        }
    }
    w.u32(state.entries.len() as u32);
    for entry in &state.entries {
        w.u64(entry.id);
        w.u64(entry.stamp);
        w.u8(u8::from(entry.protected));
        w.u8(entry.chase.to_u8());
        w.u64(entry.edit_seq);
        w.str(&entry.scenario);
        w.u32(entry.forests.len() as u32);
        for key in &entry.forests {
            w.selection(key);
        }
    }
    w.buf
}

/// Decode a snapshot body; returns the state and the WAL generation to
/// replay on top of it.
pub fn decode_snapshot_payload(payload: &[u8]) -> Result<(SnapshotState, u64), CodecError> {
    let mut r = Reader::new(payload);
    let wal_gen = r.u64()?;
    let next_id = r.u64()?;
    let shard_count = r.u32()? as usize;
    let mut shards = Vec::with_capacity(shard_count.min(1024));
    for _ in 0..shard_count {
        let clock = r.u64()?;
        let n = r.u32()? as usize;
        let mut tombstones = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            tombstones.push(r.u64()?);
        }
        shards.push(PersistedShard { clock, tombstones });
    }
    let entry_count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
    for _ in 0..entry_count {
        let id = r.u64()?;
        let stamp = r.u64()?;
        let protected = match r.u8()? {
            0 => false,
            1 => true,
            v => return Err(CodecError::BadEnum("protected flag", v)),
        };
        let chase = ChaseMode::from_u8(r.u8()?)?;
        let edit_seq = r.u64()?;
        let scenario = r.str()?;
        let nforests = r.u32()? as usize;
        let mut forests = Vec::with_capacity(nforests.min(1 << 16));
        for _ in 0..nforests {
            forests.push(r.selection()?);
        }
        entries.push(PersistedEntry {
            id,
            stamp,
            protected,
            chase,
            edit_seq,
            scenario,
            forests,
        });
    }
    r.finish()?;
    Ok((
        SnapshotState {
            next_id,
            shards,
            entries,
        },
        wal_gen,
    ))
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Wrap a payload in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() as u64 <= u64::from(MAX_FRAME_LEN));
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why frame reading stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStop {
    /// The buffer ended exactly at a frame boundary.
    CleanEof,
    /// The buffer ended inside a frame header or payload (a torn write).
    TruncatedTail { offset: u64 },
    /// A frame's checksum did not match its payload (a bit flip, or a torn
    /// write that happened to leave a full-length garbage tail).
    BadCrc { offset: u64 },
    /// A frame declared an implausible length (corrupted header).
    BadLength { offset: u64, len: u32 },
}

impl FrameStop {
    /// Whether the stream ended without detecting damage.
    pub fn is_clean(&self) -> bool {
        matches!(self, FrameStop::CleanEof)
    }
}

impl std::fmt::Display for FrameStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameStop::CleanEof => write!(f, "clean end of log"),
            FrameStop::TruncatedTail { offset } => {
                write!(f, "truncated tail at byte {offset}")
            }
            FrameStop::BadCrc { offset } => write!(f, "checksum mismatch at byte {offset}"),
            FrameStop::BadLength { offset, len } => {
                write!(f, "implausible frame length {len} at byte {offset}")
            }
        }
    }
}

/// Iterate the frames of `buf` starting at `base_offset` (the offset of
/// `buf[0]` within the file, used only for reporting). Yields each valid
/// payload slice with its file offset; stops at the first damaged or
/// truncated frame. This is the single reader both recovery and the fault
/// harness share, so "what replay accepts" and "what a fault damaged" can
/// never disagree.
pub fn read_frames(buf: &[u8], base_offset: u64) -> (Vec<(u64, &[u8])>, FrameStop) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let offset = base_offset + pos as u64;
        let Some(rest) = buf.get(pos..) else {
            return (out, FrameStop::CleanEof);
        };
        if rest.is_empty() {
            return (out, FrameStop::CleanEof);
        }
        if rest.len() < 8 {
            return (out, FrameStop::TruncatedTail { offset });
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if len > MAX_FRAME_LEN {
            return (out, FrameStop::BadLength { offset, len });
        }
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(payload) = rest.get(8..8 + len as usize) else {
            return (out, FrameStop::TruncatedTail { offset });
        };
        if crc32(payload) != crc {
            return (out, FrameStop::BadCrc { offset });
        }
        out.push((offset, payload));
        pos += 8 + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Create {
                id: 7,
                chase: ChaseMode::Fresh,
                scenario: "source schema:\n  S(a)\n".to_owned(),
            },
            Record::Touch { id: 7 },
            Record::Forest {
                id: 7,
                selection: vec![(0, 0), (1, 3)],
            },
            Record::Delete { id: 7 },
            Record::Evict { id: 9 },
            Record::Edit {
                id: 7,
                seq: 3,
                ops: vec![
                    EditOp::InsertTuple {
                        line: "S(1, 2)".to_owned(),
                    },
                    EditOp::DeleteTuple {
                        relation: "S".to_owned(),
                        row: 4,
                    },
                    EditOp::AddTgd {
                        line: "m9: S(x, y) -> T(x, y)".to_owned(),
                    },
                    EditOp::DropTgd {
                        name: "m9".to_owned(),
                    },
                ],
            },
            Record::Edit {
                id: 8,
                seq: 1,
                ops: vec![],
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_the_codec() {
        for record in sample_records() {
            let payload = encode_record_payload(&record);
            assert_eq!(decode_record_payload(&payload), Ok(record.clone()));
        }
    }

    #[test]
    fn snapshot_state_roundtrips() {
        let state = SnapshotState {
            next_id: 42,
            shards: vec![
                PersistedShard {
                    clock: 10,
                    tombstones: vec![3, 5],
                },
                PersistedShard {
                    clock: 2,
                    tombstones: vec![],
                },
            ],
            entries: vec![PersistedEntry {
                id: 6,
                stamp: 9,
                protected: true,
                chase: ChaseMode::Skolem,
                edit_seq: 5,
                scenario: "source schema:\n  S(a)\n".to_owned(),
                forests: vec![vec![(0, 1)], vec![]],
            }],
        };
        let payload = encode_snapshot_payload(&state, 3);
        assert_eq!(decode_snapshot_payload(&payload), Ok((state, 3)));
    }

    #[test]
    fn damaged_payloads_are_rejected_not_misread() {
        // Truncation at every prefix length of every record shape fails;
        // it never yields a different valid record.
        for record in sample_records() {
            let payload = encode_record_payload(&record);
            for cut in 0..payload.len() {
                assert!(
                    decode_record_payload(&payload[..cut]).is_err(),
                    "{record:?} cut={cut}"
                );
            }
            // Trailing garbage is rejected.
            let mut padded = payload.clone();
            padded.push(0);
            assert_eq!(
                decode_record_payload(&padded),
                Err(CodecError::TrailingBytes)
            );
        }
        // An unknown tag is rejected.
        assert_eq!(decode_record_payload(&[99]), Err(CodecError::BadTag(99)));
        // An unknown edit-op sub-tag is rejected.
        let mut w = Writer::new();
        w.u8(TAG_EDIT);
        w.u64(1);
        w.u64(1);
        w.u32(1);
        w.u8(77);
        w.u32(0); // pad past the allocation bound so the tag is reached
        assert_eq!(
            decode_record_payload(&w.buf),
            Err(CodecError::BadEnum("edit op", 77))
        );
        // An implausible op count is bounded, not allocated.
        let mut w = Writer::new();
        w.u8(TAG_EDIT);
        w.u64(1);
        w.u64(1);
        w.u32(u32::MAX);
        assert_eq!(decode_record_payload(&w.buf), Err(CodecError::Short));
    }

    #[test]
    fn frame_reader_stops_at_first_damage_and_keeps_the_prefix() {
        let payloads: Vec<Vec<u8>> = sample_records().iter().map(encode_record_payload).collect();
        let mut buf = Vec::new();
        for p in &payloads {
            buf.extend_from_slice(&frame(p));
        }
        let (frames, stop) = read_frames(&buf, 0);
        assert!(stop.is_clean());
        assert_eq!(frames.len(), payloads.len());

        // Truncate at every byte boundary: the reader yields exactly the
        // frames whose bytes fully survive, and reports a dirty stop unless
        // the cut is at a frame boundary.
        let mut boundaries = vec![0u64];
        for (off, p) in &frames {
            boundaries.push(off + 8 + p.len() as u64);
        }
        for cut in 0..=buf.len() {
            let (prefix, stop) = read_frames(&buf[..cut], 0);
            let complete = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(prefix.len(), complete, "cut={cut}");
            assert_eq!(
                stop.is_clean(),
                boundaries.contains(&(cut as u64)),
                "cut={cut}"
            );
        }

        // Flip one bit in the middle frame's payload: the reader keeps the
        // frames before it and stops with BadCrc at its offset.
        let (mid_offset, _) = frames[2];
        let mut damaged = buf.clone();
        damaged[mid_offset as usize + 8] ^= 0x10;
        let (prefix, stop) = read_frames(&damaged, 0);
        assert_eq!(prefix.len(), 2);
        assert_eq!(stop, FrameStop::BadCrc { offset: mid_offset });
    }
}
