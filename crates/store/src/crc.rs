//! CRC-32 (ISO-HDLC / IEEE 802.3, the polynomial zlib and gzip use),
//! table-driven with the table built at compile time.
//!
//! The workspace is hermetic, so the checksum is implemented in-repo. The
//! reflected polynomial is `0xEDB88320`; the check value of the algorithm
//! is `crc32(b"123456789") == 0xCBF4_3926`, pinned by a test below so the
//! on-disk format can never silently drift.

/// The reflected CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_iso_hdlc_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_single_bit_changes_are_distinguished() {
        assert_eq!(crc32(b""), 0);
        let a = crc32(b"routes");
        let b = crc32(b"qoutes");
        assert_ne!(a, b, "a single flipped bit changes the checksum");
        assert_eq!(a, crc32(b"routes"), "deterministic");
    }
}
