//! A minimal self-deleting temporary directory for tests and benchmarks.
//!
//! The workspace is hermetic (no `tempfile` crate), so this is the one
//! shared implementation: a directory under `std::env::temp_dir()` whose
//! name mixes the process id and a process-wide counter, removed
//! recursively on drop. Uniqueness needs no randomness — the pid/counter
//! pair cannot collide within a test run, and stale directories from a
//! killed process are overwritten by `create_dir_all` on reuse.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A temporary directory deleted (recursively) on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `<tmp>/routes-store-<tag>-<pid>-<n>`.
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "routes-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
