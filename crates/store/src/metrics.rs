//! Persistence counters, lock-free via relaxed atomics, mirroring the
//! server's metrics style: one shared instance, snapshot on read.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Upper bounds (µs) of the fsync-latency histogram; the last bucket is
/// unbounded. fsyncs are the slowest thing the service does besides the
/// chase itself, so the buckets stretch to 100 ms.
pub const FSYNC_BUCKETS_US: [u64; 6] = [50, 200, 1_000, 5_000, 25_000, 100_000];

/// Shared persistence counters. One instance is shared by the WAL, the
/// checkpointer, and recovery; `/metrics` renders a [`PersistSnapshot`].
#[derive(Default)]
pub struct PersistMetrics {
    /// Records appended to the WAL (any durability).
    pub wal_appends: AtomicU64,
    /// Frame bytes appended to the WAL.
    pub wal_bytes: AtomicU64,
    /// Records appended since the last checkpoint (reset when a snapshot
    /// supersedes the log); the checkpoint trigger reads this.
    pub wal_records_since_checkpoint: AtomicU64,
    /// Group commits: each one `fsync`s a batch of ≥ 1 records.
    pub fsync_batches: AtomicU64,
    /// Records covered by those group commits (`fsync_records /
    /// fsync_batches` is the achieved batch size).
    pub fsync_records: AtomicU64,
    /// Snapshot + log-compaction checkpoints completed.
    pub snapshots_written: AtomicU64,
    /// WAL records replayed by the last recovery.
    pub replayed_records: AtomicU64,
    /// Sessions restored (snapshot entries + replayed creates that
    /// survived) by the last recovery.
    pub restored_sessions: AtomicU64,
    /// Wall time of the last recovery, microseconds.
    pub recovery_us: AtomicU64,
    /// The live WAL generation number.
    pub wal_gen: AtomicU64,
    fsync_latency: [AtomicU64; FSYNC_BUCKETS_US.len() + 1],
}

impl PersistMetrics {
    pub fn new() -> Self {
        PersistMetrics::default()
    }

    /// Record one group commit: its fsync wall time and how many records
    /// it made durable.
    pub fn record_fsync(&self, wall: Duration, records: u64) {
        self.fsync_batches.fetch_add(1, Relaxed);
        self.fsync_records.fetch_add(records, Relaxed);
        let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = FSYNC_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(FSYNC_BUCKETS_US.len());
        self.fsync_latency[idx].fetch_add(1, Relaxed);
    }

    /// A point-in-time copy for rendering.
    pub fn snapshot(&self) -> PersistSnapshot {
        PersistSnapshot {
            wal_appends: self.wal_appends.load(Relaxed),
            wal_bytes: self.wal_bytes.load(Relaxed),
            wal_records_since_checkpoint: self.wal_records_since_checkpoint.load(Relaxed),
            fsync_batches: self.fsync_batches.load(Relaxed),
            fsync_records: self.fsync_records.load(Relaxed),
            snapshots_written: self.snapshots_written.load(Relaxed),
            replayed_records: self.replayed_records.load(Relaxed),
            restored_sessions: self.restored_sessions.load(Relaxed),
            recovery_us: self.recovery_us.load(Relaxed),
            wal_gen: self.wal_gen.load(Relaxed),
            fsync_latency_us: self.fsync_latency.iter().map(|b| b.load(Relaxed)).collect(),
        }
    }
}

/// The persistence counters at a point in time (`/metrics` renders this as
/// the `persistence` block).
#[derive(Debug, Clone, Default)]
pub struct PersistSnapshot {
    pub wal_appends: u64,
    pub wal_bytes: u64,
    pub wal_records_since_checkpoint: u64,
    pub fsync_batches: u64,
    pub fsync_records: u64,
    pub snapshots_written: u64,
    pub replayed_records: u64,
    pub restored_sessions: u64,
    pub recovery_us: u64,
    pub wal_gen: u64,
    /// Bucket counts over [`FSYNC_BUCKETS_US`] (+1 unbounded bucket).
    pub fsync_latency_us: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsyncs_land_in_latency_buckets_and_snapshot_copies_everything() {
        let m = PersistMetrics::new();
        m.record_fsync(Duration::from_micros(40), 3);
        m.record_fsync(Duration::from_millis(2), 1);
        m.record_fsync(Duration::from_secs(1), 5);
        m.wal_appends.fetch_add(9, Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.fsync_batches, 3);
        assert_eq!(snap.fsync_records, 9);
        assert_eq!(snap.wal_appends, 9);
        assert_eq!(snap.fsync_latency_us.len(), FSYNC_BUCKETS_US.len() + 1);
        assert_eq!(snap.fsync_latency_us.iter().sum::<u64>(), 3);
        assert_eq!(
            snap.fsync_latency_us[0], 1,
            "40 µs lands in the first bucket"
        );
        assert_eq!(
            *snap
                .fsync_latency_us
                .last()
                .expect("histogram is non-empty"),
            1,
            "1 s lands in the unbounded bucket"
        );
    }
}
