//! The data directory: snapshot files, WAL generations, checkpoints, and
//! crash recovery.
//!
//! ## Layout
//!
//! ```text
//! <data-dir>/snapshot.bin    point-in-time store image + the WAL
//!                            generation to replay on top of it
//! <data-dir>/wal-<gen>.log   the append-only log of that generation
//! <data-dir>/snapshot.tmp    in-flight snapshot (never read)
//! ```
//!
//! ## Checkpoint protocol
//!
//! A checkpoint compacts the log into a snapshot:
//!
//! 1. write `snapshot.tmp` carrying the full store state and the *next*
//!    generation number, `fsync` it;
//! 2. create the empty `wal-<gen+1>.log` (header only), `fsync` it;
//! 3. atomically `rename(snapshot.tmp, snapshot.bin)` — this rename is the
//!    commit point — and `fsync` the directory;
//! 4. delete the old generation's log (a leftover is garbage, not danger).
//!
//! A crash before step 3 leaves the old snapshot + old log fully intact
//! (the orphan `wal-<gen+1>.log` is ignored because no committed snapshot
//! names it). A crash after step 3 leaves the new snapshot + the new empty
//! log. There is no window in which recovery sees a mixed state.
//!
//! ## Recovery
//!
//! [`StoreDir::recover`] loads `snapshot.bin` if present and valid (its
//! body is one CRC-framed payload; a torn snapshot write cannot be
//! mistaken for a good one), then replays `wal-<gen>.log` frame by frame,
//! **stopping at the first bad CRC, implausible length, truncated tail, or
//! undecodable payload**. Everything before the stop is a prefix of the
//! pre-crash history; everything after is discarded. The caller is
//! expected to checkpoint immediately after applying the recovery, which
//! truncates the damaged tail out of existence.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

use crate::codec::{
    decode_record_payload, decode_snapshot_payload, encode_snapshot_payload, frame, read_frames,
    FrameStop, Record, SnapshotState,
};
use crate::metrics::PersistMetrics;
use crate::wal::Wal;

/// The 8-byte file magic heading every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RSSN\x01\x00\x00\x00";

/// Byte length of the WAL/snapshot file headers (the magic).
pub const HEADER_LEN: u64 = 8;

/// A persistence data directory.
pub struct StoreDir {
    dir: PathBuf,
}

/// Everything recovery learned from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The snapshot image (default-empty when no valid snapshot existed).
    pub state: SnapshotState,
    /// Whether a valid snapshot was loaded.
    pub snapshot_loaded: bool,
    /// WAL records accepted before the stop, in append order.
    pub records: Vec<Record>,
    /// Why WAL reading stopped.
    pub stop: FrameStop,
    /// The generation whose log was replayed.
    pub wal_gen: u64,
}

impl Recovery {
    /// A one-line human summary (spiderd prints this at boot).
    pub fn summary(&self) -> String {
        format!(
            "snapshot={} wal_gen={} replayed={} stop={}",
            if self.snapshot_loaded {
                "loaded"
            } else {
                "none"
            },
            self.wal_gen,
            self.records.len(),
            self.stop,
        )
    }
}

impl StoreDir {
    /// Open (creating if needed) a data directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<StoreDir> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(StoreDir { dir })
    }

    /// The directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The committed snapshot path.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    /// The log path of `gen`.
    pub fn wal_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("wal-{gen}.log"))
    }

    /// Load the snapshot (if any) and replay its WAL generation, stopping
    /// at the first damaged record.
    pub fn recover(&self) -> std::io::Result<Recovery> {
        let (state, snapshot_loaded, wal_gen) = match self.read_snapshot()? {
            Some((state, gen)) => (state, true, gen),
            None => (SnapshotState::default(), false, 0),
        };
        let (records, stop) = self.replay_wal(wal_gen)?;
        Ok(Recovery {
            state,
            snapshot_loaded,
            records,
            stop,
            wal_gen,
        })
    }

    /// Read and validate `snapshot.bin`. Returns `None` when the file is
    /// missing, unrecognized, or damaged — recovery then starts from an
    /// empty store plus generation-0 WAL, never from a half-read image.
    fn read_snapshot(&self) -> std::io::Result<Option<(SnapshotState, u64)>> {
        let bytes = match fs::read(self.snapshot_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if bytes.len() < HEADER_LEN as usize || bytes[..8] != SNAPSHOT_MAGIC {
            return Ok(None);
        }
        let (frames, stop) = read_frames(&bytes[8..], HEADER_LEN);
        // A snapshot is exactly one frame; anything else is damage.
        if !stop.is_clean() || frames.len() != 1 {
            return Ok(None);
        }
        Ok(decode_snapshot_payload(frames[0].1).ok())
    }

    /// Replay `wal-<gen>.log`: decode frames until the first stop. A
    /// missing log (e.g. the very first boot) replays zero records
    /// cleanly.
    fn replay_wal(&self, gen: u64) -> std::io::Result<(Vec<Record>, FrameStop)> {
        let bytes = match fs::read(self.wal_path(gen)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Vec::new(), FrameStop::CleanEof))
            }
            Err(e) => return Err(e),
        };
        if bytes.len() < HEADER_LEN as usize || bytes[..8] != WAL_HEADER {
            // A log without its full header is a torn creation: nothing in
            // it was ever acknowledged.
            return Ok((Vec::new(), FrameStop::TruncatedTail { offset: 0 }));
        }
        let (frames, mut stop) = read_frames(&bytes[HEADER_LEN as usize..], HEADER_LEN);
        let mut records = Vec::with_capacity(frames.len());
        for (offset, payload) in frames {
            match decode_record_payload(payload) {
                Ok(record) => records.push(record),
                Err(_) => {
                    // A well-checksummed but undecodable payload cannot
                    // have been written by this codec: treat it as
                    // corruption and stop, exactly like a bad CRC.
                    stop = FrameStop::BadCrc { offset };
                    break;
                }
            }
        }
        Ok((records, stop))
    }

    /// Write a snapshot of `state`, rotate to a fresh `wal-<new_gen>.log`,
    /// and delete the superseded log. Returns the new live [`Wal`].
    pub fn checkpoint(
        &self,
        state: &SnapshotState,
        new_gen: u64,
        metrics: Arc<PersistMetrics>,
    ) -> std::io::Result<Wal> {
        let _span = routes_obs::span("checkpoint");
        // 1. The new image, fsynced under a temporary name.
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            file.write_all(&SNAPSHOT_MAGIC)?;
            file.write_all(&frame(&encode_snapshot_payload(state, new_gen)))?;
            file.sync_data()?;
        }
        // 2. The new generation's empty log, fsynced before the commit
        //    point so the snapshot never names a log that might not exist.
        let wal = Wal::create(self.wal_path(new_gen), Arc::clone(&metrics))?;
        // 3. Commit: atomic rename, then fsync the directory so both the
        //    rename and the new log's directory entry are durable.
        fs::rename(&tmp, self.snapshot_path())?;
        self.sync_dir()?;
        // 4. Garbage-collect superseded logs (best effort: a leftover is
        //    re-deleted by the next checkpoint).
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(gen) = name
                    .strip_prefix("wal-")
                    .and_then(|s| s.strip_suffix(".log"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    if gen != new_gen {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        metrics.snapshots_written.fetch_add(1, Relaxed);
        metrics.wal_records_since_checkpoint.store(0, Relaxed);
        metrics.wal_gen.store(new_gen, Relaxed);
        Ok(wal)
    }

    fn sync_dir(&self) -> std::io::Result<()> {
        // Directory fsync is how POSIX makes renames durable; on platforms
        // where opening a directory fails, the rename is still atomic.
        match File::open(&self.dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

const WAL_HEADER: [u8; 8] = crate::wal::WAL_MAGIC;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ChaseMode, PersistedEntry, PersistedShard};
    use crate::testutil::TempDir;
    use crate::wal::Durability;

    fn state() -> SnapshotState {
        SnapshotState {
            next_id: 11,
            shards: vec![PersistedShard {
                clock: 4,
                tombstones: vec![2],
            }],
            entries: vec![PersistedEntry {
                id: 3,
                stamp: 4,
                protected: true,
                chase: ChaseMode::Fresh,
                edit_seq: 0,
                scenario: "source schema:\n  S(a)\n".to_owned(),
                forests: vec![vec![(0, 0)]],
            }],
        }
    }

    #[test]
    fn first_boot_recovers_empty_and_checkpoints_rotate_generations() {
        let tmp = TempDir::new("dir-first-boot");
        let dir = StoreDir::open(tmp.path()).expect("open dir");
        let rec = dir.recover().expect("recover");
        assert!(!rec.snapshot_loaded);
        assert!(rec.records.is_empty());
        assert!(rec.stop.is_clean());
        assert_eq!(rec.wal_gen, 0);

        let metrics = Arc::new(PersistMetrics::new());
        let wal = dir
            .checkpoint(&state(), 1, Arc::clone(&metrics))
            .expect("checkpoint");
        wal.append(&Record::Touch { id: 3 }, Durability::Synced)
            .expect("append");
        drop(wal);

        let rec = dir.recover().expect("recover again");
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.state, state());
        assert_eq!(rec.wal_gen, 1);
        assert_eq!(rec.records, vec![Record::Touch { id: 3 }]);
        assert!(rec.stop.is_clean());
        assert_eq!(metrics.snapshot().snapshots_written, 1);
    }

    #[test]
    fn checkpoint_deletes_the_superseded_log_and_survives_reruns() {
        let tmp = TempDir::new("dir-gc");
        let dir = StoreDir::open(tmp.path()).expect("open dir");
        let metrics = Arc::new(PersistMetrics::new());
        let wal1 = dir
            .checkpoint(&SnapshotState::default(), 1, Arc::clone(&metrics))
            .expect("checkpoint 1");
        wal1.append(&Record::Delete { id: 9 }, Durability::Synced)
            .expect("append");
        drop(wal1);
        let _wal2 = dir
            .checkpoint(&state(), 2, Arc::clone(&metrics))
            .expect("checkpoint 2");
        assert!(!dir.wal_path(1).exists(), "old generation deleted");
        assert!(dir.wal_path(2).exists());
        let rec = dir.recover().expect("recover");
        assert_eq!(rec.wal_gen, 2);
        assert!(rec.records.is_empty(), "the new log starts empty");
        assert_eq!(rec.state, state());
    }

    #[test]
    fn torn_snapshot_is_ignored_not_half_read() {
        let tmp = TempDir::new("dir-torn-snap");
        let dir = StoreDir::open(tmp.path()).expect("open dir");
        let metrics = Arc::new(PersistMetrics::new());
        let _wal = dir
            .checkpoint(&state(), 1, Arc::clone(&metrics))
            .expect("checkpoint");
        // Truncate the committed snapshot mid-frame: recovery must fall
        // back to the empty image (and still replay the named... nothing —
        // the generation field was inside the torn frame, so generation 0).
        let snap_path = dir.snapshot_path();
        let len = fs::metadata(&snap_path).expect("stat").len();
        let f = OpenOptions::new()
            .write(true)
            .open(&snap_path)
            .expect("open snapshot");
        f.set_len(len - 5).expect("truncate");
        drop(f);
        let rec = dir.recover().expect("recover");
        assert!(!rec.snapshot_loaded, "torn snapshot rejected whole");
        assert_eq!(rec.state, SnapshotState::default());
    }
}
