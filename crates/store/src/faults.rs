//! Deterministic fault injection for WAL files: truncate the tail, flip a
//! bit, or duplicate the last record — the three shapes a crash or a bad
//! disk actually produces (torn writes, bit rot, and re-applied buffers).
//!
//! The injector is driven by the same SplitMix64 generator the rest of the
//! workspace uses (mirrored here so this crate stays dependency-free; the
//! constants are pinned against `routes-gen`'s by a test in the recovery
//! suite), so every fault campaign is reproducible from one `u64` seed.
//! Faults are expressed relative to the *end* of the file because that is
//! where crash damage lives; the recovery property under test is that
//! replay stops at the first damaged frame and keeps the intact prefix.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::codec::read_frames;
use crate::snapshot::HEADER_LEN;

/// SplitMix64 (Steele, Lea & Flood 2014), mirroring `routes_gen::Rng`'s
/// stream bit-for-bit: same Weyl increment, same finalizer, same Lemire
/// range reduction.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via the widening-multiply
    /// reduction; `bound` must be nonzero.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Drop the last `bytes` bytes of the file (a torn tail write).
    TruncateTail { bytes: u64 },
    /// XOR bit `bit` of the byte `byte_from_end` bytes before EOF (bit
    /// rot / a misdirected write).
    FlipBit { byte_from_end: u64, bit: u8 },
    /// Append a byte-exact copy of the last intact frame (a doubly
    /// applied write buffer).
    DuplicateLastFrame,
}

/// What [`inject`] actually did (sizes resolve against the real file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    pub fault: Fault,
    /// File length before the fault.
    pub len_before: u64,
    /// File length after the fault.
    pub len_after: u64,
}

/// Draw a random fault for a log file of `file_len` bytes. Truncations and
/// bit flips land strictly inside the record region (after the header), so
/// a campaign exercises frame damage, not just a missing magic.
pub fn random_fault(rng: &mut SplitMix64, file_len: u64) -> Fault {
    let body = file_len.saturating_sub(HEADER_LEN).max(1);
    match rng.bounded(3) {
        0 => Fault::TruncateTail {
            bytes: 1 + rng.bounded(body),
        },
        1 => Fault::FlipBit {
            byte_from_end: rng.bounded(body),
            bit: rng.bounded(8) as u8,
        },
        _ => Fault::DuplicateLastFrame,
    }
}

/// Apply `fault` to the file at `path` in place.
pub fn inject(path: &Path, fault: &Fault) -> std::io::Result<FaultReport> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let len_before = file.metadata()?.len();
    match *fault {
        Fault::TruncateTail { bytes } => {
            file.set_len(len_before.saturating_sub(bytes))?;
        }
        Fault::FlipBit { byte_from_end, bit } => {
            if len_before > 0 {
                let pos = len_before - 1 - byte_from_end.min(len_before - 1);
                file.seek(SeekFrom::Start(pos))?;
                let mut b = [0u8; 1];
                file.read_exact(&mut b)?;
                b[0] ^= 1 << (bit & 7);
                file.seek(SeekFrom::Start(pos))?;
                file.write_all(&b)?;
            }
        }
        Fault::DuplicateLastFrame => {
            let mut bytes = Vec::new();
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut bytes)?;
            if bytes.len() as u64 > HEADER_LEN {
                let (frames, _) = read_frames(&bytes[HEADER_LEN as usize..], HEADER_LEN);
                if let Some(&(offset, payload)) = frames.last() {
                    let start = offset as usize;
                    let end = start + 8 + payload.len();
                    let copy = bytes[start..end].to_vec();
                    file.seek(SeekFrom::End(0))?;
                    file.write_all(&copy)?;
                }
            }
        }
    }
    file.sync_data()?;
    let len_after = file.metadata()?.len();
    Ok(FaultReport {
        fault: fault.clone(),
        len_before,
        len_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_record_payload, ChaseMode, Record};
    use crate::metrics::PersistMetrics;
    use crate::testutil::TempDir;
    use crate::wal::{Durability, Wal};
    use std::sync::Arc;

    fn write_log(path: &Path, n: u64) {
        let wal = Wal::create(path, Arc::new(PersistMetrics::new())).expect("create wal");
        for id in 1..=n {
            wal.append(
                &Record::Create {
                    id,
                    chase: ChaseMode::Fresh,
                    scenario: format!("s{id}"),
                },
                Durability::Synced,
            )
            .expect("append");
        }
    }

    fn replayed_ids(path: &Path) -> (Vec<u64>, bool) {
        let bytes = std::fs::read(path).expect("read log");
        let (frames, stop) = read_frames(&bytes[HEADER_LEN as usize..], HEADER_LEN);
        (
            frames
                .iter()
                .map(|(_, p)| decode_record_payload(p).expect("decode").id())
                .collect(),
            stop.is_clean(),
        )
    }

    #[test]
    fn truncation_keeps_an_exact_prefix() {
        let tmp = TempDir::new("fault-trunc");
        let path = tmp.path().join("wal-0.log");
        write_log(&path, 6);
        let report = inject(&path, &Fault::TruncateTail { bytes: 3 }).expect("inject");
        assert_eq!(report.len_after, report.len_before - 3);
        let (ids, clean) = replayed_ids(&path);
        assert_eq!(ids, vec![1, 2, 3, 4, 5], "the torn record is dropped");
        assert!(!clean, "the stop is reported as damage");
    }

    #[test]
    fn bit_flips_stop_replay_at_the_damaged_record() {
        let tmp = TempDir::new("fault-flip");
        let path = tmp.path().join("wal-0.log");
        write_log(&path, 4);
        inject(
            &path,
            &Fault::FlipBit {
                byte_from_end: 2,
                bit: 5,
            },
        )
        .expect("inject");
        let (ids, clean) = replayed_ids(&path);
        assert_eq!(ids, vec![1, 2, 3], "records before the flip survive");
        assert!(!clean);
    }

    #[test]
    fn duplicated_frames_replay_twice_and_stay_valid() {
        let tmp = TempDir::new("fault-dup");
        let path = tmp.path().join("wal-0.log");
        write_log(&path, 3);
        inject(&path, &Fault::DuplicateLastFrame).expect("inject");
        let (ids, clean) = replayed_ids(&path);
        assert_eq!(ids, vec![1, 2, 3, 3], "the duplicate is a valid frame");
        assert!(clean, "duplication is not damage the checksum can see");
    }

    #[test]
    fn random_fault_campaign_is_reproducible() {
        let mut a = SplitMix64::seed_from_u64(0xFA_07);
        let mut b = SplitMix64::seed_from_u64(0xFA_07);
        for _ in 0..32 {
            assert_eq!(random_fault(&mut a, 500), random_fault(&mut b, 500));
        }
    }
}
