//! The append-only write-ahead log with group-committed batched fsync.
//!
//! ## Group commit
//!
//! Appenders serialize their record into a shared pending buffer under a
//! mutex and, for durable appends, wait until an fsync covers their
//! record. The first durable appender to find no flush in flight becomes
//! the *batch leader*: it takes the whole pending buffer (its own record
//! plus everything buffered behind the previous fsync — other threads'
//! durable records and any fire-and-forget touches), writes and
//! `fdatasync`s **outside the lock**, then publishes the new durable
//! horizon and wakes the followers. Appenders that arrive while a flush is
//! in flight simply buffer and wait: their records ride the *next* batch,
//! led by whichever of them wakes first. Under concurrency the fsync cost
//! amortizes over the whole batch without any timer or dedicated writer
//! thread; under a single writer it degrades gracefully to one fsync per
//! durable append.
//!
//! ## Durability classes
//!
//! * [`Durability::Synced`] — the append returns only after an fsync
//!   covers it. Session creates, deletes, and evictions use this: the
//!   410-vs-404 contract must survive a crash immediately after the
//!   response.
//! * [`Durability::Buffered`] — the append returns once the record is in
//!   the pending buffer. Touches and forest memos use this: losing a
//!   crash-tail of recency stamps costs at most a slightly different
//!   future eviction choice, never an answer. Buffered records are made
//!   durable by the next group commit, an explicit [`Wal::flush`], or the
//!   server's periodic maintenance tick.
//!
//! A write or fsync failure poisons the log: the failed batch's records
//! cannot be declared durable, so every subsequent append fails fast with
//! the original error kind rather than silently dropping the tail.

use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::codec::{encode_record_payload, frame, Record};
use crate::metrics::PersistMetrics;

/// The 8-byte file magic heading every WAL file: name, format version,
/// reserved padding.
pub const WAL_MAGIC: [u8; 8] = *b"RSWL\x01\x00\x00\x00";

/// Whether an append must survive a crash before it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Return once buffered; durable at the next group commit or flush.
    Buffered,
    /// Return only after an fsync covers the record.
    Synced,
}

struct WalShared {
    /// Frames appended but not yet handed to a batch leader.
    pending: Vec<u8>,
    /// Records appended so far (the log sequence number of the newest).
    appended: u64,
    /// Records covered by a completed fsync.
    synced: u64,
    /// Whether a batch leader currently owns a write+fsync.
    flushing: bool,
    /// Sticky failure: the kind of the first write/fsync error.
    poisoned: Option<ErrorKind>,
}

/// An open write-ahead log (one generation; checkpoints rotate to a new
/// [`Wal`]).
pub struct Wal {
    file: File,
    path: PathBuf,
    shared: Mutex<WalShared>,
    synced_cv: Condvar,
    metrics: Arc<PersistMetrics>,
}

impl Wal {
    /// Create (truncating) a new WAL at `path` and durably write its
    /// header.
    pub fn create(path: impl Into<PathBuf>, metrics: Arc<PersistMetrics>) -> std::io::Result<Wal> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&WAL_MAGIC)?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path,
            shared: Mutex::new(WalShared {
                pending: Vec::new(),
                appended: 0,
                synced: 0,
                flushing: false,
                poisoned: None,
            }),
            synced_cv: Condvar::new(),
            metrics,
        })
    }

    /// The file the log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.lock().appended
    }

    /// Append one record. With [`Durability::Synced`] this blocks until a
    /// group commit covers the record.
    pub fn append(&self, record: &Record, durability: Durability) -> std::io::Result<u64> {
        // The span covers encode + buffer only; a synced append's fsync
        // wait shows up as a separate `wal_fsync` span, so the two stay
        // disjoint and a request's child spans sum to at most its own.
        let span = routes_obs::span("wal_append");
        let bytes = frame(&encode_record_payload(record));
        let mut shared = self.lock();
        if let Some(kind) = shared.poisoned {
            return Err(poisoned_error(kind));
        }
        shared.pending.extend_from_slice(&bytes);
        shared.appended += 1;
        let lsn = shared.appended;
        self.metrics.wal_appends.fetch_add(1, Relaxed);
        self.metrics
            .wal_bytes
            .fetch_add(bytes.len() as u64, Relaxed);
        self.metrics
            .wal_records_since_checkpoint
            .fetch_add(1, Relaxed);
        drop(span);
        match durability {
            Durability::Buffered => Ok(lsn),
            Durability::Synced => self.wait_synced(shared, lsn).map(|()| lsn),
        }
    }

    /// Write and fsync everything appended so far (buffered records
    /// included). The maintenance tick and graceful shutdown call this.
    pub fn flush(&self) -> std::io::Result<()> {
        let shared = self.lock();
        let horizon = shared.appended;
        self.wait_synced(shared, horizon)
    }

    /// Block until the durable horizon reaches `lsn`, leading a group
    /// commit if none is in flight.
    fn wait_synced<'a>(
        &'a self,
        mut shared: MutexGuard<'a, WalShared>,
        lsn: u64,
    ) -> std::io::Result<()> {
        loop {
            if let Some(kind) = shared.poisoned {
                return Err(poisoned_error(kind));
            }
            if shared.synced >= lsn {
                return Ok(());
            }
            if shared.flushing {
                // A leader is mid-commit; ride the next batch.
                shared = self
                    .synced_cv
                    .wait(shared)
                    .unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the batch leader: take everything pending, commit it
            // outside the lock so followers can keep buffering.
            shared.flushing = true;
            let batch = std::mem::take(&mut shared.pending);
            let batch_end = shared.appended;
            let covered = batch_end - shared.synced;
            drop(shared);

            let fsync_span = routes_obs::span("wal_fsync");
            let started = Instant::now();
            let result = (&self.file)
                .write_all(&batch)
                .and_then(|()| self.file.sync_data());
            let wall = started.elapsed();
            drop(fsync_span);

            shared = self.lock();
            shared.flushing = false;
            match result {
                Ok(()) => {
                    shared.synced = batch_end;
                    self.metrics.record_fsync(wall, covered);
                }
                Err(e) => {
                    shared.poisoned = Some(e.kind());
                    self.synced_cv.notify_all();
                    return Err(e);
                }
            }
            self.synced_cv.notify_all();
        }
    }

    fn lock(&self) -> MutexGuard<'_, WalShared> {
        // A panic while holding this mutex can only happen between plain
        // field updates (no invariant spans the poison point), so recover
        // the guard instead of cascading the panic into every appender.
        self.shared.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn poisoned_error(kind: ErrorKind) -> std::io::Error {
    std::io::Error::new(
        kind,
        "write-ahead log poisoned by an earlier write/fsync failure",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_frames, ChaseMode};
    use crate::testutil::TempDir;

    fn record(id: u64) -> Record {
        Record::Create {
            id,
            chase: ChaseMode::Fresh,
            scenario: format!("scenario {id}"),
        }
    }

    #[test]
    fn synced_appends_are_on_disk_and_replayable_in_order() {
        let tmp = TempDir::new("wal-synced");
        let metrics = Arc::new(PersistMetrics::new());
        let wal =
            Wal::create(tmp.path().join("wal-0.log"), Arc::clone(&metrics)).expect("create wal");
        for id in 1..=5 {
            wal.append(&record(id), Durability::Synced).expect("append");
        }
        let bytes = std::fs::read(wal.path()).expect("read wal file");
        assert_eq!(&bytes[..8], &WAL_MAGIC);
        let (frames, stop) = read_frames(&bytes[8..], 8);
        assert!(stop.is_clean());
        let ids: Vec<u64> = frames
            .iter()
            .map(|(_, p)| crate::codec::decode_record_payload(p).expect("decode").id())
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 5);
        assert_eq!(snap.fsync_records, 5);
        assert!(snap.fsync_batches >= 1);
        assert_eq!(snap.wal_bytes, bytes.len() as u64 - 8);
    }

    #[test]
    fn buffered_appends_become_durable_on_flush() {
        let tmp = TempDir::new("wal-buffered");
        let metrics = Arc::new(PersistMetrics::new());
        let wal =
            Wal::create(tmp.path().join("wal-0.log"), Arc::clone(&metrics)).expect("create wal");
        for id in 1..=4 {
            wal.append(&Record::Touch { id }, Durability::Buffered)
                .expect("append");
        }
        // Nothing written yet beyond the header.
        let before = std::fs::metadata(wal.path()).expect("stat").len();
        assert_eq!(before, 8, "buffered records stay in memory");
        wal.flush().expect("flush");
        let bytes = std::fs::read(wal.path()).expect("read wal file");
        let (frames, stop) = read_frames(&bytes[8..], 8);
        assert!(stop.is_clean());
        assert_eq!(frames.len(), 4);
        let snap = metrics.snapshot();
        assert_eq!(snap.fsync_records, 4);
        assert_eq!(snap.fsync_batches, 1, "one flush = one batch");
    }

    #[test]
    fn concurrent_durable_appends_group_commit_into_few_batches() {
        let tmp = TempDir::new("wal-group");
        let metrics = Arc::new(PersistMetrics::new());
        let wal =
            Wal::create(tmp.path().join("wal-0.log"), Arc::clone(&metrics)).expect("create wal");
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 25;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let wal = &wal;
                s.spawn(move || {
                    for k in 0..PER_THREAD {
                        wal.append(&record(t * PER_THREAD + k + 1), Durability::Synced)
                            .expect("append");
                    }
                });
            }
        });
        let bytes = std::fs::read(wal.path()).expect("read wal file");
        let (frames, stop) = read_frames(&bytes[8..], 8);
        assert!(stop.is_clean());
        assert_eq!(frames.len(), (THREADS * PER_THREAD) as usize);
        // Every record appended exactly once, none lost or duplicated.
        let mut ids: Vec<u64> = frames
            .iter()
            .map(|(_, p)| crate::codec::decode_record_payload(p).expect("decode").id())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=THREADS * PER_THREAD).collect::<Vec<u64>>());
        let snap = metrics.snapshot();
        assert_eq!(snap.fsync_records, THREADS * PER_THREAD);
        assert!(
            snap.fsync_batches <= snap.fsync_records,
            "batches never exceed records"
        );
    }
}
