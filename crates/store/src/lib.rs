//! `routes-store` — durable persistence for the route-debugging service.
//!
//! `spiderd`'s debugging sessions are long-lived: a user iterates over
//! selections against one loaded mapping scenario, sometimes for hours.
//! This crate makes that state survive a restart by splitting every
//! session into a *compact representation* (the scenario source text plus
//! its chase mode — the chase is deterministic, so the solution `J` is
//! recomputed, never stored) and a *replayable history* (the store
//! mutations that shaped the shard state: creates, touches, deletes,
//! evictions, forest memos).
//!
//! * [`codec`] — length-prefixed, CRC32-checksummed frames; the record and
//!   snapshot formats.
//! * [`crc`] — the in-repo CRC-32 (ISO-HDLC) implementation.
//! * [`wal`] — the append-only write-ahead log with group-committed
//!   batched fsync and two durability classes.
//! * [`snapshot`] — the data directory: atomic snapshot + log-compaction
//!   checkpoints and prefix-consistent crash recovery.
//! * [`faults`] — deterministic fault injection (truncate / bit-flip /
//!   duplicate) driven by the workspace's SplitMix64.
//! * [`metrics`] — persistence counters the server's `/metrics` renders.
//! * [`testutil`] — a self-deleting temp dir shared by tests and benches.
//!
//! The crate is std-only and knows nothing about HTTP, sessions, or the
//! chase: it moves bytes durably and reports exactly where a damaged log
//! stops being trustworthy. The server owns the mapping between live
//! state and records (see `routes-server`'s `session` and `persist`
//! modules).

pub mod codec;
pub mod crc;
pub mod faults;
pub mod metrics;
pub mod snapshot;
pub mod testutil;
pub mod wal;

pub use codec::{
    ChaseMode, EditOp, FrameStop, PersistedEntry, PersistedShard, Record, SelectionKey,
    SnapshotState,
};
pub use metrics::{PersistMetrics, PersistSnapshot, FSYNC_BUCKETS_US};
pub use snapshot::{Recovery, StoreDir};
pub use wal::{Durability, Wal};
